// Benchmarks regenerating every figure of the paper (one benchmark per
// figure or figure group; see DESIGN.md's experiment index), plus
// microbenchmarks of the simulator core. Custom metrics attach the
// figure's headline numbers to the benchmark output:
//
//	go test -bench=. -benchmem
package faircc_test

import (
	"strconv"
	"strings"
	"testing"

	"faircc"
	"faircc/internal/exp"
	"faircc/internal/net"
	"faircc/internal/sim"
)

func benchCfg() exp.Config {
	return exp.Config{Seed: 1, Scale: "small"}
}

// runExp runs a registered experiment once per iteration and returns the
// last result.
func runExp(b *testing.B, name string) *exp.Result {
	b.Helper()
	var res *exp.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.Run(name, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// noteValue extracts the trailing float of the note containing marker.
func noteValue(res *exp.Result, marker string) (float64, bool) {
	for _, n := range res.Notes {
		idx := strings.Index(n, marker)
		if idx < 0 {
			continue
		}
		s := strings.TrimSpace(n[idx+len(marker):])
		end := 0
		for end < len(s) && (s[end] == '-' || s[end] == '.' || (s[end] >= '0' && s[end] <= '9')) {
			end++
		}
		if v, err := strconv.ParseFloat(s[:end], 64); err == nil {
			return v, true
		}
	}
	return 0, false
}

func reportConvergence(b *testing.B, res *exp.Result, labels ...string) {
	for _, l := range labels {
		if v, ok := noteValue(res, l+": smoothed Jain reaches 0.9 at "); ok {
			b.ReportMetric(v, strings.ReplaceAll(l, " ", "_")+"_converge_us")
		}
	}
}

// BenchmarkFig1 regenerates Fig. 1 (16-1 incast fairness and queues for
// the HPCC and Swift baselines); the Jain figures dominate, so those are
// what the iteration runs.
func BenchmarkFig1(b *testing.B) {
	res := runExp(b, "fig1a")
	reportConvergence(b, res, "HPCC", "HPCC 1Gbps")
	res = runExp(b, "fig1c")
	reportConvergence(b, res, "Swift", "Swift 1Gbps")
}

// BenchmarkFig2And3 regenerates the staggered-incast start/finish figures.
func BenchmarkFig2And3(b *testing.B) {
	res := runExp(b, "fig2")
	// Finish-time inversion (last-started finishes first) is the figure's
	// point: report the default protocol's first/last finish times.
	if v, ok := noteValue(res, "HPCC: first-started finishes at "); ok {
		b.ReportMetric(v, "hpcc_first_flow_finish_us")
	}
	runExp(b, "fig3")
}

// BenchmarkFig4 regenerates the fluid model.
func BenchmarkFig4(b *testing.B) {
	res := runExp(b, "fig4")
	peak := 0.0
	for _, y := range res.Series[0].Y {
		if y > peak {
			peak = y
		}
	}
	b.ReportMetric(peak, "gap_peak_bytes_per_ns")
}

// BenchmarkFig5And6 regenerates the VAI SF incast fairness figures (the
// 16-1 variants; the 96-1 variants run under BenchmarkFig5c6c96To1).
func BenchmarkFig5And6(b *testing.B) {
	res := runExp(b, "fig5a")
	reportConvergence(b, res, "HPCC", "HPCC VAI SF")
	res = runExp(b, "fig6a")
	reportConvergence(b, res, "Swift", "Swift VAI SF")
}

// BenchmarkFig5c6c96To1 regenerates the 96-1 incast fairness figures.
func BenchmarkFig5c6c96To1(b *testing.B) {
	res := runExp(b, "fig5c")
	reportConvergence(b, res, "HPCC", "HPCC VAI SF")
	res = runExp(b, "fig6c")
	reportConvergence(b, res, "Swift", "Swift VAI SF")
}

// BenchmarkFig8And9 regenerates the VAI SF start/finish figures.
func BenchmarkFig8And9(b *testing.B) {
	runExp(b, "fig8")
	runExp(b, "fig9")
}

// BenchmarkFig10To13 regenerates the datacenter slowdown figures at small
// scale and reports the headline long-flow tail improvement factors.
func BenchmarkFig10To13(b *testing.B) {
	res := runExp(b, "fig10")
	if v, ok := noteValue(res, "HPCC long-flow tail improvement: "); ok {
		b.ReportMetric(v, "hadoop_hpcc_tail_improvement_x")
	}
	if v, ok := noteValue(res, "Swift long-flow tail improvement: "); ok {
		b.ReportMetric(v, "hadoop_swift_tail_improvement_x")
	}
	res = runExp(b, "fig11")
	if v, ok := noteValue(res, "HPCC long-flow tail improvement: "); ok {
		b.ReportMetric(v, "mix_hpcc_tail_improvement_x")
	}
	runExp(b, "fig12")
	runExp(b, "fig13")
}

// BenchmarkAblations runs the parameter sweeps.
func BenchmarkAblations(b *testing.B) {
	runExp(b, "ablate-aicap")
	runExp(b, "ablate-sf")
	runExp(b, "ablate-newflow")
}

// --- simulator core microbenchmarks ---

// BenchmarkEngineSchedule measures raw event throughput.
func BenchmarkEngineSchedule(b *testing.B) {
	eng := sim.NewEngine()
	b.ReportAllocs()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < b.N {
			eng.After(10, chain)
		}
	}
	eng.At(0, chain)
	eng.Run()
	if n < b.N {
		b.Fatal("chain terminated early")
	}
}

// BenchmarkPacketForwarding measures end-to-end packet cost: one flow at
// line rate across one switch, per-packet ACKs.
func BenchmarkPacketForwarding(b *testing.B) {
	b.ReportAllocs()
	eng := faircc.NewEngine()
	nw := faircc.NewNetwork(eng, 1)
	star := faircc.NewStar(nw, 2, 100e9, faircc.Microsecond)
	size := int64(b.N) * 1000
	f := nw.AddFlow(faircc.FlowSpec{ID: 1, Src: star.Hosts[0].NodeID(),
		Dst: star.Hosts[1].NodeID(), Size: size}, hpccAlgo())
	b.ResetTimer()
	eng.Run()
	if !f.Finished() {
		b.Fatal("flow did not finish")
	}
	b.SetBytes(1000)
}

func hpccAlgo() faircc.Algorithm { return faircc.NewHPCC() }

// BenchmarkIncast16HPCCVAISF measures a whole 16-1 incast simulation with
// the paper's mechanisms enabled.
func BenchmarkIncast16HPCCVAISF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := faircc.NewEngine()
		nw := faircc.NewNetwork(eng, 1)
		star := faircc.NewStar(nw, 17, 100e9, faircc.Microsecond)
		srcs := make([]int, 16)
		for j := range srcs {
			srcs[j] = star.Hosts[j].NodeID()
		}
		for _, spec := range faircc.StaggeredIncast(srcs, star.Hosts[16].NodeID(),
			1<<20, 2, 20*faircc.Microsecond, 0) {
			nw.AddFlow(spec, faircc.NewHPCCVAISF(42_000))
		}
		eng.Run()
	}
}

// BenchmarkIncastSmall is the end-to-end scheduler bench: a full 32-1
// staggered HPCC incast per iteration, reporting aggregate events/sec —
// the same metric the fig10 experiment baseline records, on a workload
// small enough for the CI bench gate.
func BenchmarkIncastSmall(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		eng := faircc.NewEngine()
		nw := faircc.NewNetwork(eng, 1)
		star := faircc.NewStar(nw, 33, 100e9, faircc.Microsecond)
		srcs := make([]int, 32)
		for j := range srcs {
			srcs[j] = star.Hosts[j].NodeID()
		}
		for _, spec := range faircc.StaggeredIncast(srcs, star.Hosts[32].NodeID(),
			1<<20, 4, 20*faircc.Microsecond, 0) {
			nw.AddFlow(spec, faircc.NewHPCC())
		}
		eng.Run()
		events += eng.Stats().Steps
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkFatTreeTraffic measures datacenter simulation throughput: a
// small fat-tree at 50% Hadoop load for 200 us of simulated time.
func BenchmarkFatTreeTraffic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := faircc.NewEngine()
		nw := net.New(eng, 1)
		ft := faircc.NewFatTree(nw, faircc.DefaultFatTree().Scaled(2, 2, 2))
		n := len(ft.Hosts)
		for j := 0; j < 64; j++ {
			src, dst := j%n, (j+3)%n
			nw.AddFlow(faircc.FlowSpec{ID: j + 1, Src: ft.Hosts[src].NodeID(),
				Dst: ft.Hosts[dst].NodeID(), Size: 100_000,
				Start: sim.Time(j) * 3 * sim.Microsecond}, faircc.NewHPCC())
		}
		eng.Run()
	}
}
