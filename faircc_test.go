package faircc_test

import (
	"testing"

	"faircc"
)

// TestFacadeSimulation drives the public API end to end the way the
// README's quick start does.
func TestFacadeSimulation(t *testing.T) {
	eng := faircc.NewEngine()
	nw := faircc.NewNetwork(eng, 1)
	star := faircc.NewStar(nw, 5, 100e9, faircc.Microsecond)

	srcs := make([]int, 4)
	for i := range srcs {
		srcs[i] = star.Hosts[i].NodeID()
	}
	rec := &faircc.FCTRecorder{}
	rec.Attach(nw)
	for _, spec := range faircc.StaggeredIncast(srcs, star.Hosts[4].NodeID(),
		200_000, 2, 20*faircc.Microsecond, 0) {
		nw.AddFlow(spec, faircc.NewHPCCVAISF(42_000))
	}
	eng.Run()

	if len(rec.Records) != 4 {
		t.Fatalf("records = %d, want 4", len(rec.Records))
	}
	for _, r := range rec.Records {
		if r.Slowdown < 1 {
			t.Fatalf("slowdown %v below 1", r.Slowdown)
		}
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeAlgorithms instantiates every protocol constructor against a
// live flow.
func TestFacadeAlgorithms(t *testing.T) {
	algos := map[string]func() faircc.Algorithm{
		"hpcc":        faircc.NewHPCC,
		"hpcc-vaisf":  func() faircc.Algorithm { return faircc.NewHPCCVAISF(42_000) },
		"swift":       func() faircc.Algorithm { return faircc.NewSwift(50) },
		"swift-vaisf": func() faircc.Algorithm { return faircc.NewSwiftVAISF(4 * faircc.Microsecond) },
		"dcqcn":       faircc.NewDCQCN,
	}
	for name, mk := range algos {
		t.Run(name, func(t *testing.T) {
			eng := faircc.NewEngine()
			nw := faircc.NewNetwork(eng, 1)
			star := faircc.NewStar(nw, 2, 100e9, faircc.Microsecond)
			if name == "dcqcn" {
				for _, p := range star.Switch.Ports() {
					p.SetRED(faircc.REDConfig{KMinBytes: 100_000, KMaxBytes: 400_000, PMax: 0.2})
				}
				nw.CNPInterval = 50 * faircc.Microsecond
			}
			f := nw.AddFlow(faircc.FlowSpec{ID: 1, Src: star.Hosts[0].NodeID(),
				Dst: star.Hosts[1].NodeID(), Size: 300_000}, mk())
			eng.Run()
			if !f.Finished() {
				t.Fatalf("%s flow did not finish", name)
			}
		})
	}
}

// TestFacadeExperiments exercises the experiment registry through the
// facade.
func TestFacadeExperiments(t *testing.T) {
	names := faircc.ExperimentNames()
	if len(names) < 20 {
		t.Fatalf("only %d experiments registered", len(names))
	}
	res, err := faircc.RunExperiment("fig4", faircc.DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("fig4 returned no series")
	}
}

// TestFacadeFatTree builds the paper's full 320-host topology through the
// facade and routes a flow across pods.
func TestFacadeFatTree(t *testing.T) {
	eng := faircc.NewEngine()
	nw := faircc.NewNetwork(eng, 1)
	ft := faircc.NewFatTree(nw, faircc.DefaultFatTree())
	f := nw.AddFlow(faircc.FlowSpec{ID: 1, Src: ft.Hosts[0].NodeID(),
		Dst: ft.Hosts[319].NodeID(), Size: 100_000}, faircc.NewSwift(100))
	eng.Run()
	if !f.Finished() || f.Hops() != 5 {
		t.Fatalf("cross-pod flow: finished=%v hops=%d", f.Finished(), f.Hops())
	}
}

func TestFacadeCDFs(t *testing.T) {
	if faircc.HadoopCDF().Max() != 10_000_000 {
		t.Error("Hadoop CDF max wrong")
	}
	if faircc.WebSearchCDF().FracAbove(1_000_000) < 0.25 {
		t.Error("WebSearch CDF not long-flow heavy")
	}
	if faircc.StorageCDF().Max() > 2_000_000 {
		t.Error("Storage CDF exceeds 2MB")
	}
	if faircc.Jain([]float64{1, 1, 1}) != 1 {
		t.Error("Jain facade broken")
	}
	if !faircc.DefaultFluid().ConvergesFaster() {
		t.Error("fluid facade broken")
	}
}

// TestFacadeTraceAndNewProtocols exercises tracing and the Timely/DCTCP
// constructors through the facade.
func TestFacadeTraceAndNewProtocols(t *testing.T) {
	eng := faircc.NewEngine()
	nw := faircc.NewNetwork(eng, 1)
	star := faircc.NewStar(nw, 3, 100e9, faircc.Microsecond)
	rec := faircc.AttachTrace(nw, faircc.TraceAll)
	for _, p := range star.Switch.Ports() {
		p.SetRED(faircc.DCTCPMarkingAt(15_000))
	}
	f1 := nw.AddFlow(faircc.FlowSpec{ID: 1, Src: star.Hosts[0].NodeID(),
		Dst: star.Hosts[2].NodeID(), Size: 100_000}, faircc.NewTimely())
	f2 := nw.AddFlow(faircc.FlowSpec{ID: 2, Src: star.Hosts[1].NodeID(),
		Dst: star.Hosts[2].NodeID(), Size: 100_000}, faircc.NewDCTCP())
	eng.Run()
	if !f1.Finished() || !f2.Finished() {
		t.Fatal("flows did not finish")
	}
	counts := rec.CountByKind()
	if counts[faircc.TraceSend] != 200 || counts[faircc.TraceFinish] != 2 {
		t.Fatalf("trace counts wrong: %v", counts)
	}
	if pts := rec.FlowGoodput(1, 10*faircc.Microsecond); len(pts) == 0 {
		t.Fatal("no goodput timeline")
	}
	if faircc.NewTimelyVAISF(4*faircc.Microsecond).Name() != "Timely VAI SF" {
		t.Fatal("Timely VAI SF constructor broken")
	}
}
