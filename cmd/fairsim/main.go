// Command fairsim runs the paper-reproduction experiments by name and
// writes their data series as CSV.
//
// Usage:
//
//	fairsim -list
//	fairsim -exp fig1a [-scale small|medium|full] [-seed 1] [-out dir]
//	fairsim -all [-scale medium] [-out results]
//
// Each experiment regenerates one figure of "Fast Convergence to Fairness
// for Reduced Long Flow Tail Latency in Datacenter Networks" (Snyder &
// Lebeck, IPDPS 2022); see DESIGN.md for the index.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"faircc/internal/exp"
	"faircc/internal/viz"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiment names and exit")
		name   = flag.String("exp", "", "experiment to run (e.g. fig1a)")
		all    = flag.Bool("all", false, "run every registered experiment")
		scale  = flag.String("scale", "medium", "datacenter experiment scale: small, medium, or full")
		seed   = flag.Int64("seed", 1, "simulation seed")
		out    = flag.String("out", "", "directory for CSV output (default: stdout summary only)")
		work   = flag.Int("workers", 0, "parallel variant runners (0 = GOMAXPROCS)")
		plot   = flag.Bool("plot", false, "render an ASCII chart of each result")
		verify = flag.Bool("verify", false, "check the paper's claims against fresh runs and exit")
	)
	flag.Parse()

	if *verify {
		cfg := exp.Config{Seed: *seed, Workers: *work, Scale: *scale}
		failed := 0
		for _, c := range exp.Claims() {
			ok, detail, err := c.Check(cfg)
			status := "PASS"
			if err != nil {
				status, detail = "ERROR", err.Error()
			} else if !ok {
				status = "FAIL"
			}
			if status != "PASS" {
				failed++
			}
			fmt.Printf("%-5s %-24s %s\n      %s\n", status, c.Name, c.Text, detail)
		}
		if failed > 0 {
			fmt.Printf("\n%d claim(s) not reproduced\n", failed)
			os.Exit(1)
		}
		fmt.Println("\nall claims reproduced")
		return
	}

	if *list {
		for _, n := range exp.Names() {
			e, _ := exp.Get(n)
			fmt.Printf("%-18s %s\n", n, e.Title)
		}
		return
	}

	cfg := exp.Config{Seed: *seed, Workers: *work, Scale: *scale}
	var names []string
	switch {
	case *all:
		names = exp.Names()
	case *name != "":
		names = []string{*name}
	default:
		fmt.Fprintln(os.Stderr, "fairsim: need -exp NAME, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, n := range names {
		start := time.Now()
		res, err := exp.Run(n, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fairsim: %s: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("%s(%s elapsed)\n", res.Summary(), time.Since(start).Round(time.Millisecond))
		if *plot {
			series := make([]viz.Series, 0, len(res.Series))
			for _, s := range res.Series {
				series = append(series, viz.Series{Label: s.Label, X: s.X, Y: s.Y})
			}
			opts := viz.Options{Title: res.Title, XLabel: res.XLabel, YLabel: res.YLabel}
			if err := viz.Plot(os.Stdout, opts, series...); err != nil {
				fmt.Fprintf(os.Stderr, "fairsim: plot: %v\n", err)
				os.Exit(1)
			}
		}
		if *out != "" {
			if err := writeCSV(*out, n, res); err != nil {
				fmt.Fprintf(os.Stderr, "fairsim: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir, name string, res *exp.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return f.Close()
}
