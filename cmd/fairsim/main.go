// Command fairsim runs the paper-reproduction experiments by name and
// writes their data series as CSV.
//
// Usage:
//
//	fairsim -list
//	fairsim -exp fig1a [-scale small|medium|large|full] [-seed 1] [-out dir]
//	fairsim -all [-scale medium] [-out results]
//	fairsim -exp fig10 -progress -manifest [-pprof profiles]
//	fairsim -exp incast-lossy -buffer-bytes 150000 -drop-data 5e-4 -drop-ack 5e-4
//	fairsim -exp rtt-unfairness -rtt-slow-delay 100us -rtt-senders 8 -manifest
//
// Each experiment regenerates one figure of "Fast Convergence to Fairness
// for Reduced Long Flow Tail Latency in Datacenter Networks" (Snyder &
// Lebeck, IPDPS 2022); see DESIGN.md for the index.
//
// Observability: -progress prints a periodic sim-time / wall-time /
// events-per-second line per running variant (essential for paper-scale
// runs, which execute hundreds of millions of events); -manifest emits a
// JSON run manifest (params, seed, git-describe, RunStats) next to the
// CSV; -pprof DIR wraps the runs in CPU and heap profiling.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"faircc/internal/exp"
	"faircc/internal/sim"
	"faircc/internal/viz"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		list   = flag.Bool("list", false, "list experiment names and exit")
		name   = flag.String("exp", "", "experiment to run (e.g. fig1a)")
		all    = flag.Bool("all", false, "run every registered experiment")
		scale  = flag.String("scale", "medium", "datacenter experiment scale: small, medium, large, or full")
		seed   = flag.Int64("seed", 1, "simulation seed")
		out    = flag.String("out", "", "directory for CSV output (default: stdout summary only)")
		work   = flag.Int("workers", 0, "parallel variant runners (0 = GOMAXPROCS)")
		shards = flag.Int("shards", 0, "partition each fat-tree simulation into N parallel shards (0/1 = sequential engine; results are deterministic per shard count but differ across counts)")
		plot   = flag.Bool("plot", false, "render an ASCII chart of each result")
		verify = flag.Bool("verify", false, "check the paper's claims against fresh runs and exit")

		coalesce = flag.Bool("ack-coalesce", false, "enable receiver-side ACK coalescing in every simulation (diverges from the paper's per-packet ACK model; see the ack-coalesce experiment)")
		macro    = flag.Bool("macro-events", false, "fuse back-to-back same-flow pacing wakeups into port drains in every simulation (bit-identical results, fewer scheduler events; see the macro-events experiment)")

		bufBytes = flag.Int64("buffer-bytes", 0, "lossy experiments: per-egress switch buffer in bytes (0 = experiment default)")
		dropData = flag.Float64("drop-data", 0, "lossy experiments: random data-packet wire-loss probability (0 = experiment default)")
		dropAck  = flag.Float64("drop-ack", 0, "lossy experiments: random ACK wire-loss probability (0 = experiment default)")

		rttSlowDelay = flag.Duration("rtt-slow-delay", 0, "rtt-unfairness experiments: slow group's access-link propagation delay (0 = scenario preset)")
		rttSenders   = flag.Int("rtt-senders", 0, "rtt-unfairness experiments: senders per RTT class (0 = scenario preset)")

		progress = flag.Bool("progress", false, "print periodic sim-time/events-per-sec lines for each run (stderr)")
		every    = flag.Duration("progress-every", time.Second, "target interval between progress lines")
		manifest = flag.Bool("manifest", false, "write <exp>.manifest.json (params, git-describe, RunStats) next to the CSV")
		pprofDir = flag.String("pprof", "", "write cpu.pprof and heap.pprof around the runs into this directory")
	)
	flag.Parse()

	cfg := exp.Config{
		Seed: *seed, Workers: *work, Scale: *scale, Shards: *shards,
		AckCoalesce: *coalesce, MacroEvents: *macro,
		BufferBytes: *bufBytes, DropDataProb: *dropData, DropAckProb: *dropAck,
		RTTSlowDelay: sim.Time(rttSlowDelay.Nanoseconds()) * sim.Nanosecond,
		RTTSenders:   *rttSenders,
	}
	if *progress {
		cfg.Progress = printProgress
		cfg.ProgressEvery = *every
	}

	if *verify {
		failed := 0
		for _, c := range exp.Claims() {
			ok, detail, err := c.Check(cfg)
			status := "PASS"
			if err != nil {
				status, detail = "ERROR", err.Error()
			} else if !ok {
				status = "FAIL"
			}
			if status != "PASS" {
				failed++
			}
			fmt.Printf("%-5s %-24s %s\n      %s\n", status, c.Name, c.Text, detail)
		}
		if failed > 0 {
			fmt.Printf("\n%d claim(s) not reproduced\n", failed)
			return 1
		}
		fmt.Println("\nall claims reproduced")
		return 0
	}

	if *list {
		for _, n := range exp.Names() {
			e, _ := exp.Get(n)
			fmt.Printf("%-18s %s\n", n, e.Title)
		}
		return 0
	}

	var names []string
	switch {
	case *all:
		names = exp.Names()
	case *name != "":
		names = []string{*name}
	default:
		fmt.Fprintln(os.Stderr, "fairsim: need -exp NAME, -all, or -list")
		flag.Usage()
		return 2
	}

	if *pprofDir != "" {
		stop, err := startProfiles(*pprofDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fairsim: pprof: %v\n", err)
			return 1
		}
		defer stop()
	}

	for _, n := range names {
		start := time.Now()
		res, stats, err := exp.RunWithStats(n, cfg)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fairsim: %s: %v\n", n, err)
			return 1
		}
		fmt.Printf("%s(%s elapsed)\n", res.Summary(), wall.Round(time.Millisecond))
		if stats.Runs > 0 {
			fmt.Printf("  runstats: %s\n", stats)
		}
		if *plot {
			series := make([]viz.Series, 0, len(res.Series))
			for _, s := range res.Series {
				series = append(series, viz.Series{Label: s.Label, X: s.X, Y: s.Y})
			}
			opts := viz.Options{Title: res.Title, XLabel: res.XLabel, YLabel: res.YLabel}
			if err := viz.Plot(os.Stdout, opts, series...); err != nil {
				fmt.Fprintf(os.Stderr, "fairsim: plot: %v\n", err)
				return 1
			}
		}
		if *out != "" {
			if err := writeCSV(*out, n, res); err != nil {
				fmt.Fprintf(os.Stderr, "fairsim: %v\n", err)
				return 1
			}
		}
		if *manifest {
			m := exp.BuildManifest(n, cfg, res, stats, start, wall)
			path, err := exp.WriteManifest(*out, m)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fairsim: manifest: %v\n", err)
				return 1
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}
	return 0
}

// printProgress renders one ProgressUpdate as a stderr line. It may be
// called concurrently by parallel variant runs; each call is a single
// Fprintf, so lines never interleave mid-line.
func printProgress(u exp.ProgressUpdate) {
	state := "running"
	if u.Done {
		state = "done"
	}
	fmt.Fprintf(os.Stderr, "progress %-24s sim %-10v wall %-8s %8.2fM ev/s  %d events (%s)\n",
		u.Label, u.SimTime, u.Wall.Round(10*time.Millisecond),
		u.EventsPerSec/1e6, u.Events, state)
}

// startProfiles begins CPU profiling into dir/cpu.pprof and returns a stop
// function that ends it and writes dir/heap.pprof.
func startProfiles(dir string) (func(), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		cpu.Close()
		heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fairsim: pprof: %v\n", err)
			return
		}
		runtime.GC() // up-to-date allocation stats in the heap profile
		if err := pprof.Lookup("heap").WriteTo(heap, 0); err != nil {
			fmt.Fprintf(os.Stderr, "fairsim: pprof: %v\n", err)
		}
		heap.Close()
		fmt.Fprintf(os.Stderr, "wrote %s and %s\n",
			filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "heap.pprof"))
	}, nil
}

func writeCSV(dir, name string, res *exp.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return f.Close()
}
