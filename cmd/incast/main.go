// Command incast runs configurable n-to-1 incast microbenchmarks on the
// single-switch topology and reports fairness convergence, queue depth,
// and per-flow completion times.
//
// Usage:
//
//	incast -algo hpcc-vaisf -senders 96 -size 1048576 -csv series.csv
//
// Algorithms: hpcc, hpcc-1g, hpcc-prob, hpcc-vaisf, swift, swift-1g,
// swift-prob, swift-vaisf, dcqcn, timely, timely-vaisf.
package main

import (
	"flag"
	"fmt"
	"os"

	"faircc"
)

func main() {
	var (
		algo    = flag.String("algo", "hpcc", "congestion control variant")
		senders = flag.Int("senders", 16, "incast degree")
		size    = flag.Int64("size", 1<<20, "bytes per flow")
		group   = flag.Int("group", 2, "flows starting together")
		everyUs = flag.Int("every", 20, "microseconds between start groups")
		seed    = flag.Int64("seed", 1, "simulation seed")
		csv     = flag.String("csv", "", "write Jain/queue time series to this file")
	)
	flag.Parse()

	eng := faircc.NewEngine()
	nw := faircc.NewNetwork(eng, *seed)
	star := faircc.NewStar(nw, *senders+1, 100e9, faircc.Microsecond)

	maker, needsRED, err := algoMaker(*algo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(2)
	}
	if needsRED {
		for _, p := range star.Switch.Ports() {
			p.SetRED(faircc.REDConfig{KMinBytes: 100_000, KMaxBytes: 400_000, PMax: 0.2})
		}
		nw.CNPInterval = 50 * faircc.Microsecond
	}

	srcs := make([]int, *senders)
	for i := range srcs {
		srcs[i] = star.Hosts[i].NodeID()
	}
	dstIdx := *senders
	specs := faircc.StaggeredIncast(srcs, star.Hosts[dstIdx].NodeID(), *size,
		*group, faircc.Time(*everyUs)*faircc.Microsecond, 0)
	var flows []*faircc.Flow
	for _, spec := range specs {
		flows = append(flows, nw.AddFlow(spec, maker()))
	}

	// Sample Jain (goodput) and bottleneck queue.
	type pt struct{ t, jain, queueKB float64 }
	var series []pt
	interval := 10 * faircc.Microsecond
	var sample func()
	sample = func() {
		var rates []float64
		for _, f := range flows {
			if f.Active() {
				rates = append(rates, float64(f.TakeDeliveredDelta()))
			}
		}
		if len(rates) >= 2 {
			series = append(series, pt{
				t:       eng.Now().Microseconds(),
				jain:    faircc.Jain(rates),
				queueKB: float64(star.HostPorts[dstIdx].QueueBytes()) / 1000,
			})
		}
		eng.After(interval, sample)
	}
	eng.At(0, sample)

	done := false
	for !done {
		done = true
		for _, f := range flows {
			if !f.Finished() {
				done = false
				break
			}
		}
		if !done && !engStep(eng) {
			break
		}
	}

	fmt.Printf("%s %d-1 incast, %d B/flow\n\n", *algo, *senders, *size)
	fmt.Printf("%-6s %-12s %-12s %-10s\n", "flow", "start(us)", "finish(us)", "slowdown")
	for i, f := range flows {
		fmt.Printf("%-6d %-12.0f %-12.0f %-10.1f\n", i+1,
			f.Spec.Start.Microseconds(),
			(f.Spec.Start + f.FCT()).Microseconds(), f.Slowdown())
	}
	maxQ := 0.0
	for _, p := range series {
		if p.queueKB > maxQ {
			maxQ = p.queueKB
		}
	}
	fmt.Printf("\nmax bottleneck queue: %.0f KB\n", maxQ)

	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "incast:", err)
			os.Exit(1)
		}
		fmt.Fprintln(f, "time_us,jain,queue_kb")
		for _, p := range series {
			fmt.Fprintf(f, "%g,%g,%g\n", p.t, p.jain, p.queueKB)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "incast:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csv)
	}
}

func engStep(eng *faircc.Engine) bool { return eng.Step() }

func algoMaker(name string) (func() faircc.Algorithm, bool, error) {
	const minBDP = 42_000.0
	minBDPDelay := faircc.Time(minBDP * 8 * 1e12 / 100e9)
	switch name {
	case "hpcc":
		return func() faircc.Algorithm { return faircc.NewHPCC() }, false, nil
	case "hpcc-1g":
		return func() faircc.Algorithm {
			c := faircc.HPCCConfig{Eta: 0.95, MaxStage: 5, AIBps: 1e9}
			return faircc.NewHPCCWith(c)
		}, false, nil
	case "hpcc-prob":
		return func() faircc.Algorithm {
			c := faircc.HPCCConfig{Eta: 0.95, MaxStage: 5, AIBps: 50e6, Probabilistic: true}
			return faircc.NewHPCCWith(c)
		}, false, nil
	case "hpcc-vaisf":
		return func() faircc.Algorithm { return faircc.NewHPCCVAISF(minBDP) }, false, nil
	case "swift":
		return func() faircc.Algorithm { return faircc.NewSwift(50) }, false, nil
	case "swift-1g":
		return func() faircc.Algorithm {
			c := swiftBase()
			c.AIBps = 1e9
			return faircc.NewSwiftWith(c)
		}, false, nil
	case "swift-prob":
		return func() faircc.Algorithm {
			c := swiftBase()
			c.Probabilistic = true
			return faircc.NewSwiftWith(c)
		}, false, nil
	case "swift-vaisf":
		return func() faircc.Algorithm { return faircc.NewSwiftVAISF(minBDPDelay) }, false, nil
	case "dcqcn":
		return func() faircc.Algorithm { return faircc.NewDCQCN() }, true, nil
	case "timely":
		return func() faircc.Algorithm { return faircc.NewTimely() }, false, nil
	case "timely-vaisf":
		return func() faircc.Algorithm { return faircc.NewTimelyVAISF(minBDPDelay) }, false, nil
	}
	return nil, false, fmt.Errorf("unknown algorithm %q", name)
}

func swiftBase() faircc.SwiftConfig {
	return faircc.SwiftConfig{
		BaseTarget: 5 * faircc.Microsecond,
		PerHop:     2 * faircc.Microsecond,
		Beta:       0.8,
		MaxMdf:     0.5,
		AIBps:      50e6,
	}
}
