package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkEngineSteadyState \t43182056\t        59.12 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkEngineSteadyState" || r.Iterations != 43182056 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 59.12 || r.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics %+v", r.Metrics)
	}
	if _, ok := parseBenchLine("goos: linux"); ok {
		t.Fatal("non-bench line parsed")
	}
	if _, ok := parseBenchLine("BenchmarkX but no number"); ok {
		t.Fatal("malformed line parsed")
	}
}

func TestCompareBaselinesGatesEventsPerSec(t *testing.T) {
	mk := func(evps, allocs float64, expEvps float64) *BenchBaseline {
		return &BenchBaseline{
			Results: []BenchResult{{
				Name:       "BenchmarkIncastSmall",
				Iterations: 100,
				Metrics:    map[string]float64{"events/sec": evps, "allocs/op": allocs, "ns/op": 100},
			}},
			Experiment: &ExpBench{Name: "fig10", Scale: "medium", Samples: 3, EventsPerSec: expEvps},
		}
	}
	base := mk(1e6, 0, 1.5e6)

	if n := compareBaselines(base, mk(1.2e6, 0, 2e6), 0.05); n != 0 {
		t.Fatalf("improvement flagged as %d regression(s)", n)
	}
	if n := compareBaselines(base, mk(0.96e6, 0, 1.5e6), 0.05); n != 0 {
		t.Fatalf("within-threshold dip flagged as %d regression(s)", n)
	}
	// 10% events/sec drop on the microbench: one regression.
	if n := compareBaselines(base, mk(0.9e6, 0, 1.5e6), 0.05); n != 1 {
		t.Fatalf("microbench regression count = %d, want 1", n)
	}
	// Experiment throughput drop: one regression.
	if n := compareBaselines(base, mk(1e6, 0, 1.2e6), 0.05); n != 1 {
		t.Fatalf("experiment regression count = %d, want 1", n)
	}
	// New allocations on a formerly allocation-free path: one regression.
	if n := compareBaselines(base, mk(1e6, 2, 1.5e6), 0.05); n != 1 {
		t.Fatalf("allocs regression count = %d, want 1", n)
	}
	// ns/op is informational only.
	cur := mk(1e6, 0, 1.5e6)
	cur.Results[0].Metrics["ns/op"] = 1000
	if n := compareBaselines(base, cur, 0.05); n != 0 {
		t.Fatalf("ns/op change gated: %d regression(s)", n)
	}
	// A benchmark missing from the current run warns (stale baseline key)
	// but does not fail the gate.
	if n := compareBaselines(base, &BenchBaseline{}, 0.05); n != 0 {
		t.Fatalf("missing benchmark counted as %d regression(s), want warning only", n)
	}
}

func TestCompareBaselinesSingleSampleAdvisory(t *testing.T) {
	// A key where either side is one sample (benchmark Iterations <= 1,
	// experiment Samples <= 1) must warn instead of gating: this is the
	// PR-6 regression where a 1-iteration Fig10Large benchmark swung
	// -17.8% on machine noise and failed an otherwise clean gate.
	mk := func(iters int64, samples int, evps float64) *BenchBaseline {
		return &BenchBaseline{
			Results: []BenchResult{{
				Name:       "BenchmarkFig10Large",
				Iterations: iters,
				Metrics:    map[string]float64{"events/sec": evps, "allocs/op": evps / 100},
			}},
			Experiment: &ExpBench{Name: "fig10", Scale: "medium", Samples: samples, EventsPerSec: evps},
		}
	}
	// 20% swings everywhere, but every key single-sample on one side or
	// the other: advisory only.
	if n := compareBaselines(mk(1, 3, 1e6), mk(100, 3, 0.8e6), 0.05); n != 1 {
		t.Fatalf("1-iteration baseline bench gated (want only the multi-sample experiment): n=%d", n)
	}
	if n := compareBaselines(mk(100, 1, 1e6), mk(100, 3, 0.8e6), 0.05); n != 1 {
		t.Fatalf("1-sample baseline experiment gated (want only the multi-iteration bench): n=%d", n)
	}
	if n := compareBaselines(mk(1, 1, 1e6), mk(1, 1, 0.8e6), 0.05); n != 0 {
		t.Fatalf("all-single-sample regression gated: n=%d, want advisory only", n)
	}
	// Multi-sample on both sides: both keys gate.
	if n := compareBaselines(mk(100, 3, 1e6), mk(100, 3, 0.8e6), 0.05); n != 2 {
		t.Fatalf("multi-sample regression count = %d, want 2", n)
	}
	// Single-sample allocs/op growth is also advisory.
	cur := mk(1, 3, 1e6)
	cur.Results[0].Metrics["allocs/op"] = 1e6
	if n := compareBaselines(mk(1, 3, 1e6), cur, 0.05); n != 0 {
		t.Fatalf("single-sample allocs growth gated: n=%d", n)
	}
}

func TestCompareBaselinesGatesShardedExperiment(t *testing.T) {
	mk := func(seqEvps, shEvps float64) *BenchBaseline {
		return &BenchBaseline{
			Experiment: &ExpBench{Name: "fig10", Scale: "medium", Samples: 3, EventsPerSec: seqEvps},
			Sharded:    &ExpBench{Name: "fig10", Scale: "medium", Shards: 4, Samples: 3, EventsPerSec: shEvps},
		}
	}
	base := mk(1e6, 0.9e6)
	if n := compareBaselines(base, mk(1e6, 0.9e6), 0.05); n != 0 {
		t.Fatalf("unchanged sharded key flagged: n=%d", n)
	}
	// Parallel-engine overhead regression gates even when the sequential
	// engine is unchanged.
	if n := compareBaselines(base, mk(1e6, 0.7e6), 0.05); n != 1 {
		t.Fatalf("sharded regression count = %d, want 1", n)
	}
	// A baseline recorded before the sharded key existed warns, not gates.
	old := mk(1e6, 0.9e6)
	old.Sharded = nil
	if n := compareBaselines(old, mk(1e6, 0.5e6), 0.05); n != 0 {
		t.Fatalf("one-sided sharded key gated: n=%d", n)
	}
	// Mismatched shard counts are different measurements, not comparable.
	dif := mk(1e6, 0.5e6)
	dif.Sharded.Shards = 8
	if n := compareBaselines(base, dif, 0.05); n != 0 {
		t.Fatalf("shard-count mismatch gated: n=%d", n)
	}
}

func TestCompareBaselinesGatesAckCoalesceExperiment(t *testing.T) {
	mk := func(seqEvps, coEvps float64) *BenchBaseline {
		return &BenchBaseline{
			Experiment: &ExpBench{Name: "fig10", Scale: "medium", Samples: 3, EventsPerSec: seqEvps},
			AckCoalesce: &ExpBench{Name: "fig10", Scale: "medium", AckCoalesce: true,
				Samples: 3, EventsPerSec: coEvps},
		}
	}
	base := mk(1e6, 1.3e6)
	if n := compareBaselines(base, mk(1e6, 1.3e6), 0.05); n != 0 {
		t.Fatalf("unchanged coalesce key flagged: n=%d", n)
	}
	// The coalesced fast path regressing gates even when the default
	// per-packet path is unchanged.
	if n := compareBaselines(base, mk(1e6, 1.0e6), 0.05); n != 1 {
		t.Fatalf("coalesce regression count = %d, want 1", n)
	}
	// A baseline recorded before the coalesce key existed warns, not gates.
	old := mk(1e6, 1.3e6)
	old.AckCoalesce = nil
	if n := compareBaselines(old, mk(1e6, 0.5e6), 0.05); n != 0 {
		t.Fatalf("one-sided coalesce key gated: n=%d", n)
	}
	// An ACK-mode mismatch is a different measurement, not comparable: a
	// baseline whose key was (wrongly) recorded per-packet must warn
	// rather than gate against a coalesced run.
	dif := mk(1e6, 0.5e6)
	dif.AckCoalesce.AckCoalesce = false
	if n := compareBaselines(base, dif, 0.05); n != 0 {
		t.Fatalf("ACK-mode mismatch gated: n=%d", n)
	}
}

func TestCompareBaselinesGatesMacroEventExperiment(t *testing.T) {
	mk := func(seqEvps, maEvps float64) *BenchBaseline {
		return &BenchBaseline{
			Experiment: &ExpBench{Name: "fig10", Scale: "medium", Samples: 3, EventsPerSec: seqEvps},
			MacroEvents: &ExpBench{Name: "fig10", Scale: "medium", MacroEvents: true,
				Samples: 3, EventsPerSec: maEvps},
		}
	}
	base := mk(1e6, 1.1e6)
	if n := compareBaselines(base, mk(1e6, 1.1e6), 0.05); n != 0 {
		t.Fatalf("unchanged macro key flagged: n=%d", n)
	}
	// The train-fusion mode regressing gates even when the default
	// per-packet path is unchanged.
	if n := compareBaselines(base, mk(1e6, 0.9e6), 0.05); n != 1 {
		t.Fatalf("macro regression count = %d, want 1", n)
	}
	// A baseline recorded before the macro key existed warns, not gates.
	old := mk(1e6, 1.1e6)
	old.MacroEvents = nil
	if n := compareBaselines(old, mk(1e6, 0.5e6), 0.05); n != 0 {
		t.Fatalf("one-sided macro key gated: n=%d", n)
	}
	// A macro-mode mismatch is a different measurement, not comparable.
	dif := mk(1e6, 0.5e6)
	dif.MacroEvents.MacroEvents = false
	if n := compareBaselines(base, dif, 0.05); n != 0 {
		t.Fatalf("macro-mode mismatch gated: n=%d", n)
	}
}

func TestCompareBaselinesGatesPeakFCTRecords(t *testing.T) {
	mk := func(peak int) *BenchBaseline {
		return &BenchBaseline{
			Experiment: &ExpBench{Name: "fig10", Scale: "medium", Samples: 3,
				EventsPerSec: 1e6, PeakFCTRecords: peak},
		}
	}
	base := mk(10_000)

	if n := compareBaselines(base, mk(10_000), 0.05); n != 0 {
		t.Fatalf("unchanged peak flagged as %d regression(s)", n)
	}
	if n := compareBaselines(base, mk(5_000), 0.05); n != 0 {
		t.Fatalf("lower peak flagged as %d regression(s)", n)
	}
	// Memory gauge growth beyond threshold: an experiment quietly
	// reverting to unbounded retention fails here.
	if n := compareBaselines(base, mk(20_000), 0.05); n != 1 {
		t.Fatalf("peak growth regression count = %d, want 1", n)
	}
	// A baseline recorded before the gauge existed reports but never
	// gates.
	if n := compareBaselines(mk(0), mk(20_000), 0.05); n != 0 {
		t.Fatalf("zero baseline gated: %d regression(s)", n)
	}
}
