package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkEngineSteadyState \t43182056\t        59.12 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkEngineSteadyState" || r.Iterations != 43182056 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 59.12 || r.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics %+v", r.Metrics)
	}
	if _, ok := parseBenchLine("goos: linux"); ok {
		t.Fatal("non-bench line parsed")
	}
	if _, ok := parseBenchLine("BenchmarkX but no number"); ok {
		t.Fatal("malformed line parsed")
	}
}

func TestCompareBaselinesGatesEventsPerSec(t *testing.T) {
	mk := func(evps, allocs float64, expEvps float64) *BenchBaseline {
		return &BenchBaseline{
			Results: []BenchResult{{
				Name:    "BenchmarkIncastSmall",
				Metrics: map[string]float64{"events/sec": evps, "allocs/op": allocs, "ns/op": 100},
			}},
			Experiment: &ExpBench{Name: "fig10", Scale: "medium", EventsPerSec: expEvps},
		}
	}
	base := mk(1e6, 0, 1.5e6)

	if n := compareBaselines(base, mk(1.2e6, 0, 2e6), 0.05); n != 0 {
		t.Fatalf("improvement flagged as %d regression(s)", n)
	}
	if n := compareBaselines(base, mk(0.96e6, 0, 1.5e6), 0.05); n != 0 {
		t.Fatalf("within-threshold dip flagged as %d regression(s)", n)
	}
	// 10% events/sec drop on the microbench: one regression.
	if n := compareBaselines(base, mk(0.9e6, 0, 1.5e6), 0.05); n != 1 {
		t.Fatalf("microbench regression count = %d, want 1", n)
	}
	// Experiment throughput drop: one regression.
	if n := compareBaselines(base, mk(1e6, 0, 1.2e6), 0.05); n != 1 {
		t.Fatalf("experiment regression count = %d, want 1", n)
	}
	// New allocations on a formerly allocation-free path: one regression.
	if n := compareBaselines(base, mk(1e6, 2, 1.5e6), 0.05); n != 1 {
		t.Fatalf("allocs regression count = %d, want 1", n)
	}
	// ns/op is informational only.
	cur := mk(1e6, 0, 1.5e6)
	cur.Results[0].Metrics["ns/op"] = 1000
	if n := compareBaselines(base, cur, 0.05); n != 0 {
		t.Fatalf("ns/op change gated: %d regression(s)", n)
	}
	// A benchmark missing from the current run warns (stale baseline key)
	// but does not fail the gate.
	if n := compareBaselines(base, &BenchBaseline{}, 0.05); n != 0 {
		t.Fatalf("missing benchmark counted as %d regression(s), want warning only", n)
	}
}

func TestCompareBaselinesGatesPeakFCTRecords(t *testing.T) {
	mk := func(peak int) *BenchBaseline {
		return &BenchBaseline{
			Experiment: &ExpBench{Name: "fig10", Scale: "medium",
				EventsPerSec: 1e6, PeakFCTRecords: peak},
		}
	}
	base := mk(10_000)

	if n := compareBaselines(base, mk(10_000), 0.05); n != 0 {
		t.Fatalf("unchanged peak flagged as %d regression(s)", n)
	}
	if n := compareBaselines(base, mk(5_000), 0.05); n != 0 {
		t.Fatalf("lower peak flagged as %d regression(s)", n)
	}
	// Memory gauge growth beyond threshold: an experiment quietly
	// reverting to unbounded retention fails here.
	if n := compareBaselines(base, mk(20_000), 0.05); n != 1 {
		t.Fatalf("peak growth regression count = %d, want 1", n)
	}
	// A baseline recorded before the gauge existed reports but never
	// gates.
	if n := compareBaselines(mk(0), mk(20_000), 0.05); n != 0 {
		t.Fatalf("zero baseline gated: %d regression(s)", n)
	}
}
