// Command ci is the repository's verification gate, runnable anywhere Go
// is installed (no make required):
//
//	go run ./cmd/ci                                    # build + vet + gofmt + test + race + bench smoke
//	go run ./cmd/ci -bench                             # also record BENCH_baseline.json
//	go run ./cmd/ci -bench -bench-out BENCH_pr.json \
//	    -bench-compare BENCH_baseline.json             # record and gate against a baseline
//
// The test step is the repository's tier-1 gate (`go test ./...`), so a
// PR cannot pass ci with a broken unit or experiment test. The race step
// re-runs the whole tree under the race detector in -short mode: -short
// skips only the long datacenter-scale runs, which are single-variant
// re-executions of code the concurrency-heavy packages (internal/par,
// internal/sim) already exercise at full length. A second race step
// re-runs the sharded-engine tests (Parallel|Mailbox|Shard) without
// -short, since those are the tests that actually spin up shard worker
// goroutines. The bench-smoke step
// runs every scheduler benchmark for exactly one iteration, so a
// benchmark that panics or trips its own invariant checks fails the
// default gate without paying measurement time.
//
// The -bench mode records microbenchmark results plus four timed fig10
// experiment runs — sequential, sharded (-bench-shards, so the
// parallel engine's overhead is a first-class gated number),
// ACK-coalesced (the opt-in receiver-side fast path, so its advantage
// over the per-packet model is itself gated), and macro-event (the
// bit-identical train-fusion mode, gated for the same reason) — as JSON.
// Each timed experiment is run -bench-reps times and the best
// (highest events/sec) repetition is recorded: a timed run is a single
// wall-clock sample, and on a shared machine the minimum wall time is
// the only repetition that measures the code rather than the noise.
// With -bench-compare it then diffs the fresh numbers against a
// committed baseline and exits non-zero when events/sec regresses — or
// allocs/op grows — by more than -bench-threshold. ns/op changes are
// reported but not gated: they swing with machine load, while events/sec
// on the same experiment and allocations per op are the two numbers
// performance PRs commit to. Keys where either side is a single sample
// (experiment Samples <= 1, recorded before best-of-N existed, or a
// benchmark that ran exactly one iteration) are demoted to advisory
// warnings instead of gating: one sample cannot distinguish a regression
// from a scheduling hiccup, and a gate that fails on noise trains people
// to ignore it. The experiment run also records its peak
// retained-FCT-record count and gates growth against the baseline, so a
// change that reverts a streaming collector to unbounded per-flow
// retention fails here even if it is throughput-neutral.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"faircc/internal/exp"
)

func main() {
	var (
		bench     = flag.Bool("bench", false, "run benchmarks + a timed experiment and write a BENCH JSON")
		benchPkg  = flag.String("bench-pkgs", "./internal/sim ./internal/net ./internal/exp", "space-separated packages for -bench")
		benchOut  = flag.String("bench-out", "BENCH_baseline.json", "benchmark JSON output path")
		benchExp  = flag.String("bench-exp", "fig10", "experiment for the timed end-to-end run")
		benchScl  = flag.String("bench-scale", "medium", "scale for the timed experiment run")
		benchSeed = flag.Int64("bench-seed", 1, "seed for the timed experiment run")
		benchReps = flag.Int("bench-reps", 3, "repetitions per timed experiment; the best is recorded")
		benchShd  = flag.Int("bench-shards", 8, "shard count for the sharded timed experiment run (0 disables)")
		compare   = flag.String("bench-compare", "", "baseline JSON to gate the fresh -bench numbers against")
		threshold = flag.Float64("bench-threshold", 0.05, "allowed fractional regression before the gate fails")
	)
	flag.Parse()

	steps := []struct {
		name string
		args []string
	}{
		{"build", []string{"go", "build", "./..."}},
		{"vet", []string{"go", "vet", "./..."}},
		{"gofmt", []string{"gofmt", "-l", "."}},
		{"test", []string{"go", "test", "./..."}},
		{"race", []string{"go", "test", "-race", "-short", "./..."}},
		// The parallel-engine tests are the one place -short would hide real
		// concurrency: cross-shard mailboxes, epoch barriers, and the worker
		// goroutines only run at shards > 1. Re-run them un-shortened under
		// the race detector.
		{"race-parallel", []string{"go", "test", "-race", "-run", "Parallel|Mailbox|Shard",
			"./internal/sim", "./internal/net", "./internal/topo", "./internal/exp"}},
		{"bench-smoke", []string{"go", "test", "-run", "^$", "-bench", ".", "-benchtime", "1x", "./internal/sim", "./internal/net"}},
	}
	failed := 0
	for _, s := range steps {
		fmt.Printf("== %s: %s\n", s.name, strings.Join(s.args, " "))
		out, err := exec.Command(s.args[0], s.args[1:]...).CombinedOutput()
		text := strings.TrimSpace(string(out))
		// gofmt -l exits 0 even when files need formatting; any output is
		// a failure.
		if err != nil || (s.name == "gofmt" && text != "") {
			failed++
			fmt.Printf("FAIL %s\n%s\n", s.name, text)
			if err != nil {
				fmt.Println(err)
			}
			continue
		}
		fmt.Printf("ok   %s\n", s.name)
	}
	if failed > 0 {
		fmt.Printf("\n%d step(s) failed\n", failed)
		os.Exit(1)
	}
	if *bench {
		cur, err := runBench(strings.Fields(*benchPkg), *benchExp, *benchScl, *benchSeed, *benchReps, *benchShd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ci: bench:", err)
			os.Exit(1)
		}
		if err := writeJSON(*benchOut, cur); err != nil {
			fmt.Fprintln(os.Stderr, "ci: bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *benchOut, len(cur.Results))
		if *compare != "" {
			base, err := readBaseline(*compare)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ci: bench-compare:", err)
				os.Exit(1)
			}
			if regressions := compareBaselines(base, cur, *threshold); regressions > 0 {
				fmt.Printf("\n%d benchmark regression(s) beyond %.0f%%\n", regressions, *threshold*100)
				os.Exit(1)
			}
			fmt.Println("bench gate passed")
		}
	}
	fmt.Println("\nall checks passed")
}

// BenchResult is one parsed `go test -bench` line: the benchmark name, its
// iteration count, and every reported metric (ns/op, B/op, allocs/op, and
// any custom ReportMetric units).
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// ExpBench is a timed end-to-end experiment run: the same events/sec
// figure fairsim -manifest records, captured under bench conditions.
type ExpBench struct {
	Name  string `json:"name"`
	Scale string `json:"scale"`
	Seed  int64  `json:"seed"`
	// Shards is the -shards value of the run (0 or absent: sequential).
	Shards int `json:"shards,omitempty"`
	// AckCoalesce marks a run with receiver-side ACK coalescing enabled;
	// it is part of the key identity (a coalesced run and a per-packet run
	// are different measurements, never compared against each other).
	AckCoalesce bool `json:"ack_coalesce,omitempty"`
	// MacroEvents marks a run with macro-event train fusion enabled. The
	// simulation results are bit-identical to per-packet execution, but the
	// event count and wall clock are not, so it is part of the key identity
	// like the ACK mode.
	MacroEvents bool `json:"macro_events,omitempty"`
	// Samples is how many repetitions the recorded best was taken over.
	// The compare gate only hard-fails on events/sec when both sides
	// have Samples > 1; single-sample keys are advisory.
	Samples         int     `json:"samples,omitempty"`
	Events          uint64  `json:"events"`
	WallSeconds     float64 `json:"wall_seconds"`
	EventsPerSec    float64 `json:"events_per_sec"`
	EventSlotAllocs uint64  `json:"event_slot_allocs"`
	// PeakFCTRecords is the largest per-run count of retained FCT records
	// (flow completion samples held in memory at once). It is the memory
	// gauge the streaming collectors exist to bound; a PR that silently
	// reverts an experiment to unbounded retention moves this number.
	PeakFCTRecords int `json:"peak_fct_records"`
}

// BenchBaseline is the BENCH_*.json schema.
type BenchBaseline struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Packages   []string      `json:"packages"`
	Results    []BenchResult `json:"results"`
	Experiment *ExpBench     `json:"experiment,omitempty"`
	// Sharded is the same experiment re-timed through the parallel
	// engine, so parallel-overhead regressions gate like sequential ones.
	Sharded *ExpBench `json:"sharded_experiment,omitempty"`
	// AckCoalesce is the same experiment re-timed with receiver-side ACK
	// coalescing on (sequential engine). Gating it keeps the opt-in fast
	// path fast: a change that quietly erodes the coalesced mode's
	// throughput fails here even if the default per-packet path is
	// untouched.
	AckCoalesce *ExpBench `json:"ack_coalesce_experiment,omitempty"`
	// MacroEvents is the same experiment re-timed with macro-event train
	// fusion on (sequential engine). Results are bit-identical to the
	// per-packet run; the key exists so the elision machinery's own cost
	// stays gated — a change that makes the armed-train bookkeeping
	// expensive fails here even if the default path is untouched.
	MacroEvents *ExpBench `json:"macro_event_experiment,omitempty"`
}

func runBench(pkgs []string, expName, scale string, seed int64, reps, shards int) (*BenchBaseline, error) {
	args := append([]string{"test", "-run", "^$", "-bench", ".", "-benchmem"}, pkgs...)
	fmt.Printf("== bench: go %s\n", strings.Join(args, " "))
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("%w\n%s", err, out)
	}
	base := &BenchBaseline{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Packages:  pkgs,
	}
	for _, line := range strings.Split(string(out), "\n") {
		r, ok := parseBenchLine(line)
		if ok {
			base.Results = append(base.Results, r)
		}
	}
	if len(base.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed from output:\n%s", out)
	}
	eb, err := runExpBench(expName, scale, seed, 0, false, false, reps)
	if err != nil {
		return nil, err
	}
	base.Experiment = eb
	if shards > 1 {
		sb, err := runExpBench(expName, scale, seed, shards, false, false, reps)
		if err != nil {
			return nil, err
		}
		base.Sharded = sb
	}
	cb, err := runExpBench(expName, scale, seed, 0, true, false, reps)
	if err != nil {
		return nil, err
	}
	base.AckCoalesce = cb
	mb, err := runExpBench(expName, scale, seed, 0, false, true, reps)
	if err != nil {
		return nil, err
	}
	base.MacroEvents = mb
	return base, nil
}

// runExpBench times one full experiment in-process, reps times, and
// reports the best repetition: the engine-level throughput the
// microbenchmarks cannot see, with best-of-N filtering out the
// co-tenant noise a single wall-clock sample cannot.
func runExpBench(name, scale string, seed int64, shards int, coalesce, macro bool, reps int) (*ExpBench, error) {
	if reps < 1 {
		reps = 1
	}
	fmt.Printf("== bench-exp: %s scale=%s seed=%d shards=%d coalesce=%v macro=%v reps=%d\n",
		name, scale, seed, shards, coalesce, macro, reps)
	cfg := exp.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = seed
	cfg.Shards = shards
	cfg.AckCoalesce = coalesce
	cfg.MacroEvents = macro
	var best *ExpBench
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		_, rs, err := exp.RunWithStats(name, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", name, err)
		}
		wall := time.Since(start)
		eb := &ExpBench{
			Name: name, Scale: scale, Seed: seed,
			Shards:          shards,
			AckCoalesce:     coalesce,
			MacroEvents:     macro,
			Samples:         reps,
			Events:          rs.Events,
			WallSeconds:     wall.Seconds(),
			EventsPerSec:    float64(rs.Events) / wall.Seconds(),
			EventSlotAllocs: rs.EventSlotAllocs,
			PeakFCTRecords:  rs.PeakFCTRecords,
		}
		fmt.Printf("   rep %d: %d events in %.2fs (%.2fM ev/s), %d event slot allocs, peak %d FCT records\n",
			rep+1, eb.Events, eb.WallSeconds, eb.EventsPerSec/1e6, eb.EventSlotAllocs, eb.PeakFCTRecords)
		if best == nil || eb.EventsPerSec > best.EventsPerSec {
			best = eb
		}
	}
	fmt.Printf("   best: %.2fM ev/s over %d rep(s)\n", best.EventsPerSec/1e6, reps)
	return best, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readBaseline(path string) (*BenchBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b BenchBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// compareBaselines gates cur against base and returns the number of
// regressions beyond threshold. Gated metrics: every "events/sec"
// (higher is better) and "allocs/op" (lower is better), plus the
// sequential, sharded, ACK-coalesced, and macro-event experiments'
// events/sec.
// ns/op deltas are
// printed as context only, and any key where either side is a single
// sample (Iterations <= 1, experiment Samples <= 1) is demoted to an
// advisory warning — one sample cannot separate a regression from a
// scheduling hiccup.
func compareBaselines(base, cur *BenchBaseline, threshold float64) int {
	curByName := map[string]BenchResult{}
	for _, r := range cur.Results {
		curByName[r.Name] = r
	}
	regressions := 0
	for _, b := range base.Results {
		c, ok := curByName[b.Name]
		if !ok {
			// A renamed or deleted benchmark is a baseline-hygiene issue,
			// not a performance regression; warn so the author refreshes
			// the baseline, but don't fail the gate on a one-sided key.
			fmt.Printf("warn %-40s missing from current run (refresh the baseline?)\n", b.Name)
			continue
		}
		single := b.Iterations <= 1 || c.Iterations <= 1
		for metric, bv := range b.Metrics {
			cv, ok := c.Metrics[metric]
			if !ok {
				continue
			}
			switch metric {
			case "events/sec":
				switch {
				case cv >= bv*(1-threshold):
					fmt.Printf("gate %-40s %s %.3g -> %.3g ok\n", b.Name, metric, bv, cv)
				case single:
					fmt.Printf("warn %-40s %s %.3g -> %.3g (-%.1f%%) single-sample, advisory only\n",
						b.Name, metric, bv, cv, 100*(1-cv/bv))
				default:
					fmt.Printf("gate %-40s %s %.3g -> %.3g (-%.1f%%) REGRESSED\n",
						b.Name, metric, bv, cv, 100*(1-cv/bv))
					regressions++
				}
			case "allocs/op":
				switch {
				case cv <= bv*(1+threshold)+0.5:
					fmt.Printf("gate %-40s %s %.3g -> %.3g ok\n", b.Name, metric, bv, cv)
				case single:
					fmt.Printf("warn %-40s %s %.3g -> %.3g single-sample, advisory only\n",
						b.Name, metric, bv, cv)
				default:
					fmt.Printf("gate %-40s %s %.3g -> %.3g REGRESSED\n", b.Name, metric, bv, cv)
					regressions++
				}
			case "ns/op":
				fmt.Printf("info %-40s %s %.4g -> %.4g (not gated)\n", b.Name, metric, bv, cv)
			}
		}
	}
	regressions += compareExp("experiment", base.Experiment, cur.Experiment, threshold)
	regressions += compareExp("sharded-experiment", base.Sharded, cur.Sharded, threshold)
	regressions += compareExp("ack-coalesce-experiment", base.AckCoalesce, cur.AckCoalesce, threshold)
	regressions += compareExp("macro-events-experiment", base.MacroEvents, cur.MacroEvents, threshold)
	return regressions
}

// compareExp gates one timed-experiment key pair (sequential, sharded,
// ACK-coalesced, or macro-event) and returns its regression count. The
// pair must describe the same run (name, scale, shard count, ACK mode,
// macro mode) to be comparable; mismatched or one-sided keys warn without
// gating.
func compareExp(label string, b, c *ExpBench, threshold float64) int {
	switch {
	case b == nil && c == nil:
		return 0
	case b == nil || c == nil:
		fmt.Printf("warn %s key present on one side only (refresh the baseline?)\n", label)
		return 0
	case b.Name != c.Name || b.Scale != c.Scale || b.Shards != c.Shards ||
		b.AckCoalesce != c.AckCoalesce || b.MacroEvents != c.MacroEvents:
		fmt.Printf("warn %s keys differ (%s/%s shards=%d coalesce=%v macro=%v vs %s/%s shards=%d coalesce=%v macro=%v), not compared\n",
			label, b.Name, b.Scale, b.Shards, b.AckCoalesce, b.MacroEvents,
			c.Name, c.Scale, c.Shards, c.AckCoalesce, c.MacroEvents)
		return 0
	}
	id := fmt.Sprintf("%s %s/%s", label, b.Name, b.Scale)
	regressions := 0
	bv, cv := b.EventsPerSec, c.EventsPerSec
	switch {
	case cv >= bv*(1-threshold):
		fmt.Printf("gate %s events/sec %.3g -> %.3g (%+.1f%%) ok\n", id, bv, cv, 100*(cv/bv-1))
	case b.Samples <= 1 || c.Samples <= 1:
		fmt.Printf("warn %s events/sec %.3g -> %.3g (-%.1f%%) single-sample, advisory only\n",
			id, bv, cv, 100*(1-cv/bv))
	default:
		fmt.Printf("gate %s events/sec %.3g -> %.3g (-%.1f%%) REGRESSED\n",
			id, bv, cv, 100*(1-cv/bv))
		regressions++
	}
	// Peak retained FCT records: a memory gauge, so lower is better and
	// growth beyond threshold fails. Deterministic (not wall-clock), so it
	// gates even on single-sample runs. A zero baseline (recorded before
	// the gauge existed) only reports.
	bp, cp := b.PeakFCTRecords, c.PeakFCTRecords
	switch {
	case bp == 0:
		fmt.Printf("info %s peak FCT records %d (no baseline, not gated)\n", id, cp)
	case float64(cp) > float64(bp)*(1+threshold):
		fmt.Printf("gate %s peak FCT records %d -> %d (+%.1f%%) REGRESSED\n",
			id, bp, cp, 100*(float64(cp)/float64(bp)-1))
		regressions++
	default:
		fmt.Printf("gate %s peak FCT records %d -> %d ok\n", id, bp, cp)
	}
	return regressions
}

// parseBenchLine parses "BenchmarkX-8  123  456 ns/op  7 B/op ..." lines.
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	r := BenchResult{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return BenchResult{}, false
	}
	return r, true
}
