// Command ci is the repository's verification gate, runnable anywhere Go
// is installed (no make required):
//
//	go run ./cmd/ci            # build + vet + gofmt + race tests
//	go run ./cmd/ci -bench     # additionally write BENCH_baseline.json
//
// The race step targets the packages with real concurrency — the sweep
// runner (internal/par) and the engine it drives (internal/sim) — so the
// panic-recovery and cancellation paths stay race-clean. The -bench mode
// records benchmark baselines as JSON so performance PRs can diff
// events/sec and ns/op against a committed reference point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

func main() {
	var (
		bench    = flag.Bool("bench", false, "run benchmarks and write BENCH_baseline.json")
		benchPkg = flag.String("bench-pkgs", "./internal/sim", "space-separated packages for -bench")
		benchOut = flag.String("bench-out", "BENCH_baseline.json", "benchmark baseline output path")
	)
	flag.Parse()

	steps := []struct {
		name string
		args []string
	}{
		{"build", []string{"go", "build", "./..."}},
		{"vet", []string{"go", "vet", "./..."}},
		{"gofmt", []string{"gofmt", "-l", "."}},
		{"race", []string{"go", "test", "-race", "./internal/par", "./internal/sim"}},
	}
	failed := 0
	for _, s := range steps {
		fmt.Printf("== %s: %s\n", s.name, strings.Join(s.args, " "))
		out, err := exec.Command(s.args[0], s.args[1:]...).CombinedOutput()
		text := strings.TrimSpace(string(out))
		// gofmt -l exits 0 even when files need formatting; any output is
		// a failure.
		if err != nil || (s.name == "gofmt" && text != "") {
			failed++
			fmt.Printf("FAIL %s\n%s\n", s.name, text)
			if err != nil {
				fmt.Println(err)
			}
			continue
		}
		fmt.Printf("ok   %s\n", s.name)
	}
	if failed > 0 {
		fmt.Printf("\n%d step(s) failed\n", failed)
		os.Exit(1)
	}
	if *bench {
		if err := writeBenchBaseline(strings.Fields(*benchPkg), *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "ci: bench:", err)
			os.Exit(1)
		}
	}
	fmt.Println("\nall checks passed")
}

// BenchResult is one parsed `go test -bench` line: the benchmark name, its
// iteration count, and every reported metric (ns/op, B/op, allocs/op, and
// any custom ReportMetric units).
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// BenchBaseline is the BENCH_baseline.json schema.
type BenchBaseline struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Packages  []string      `json:"packages"`
	Results   []BenchResult `json:"results"`
}

func writeBenchBaseline(pkgs []string, outPath string) error {
	args := append([]string{"test", "-run", "^$", "-bench", ".", "-benchmem"}, pkgs...)
	fmt.Printf("== bench: go %s\n", strings.Join(args, " "))
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		return fmt.Errorf("%w\n%s", err, out)
	}
	base := BenchBaseline{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Packages:  pkgs,
	}
	for _, line := range strings.Split(string(out), "\n") {
		r, ok := parseBenchLine(line)
		if ok {
			base.Results = append(base.Results, r)
		}
	}
	if len(base.Results) == 0 {
		return fmt.Errorf("no benchmark lines parsed from output:\n%s", out)
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		f.Close()
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", outPath, len(base.Results))
	return f.Close()
}

// parseBenchLine parses "BenchmarkX-8  123  456 ns/op  7 B/op ..." lines.
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	r := BenchResult{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return BenchResult{}, false
	}
	return r, true
}
