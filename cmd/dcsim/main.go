// Command dcsim runs datacenter fat-tree simulations with CDF-driven
// Poisson traffic and reports FCT slowdown statistics by flow-size class,
// comparing a protocol with and without the paper's VAI + Sampling
// Frequency mechanisms.
//
// Usage:
//
//	dcsim -workload hadoop -protocol hpcc -pods 2 -tors 2 -hosts 8 -ms 5
//	dcsim -workload mix -protocol swift -oversub 4 -ms 2
//	dcsim -k16 -ms 1 -shards 8
//
// Workloads: hadoop, websearch, storage, mix (websearch+storage).
// -oversub N thins the ToR uplinks to an N:1 host-to-fabric ratio; -k16
// swaps in the 4096-host k=16-style Clos.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"faircc"
)

func main() {
	var (
		workloadName = flag.String("workload", "hadoop", "hadoop, websearch, storage, or mix")
		protocol     = flag.String("protocol", "hpcc", "hpcc or swift")
		pods         = flag.Int("pods", 2, "fat-tree pods")
		tors         = flag.Int("tors", 2, "ToR (and Agg) switches per pod")
		hosts        = flag.Int("hosts", 8, "hosts per ToR")
		ms           = flag.Int("ms", 5, "traffic duration, milliseconds")
		load         = flag.Float64("load", 0.5, "offered load as a fraction of host line rate")
		seed         = flag.Int64("seed", 1, "simulation seed")
		shards       = flag.Int("shards", 0, "partition the fat-tree into N parallel shards (0/1 = sequential engine)")
		distFile     = flag.String("dist", "", "flow-size distribution file (HPCC-artifact format; overrides -workload)")
		oversub      = flag.Float64("oversub", 0, "ToR-layer oversubscription ratio, e.g. 4 for 4:1 (0 = the paper's 1:1 fabric)")
		k16          = flag.Bool("k16", false, "use the 4096-host k=16-style Clos instead of -pods/-tors/-hosts")
		coalesce     = flag.Bool("ack-coalesce", false, "enable receiver-side ACK coalescing (diverges from the paper's per-packet ACK model)")
		macro        = flag.Bool("macro-events", false, "fuse back-to-back same-flow pacing wakeups into port drains (bit-identical results, fewer scheduler events)")
	)
	flag.Parse()

	ftCfg := faircc.DefaultFatTree().Scaled(*pods, *tors, *hosts)
	if *k16 {
		ftCfg = faircc.K16FatTree()
	}
	if *oversub > 0 {
		ftCfg = ftCfg.Oversubscribed(*oversub)
	}
	duration := faircc.Time(*ms) * faircc.Millisecond
	name := *workloadName
	if *distFile != "" {
		name = *distFile
	}
	specs, err := genTraffic(name, ftCfg.NumHosts(), *load, duration, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(2)
	}
	fabric := "fat-tree"
	if r := ftCfg.OversubscriptionRatio(); r != 1 {
		fabric = fmt.Sprintf("%.3g:1-oversubscribed fat-tree", r)
	}
	fmt.Printf("%s on %d-host %s, %s traffic, %.0f%% load, %v: %d flows\n\n",
		*protocol, ftCfg.NumHosts(), fabric, *workloadName, *load*100, duration, len(specs))

	for _, vaisf := range []bool{false, true} {
		label := *protocol
		if vaisf {
			label += " VAI SF"
		}
		recs, rs, err := run(*protocol, vaisf, ftCfg, specs, *seed, *shards, *coalesce, *macro)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcsim:", err)
			os.Exit(1)
		}
		fmt.Printf("--- %s ---\n", label)
		report(recs)
		fmt.Printf("  fabric: %.2f GB switched, deepest queue %d KB\n",
			float64(rs.net.FabricTxBytes)/1e9, rs.net.MaxQueuePeak/1000)
		fmt.Printf("  engine: %s\n\n", rs.run)
	}
}

func genTraffic(name string, hosts int, load float64, duration faircc.Time, seed int64) ([]faircc.FlowSpec, error) {
	var cdfs []*faircc.CDF
	switch name {
	case "hadoop":
		cdfs = []*faircc.CDF{faircc.HadoopCDF()}
	case "websearch":
		cdfs = []*faircc.CDF{faircc.WebSearchCDF()}
	case "storage":
		cdfs = []*faircc.CDF{faircc.StorageCDF()}
	case "mix":
		cdfs = []*faircc.CDF{faircc.WebSearchCDF(), faircc.StorageCDF()}
	default:
		// Treat anything else as a distribution file path.
		cdf, err := faircc.LoadCDF(name)
		if err != nil {
			return nil, fmt.Errorf("unknown workload or unreadable distribution %q: %w", name, err)
		}
		cdfs = []*faircc.CDF{cdf}
	}
	var specs []faircc.FlowSpec
	id := 1
	for i, cdf := range cdfs {
		r := rand.New(rand.NewSource(seed + int64(i)))
		lambda := load / float64(len(cdfs)) * 100e9 * float64(hosts) / (8 * cdf.Mean())
		t := faircc.Time(0)
		for {
			t += faircc.Time(r.ExpFloat64() / lambda * 1e12)
			if t >= duration {
				break
			}
			src := r.Intn(hosts)
			dst := src
			for dst == src {
				dst = r.Intn(hosts)
			}
			specs = append(specs, faircc.FlowSpec{
				ID: id, Src: src, Dst: dst,
				Size: int64(math.Max(1, cdf.Sample(r))), Start: t,
			})
			id++
		}
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Start < specs[j].Start })
	return specs, nil
}

// runOut bundles one simulation's measurement snapshots.
type runOut struct {
	net faircc.NetworkStats
	run faircc.RunStats
}

func run(protocol string, vaisf bool, ftCfg faircc.FatTreeConfig, specs []faircc.FlowSpec, seed int64, shards int, coalesce, macro bool) ([]faircc.FlowRecord, runOut, error) {
	eng := faircc.NewEngine()
	nw := faircc.NewNetwork(eng, seed)
	nw.AckCoalesce = coalesce
	nw.MacroEvents = macro
	ft := faircc.NewFatTree(nw, ftCfg)
	if shards > 1 {
		assign, k := ft.ShardMap(shards)
		nw.Shard(assign, k)
	}

	const minBDP = 42_000.0
	minBDPDelay := faircc.Time(minBDP * 8 * 1e12 / 100e9)
	maker := func() faircc.Algorithm {
		switch {
		case protocol == "hpcc" && vaisf:
			return faircc.NewHPCCVAISF(minBDP)
		case protocol == "hpcc":
			return faircc.NewHPCC()
		case vaisf:
			return faircc.NewSwiftVAISF(minBDPDelay)
		default:
			return faircc.NewSwift(100)
		}
	}
	if protocol != "hpcc" && protocol != "swift" {
		return nil, runOut{}, fmt.Errorf("unknown protocol %q", protocol)
	}
	for _, spec := range specs {
		nw.AddFlow(spec, maker())
	}
	start := time.Now()
	var rs faircc.RunStats
	if nw.Shards() > 1 {
		pr := nw.NewParallel()
		if err := pr.Run(); err != nil {
			return nil, runOut{}, err
		}
		rs = faircc.CollectShardedRunStats(nw, pr.Epochs())
	} else {
		eng.Run()
		rs = faircc.CollectRunStats(eng, nw)
	}
	rs.Finish(time.Since(start))
	return faircc.CollectFinishedFlows(nw), runOut{net: nw.Stats(), run: rs}, nil
}

func report(recs []faircc.FlowRecord) {
	classes := []struct {
		name     string
		min, max int64
	}{
		{"<10KB", 0, 10_000},
		{"10KB-100KB", 10_000, 100_000},
		{"100KB-1MB", 100_000, 1_000_000},
		{">1MB", 1_000_000, 1 << 62},
	}
	fmt.Printf("  %-12s %8s %10s %10s %10s\n", "size class", "flows", "p50", "p99", "p99.9")
	for _, c := range classes {
		var xs []float64
		for _, r := range recs {
			if r.Size >= c.min && r.Size < c.max {
				xs = append(xs, r.Slowdown)
			}
		}
		if len(xs) == 0 {
			continue
		}
		fmt.Printf("  %-12s %8d %9.1fx %9.1fx %9.1fx\n", c.name, len(xs),
			percentile(xs, 50), percentile(xs, 99), percentile(xs, 99.9))
	}
	fmt.Println()
}

func percentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
