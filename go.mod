module faircc

go 1.22
