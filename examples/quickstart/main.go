// Quickstart: the paper's core problem in miniature.
//
// Two flows share a 100 Gb/s link. Flow A has been running alone at line
// rate; flow B joins later, also starting at line rate (as RDMA congestion
// control does). Under default HPCC the allocation stays unfair for a long
// time because both flows receive identical (deterministic) feedback and
// react at most once per RTT; with the paper's Variable Additive Increase
// and Sampling Frequency the rates converge to the fair split far sooner.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"faircc"
)

func main() {
	fmt.Println("Two flows, one 100G link. Flow B joins 100us after flow A.")
	fmt.Println("Goodput split (A:B) over time; fair is 50:50.")
	fmt.Println()

	for _, mode := range []string{"HPCC (default)", "HPCC VAI SF"} {
		fmt.Printf("--- %s ---\n", mode)
		run(mode)
		fmt.Println()
	}
}

func run(mode string) {
	eng := faircc.NewEngine()
	nw := faircc.NewNetwork(eng, 1)
	star := faircc.NewStar(nw, 3, 100e9, faircc.Microsecond)

	newAlgo := func() faircc.Algorithm {
		if mode == "HPCC VAI SF" {
			// Token threshold: the network's min BDP, rounded down as
			// the paper does (~52 KB here -> 42 KB), so a joining
			// flow's line-rate dump reliably mints tokens.
			return faircc.NewHPCCVAISF(42_000)
		}
		return faircc.NewHPCC()
	}

	src0, src1 := star.Hosts[0].NodeID(), star.Hosts[1].NodeID()
	dst := star.Hosts[2].NodeID()
	const size = 4 << 20 // 4 MB each
	a := nw.AddFlow(faircc.FlowSpec{ID: 1, Src: src0, Dst: dst, Size: size, Start: 0}, newAlgo())
	b := nw.AddFlow(faircc.FlowSpec{ID: 2, Src: src1, Dst: dst, Size: size,
		Start: 100 * faircc.Microsecond}, newAlgo())

	// Sample the goodput split every 50us.
	var lastA, lastB int64
	var sample func()
	sample = func() {
		da, db := a.Delivered()-lastA, b.Delivered()-lastB
		lastA, lastB = a.Delivered(), b.Delivered()
		if db > 0 || da > 0 {
			tot := float64(da + db)
			fmt.Printf("  t=%-8v A:%2.0f%%  B:%2.0f%%  Jain=%.3f\n",
				eng.Now(), 100*float64(da)/tot, 100*float64(db)/tot,
				faircc.Jain([]float64{float64(da), float64(db)}))
		}
		if !a.Finished() || !b.Finished() {
			eng.After(50*faircc.Microsecond, sample)
		}
	}
	eng.At(100*faircc.Microsecond, sample)
	eng.Run()

	fmt.Printf("  flow A: FCT %-10v slowdown %.1fx\n", a.FCT(), a.Slowdown())
	fmt.Printf("  flow B: FCT %-10v slowdown %.1fx\n", b.FCT(), b.Slowdown())
}
