// Fluidmodel: the paper's Sec. IV-B analysis (Figure 4), standalone.
//
// Two flows start at 100 and 50 Gb/s. Under a once-per-RTT multiplicative
// decrease both decay exponentially at the same relative rate, so their
// *difference* shrinks slowly. Under Sampling Frequency the decrease
// frequency scales with each flow's own rate, so the faster flow sheds
// bandwidth faster and the pair converges toward fairness sooner. The
// program integrates both ODE systems, prints the trajectory, and checks
// the paper's convergence condition 1/r < (C1+C0)/(s*MTU).
//
// Run:
//
//	go run ./examples/fluidmodel
package main

import (
	"fmt"

	"faircc"
)

func main() {
	cfg := faircc.DefaultFluid()
	fmt.Println("Fluid model (paper Sec. IV-B, Fig. 4)")
	fmt.Printf("r = %.0f ns, MTU = %.0f B, s = %.0f, beta = %.1f, rates %.1f / %.2f bytes/ns\n\n",
		cfg.RTT, cfg.MTU, cfg.S, cfg.Beta, cfg.C1, cfg.C0)

	if cfg.ConvergesFaster() {
		fmt.Println("convergence condition 1/r < (C1+C0)/(s*MTU): HOLDS")
	} else {
		fmt.Println("convergence condition 1/r < (C1+C0)/(s*MTU): violated")
	}
	fmt.Println()

	pts := faircc.IntegrateFluid(cfg, 1000, 3e6)
	fmt.Printf("%-10s %-22s %-22s %-12s\n",
		"t (us)", "per-RTT gap R1-R0", "SF gap S1-S0", "difference")
	for _, p := range pts {
		if int(p.T)%200_000 != 0 {
			continue
		}
		fmt.Printf("%-10.0f %-22.4f %-22.4f %-12.4f\n",
			p.T/1000, p.R1-p.R0, p.S1-p.S0, p.Gap)
	}

	peak, peakT := 0.0, 0.0
	for _, p := range pts {
		if p.Gap > peak {
			peak, peakT = p.Gap, p.T
		}
	}
	fmt.Printf("\nfairness gap peaks at %.3f bytes/ns around t = %.0f us:\n", peak, peakT/1000)
	fmt.Println("Sampling Frequency converges to fairness faster exactly while it matters,")
	fmt.Println("then both schemes approach zero difference (the paper's Fig. 4 shape).")
}
