// Datacenter: a scaled-down version of the paper's Sec. VI datacenter
// simulation, runnable in seconds.
//
// A fat-tree carries Poisson traffic drawn from the Facebook-Hadoop-like
// flow size distribution at 50% load. The long flows (>1 MB) are the ones
// whose 99.9% tail FCT the paper's mechanisms halve; small flows stay
// fast either way.
//
// Run:
//
//	go run ./examples/datacenter [-hosts 16] [-ms 2]
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"faircc"
)

func main() {
	hostsPerToR := flag.Int("hosts", 4, "hosts per ToR switch (2 pods x 2 ToRs)")
	ms := flag.Int("ms", 2, "traffic duration in milliseconds")
	flag.Parse()

	ftCfg := faircc.DefaultFatTree().Scaled(2, 2, *hostsPerToR)
	fmt.Printf("fat-tree: %d hosts, Hadoop-like traffic at 50%% load for %d ms\n\n",
		ftCfg.NumHosts(), *ms)

	specs := genTraffic(ftCfg.NumHosts(), faircc.Time(*ms)*faircc.Millisecond)
	fmt.Printf("%d flows generated\n\n", len(specs))

	for _, mode := range []string{"HPCC", "HPCC VAI SF"} {
		recs := run(mode, ftCfg, specs)
		small, long := split(recs)
		fmt.Printf("--- %s ---\n", mode)
		fmt.Printf("  small flows (<100KB): median slowdown %5.1fx   p99.9 %6.1fx\n",
			percentile(small, 50), percentile(small, 99.9))
		fmt.Printf("  long flows  (>1MB):   median slowdown %5.1fx   p99.9 %6.1fx\n",
			percentile(long, 50), percentile(long, 99.9))
	}
}

// genTraffic draws Poisson arrivals from the Hadoop CDF at 50% load.
func genTraffic(hosts int, duration faircc.Time) []faircc.FlowSpec {
	cdf := faircc.HadoopCDF()
	r := rand.New(rand.NewSource(7))
	lambda := 0.5 * 100e9 * float64(hosts) / (8 * cdf.Mean()) // flows/sec
	var specs []faircc.FlowSpec
	t := faircc.Time(0)
	id := 1
	for {
		t += faircc.Time(r.ExpFloat64() / lambda * 1e12)
		if t >= duration {
			return specs
		}
		src := r.Intn(hosts)
		dst := src
		for dst == src {
			dst = r.Intn(hosts)
		}
		specs = append(specs, faircc.FlowSpec{
			ID: id, Src: src, Dst: dst,
			Size: int64(math.Max(1, cdf.Sample(r))), Start: t,
		})
		id++
	}
}

func run(mode string, ftCfg faircc.FatTreeConfig, specs []faircc.FlowSpec) []faircc.FlowRecord {
	eng := faircc.NewEngine()
	nw := faircc.NewNetwork(eng, 1)
	faircc.NewFatTree(nw, ftCfg)
	rec := &faircc.FCTRecorder{}
	rec.Attach(nw)
	for _, spec := range specs {
		var a faircc.Algorithm
		if mode == "HPCC VAI SF" {
			a = faircc.NewHPCCVAISF(42_000)
		} else {
			a = faircc.NewHPCC()
		}
		nw.AddFlow(spec, a)
	}
	eng.Run()
	return rec.Records
}

func split(recs []faircc.FlowRecord) (small, long []float64) {
	for _, r := range recs {
		switch {
		case r.Size < 100_000:
			small = append(small, r.Slowdown)
		case r.Size > 1_000_000:
			long = append(long, r.Slowdown)
		}
	}
	return small, long
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
