// Incast: the paper's 16-1 staggered incast microbenchmark (Sec. III-D),
// the workload that exposes slow convergence to fairness.
//
// Sixteen hosts send 1 MB each to one receiver through a single switch;
// two flows start every 20 us, so late starters join a congested link at
// line rate. Under default HPCC or Swift the flows that start last finish
// first (they grab bandwidth the incumbents never reclaim); with the
// paper's VAI + Sampling Frequency all flows finish together.
//
// Run:
//
//	go run ./examples/incast [-algo hpcc|swift] [-senders 16]
package main

import (
	"flag"
	"fmt"
	"os"

	"faircc"
)

func main() {
	algo := flag.String("algo", "hpcc", "protocol: hpcc or swift")
	senders := flag.Int("senders", 16, "incast degree (senders to one receiver)")
	flag.Parse()

	if *algo != "hpcc" && *algo != "swift" {
		fmt.Fprintln(os.Stderr, "incast: -algo must be hpcc or swift")
		os.Exit(2)
	}

	fmt.Printf("%d-1 staggered incast, 1 MB per flow, 2 flows start every 20us.\n\n", *senders)
	base := run(*algo, false, *senders)
	vaisf := run(*algo, true, *senders)

	fmt.Printf("%-8s %-12s %-22s %-22s\n", "flow", "start (us)", "finish default (us)", "finish VAI SF (us)")
	for i := range base {
		fmt.Printf("%-8d %-12.0f %-22.0f %-22.0f\n", i+1, base[i].start, base[i].finish, vaisf[i].finish)
	}
	fmt.Printf("\nfinish-time spread: default %.0f us, VAI SF %.0f us\n",
		spread(base), spread(vaisf))
	fmt.Println("(default: last-started flows finish first; VAI SF: flows finish together)")
}

type flowResult struct{ start, finish float64 }

func run(algo string, vaisf bool, senders int) []flowResult {
	eng := faircc.NewEngine()
	nw := faircc.NewNetwork(eng, 1)
	star := faircc.NewStar(nw, senders+1, 100e9, faircc.Microsecond)

	// The paper's VAI token threshold: the network's min BDP, rounded
	// down (Sec. VI-A uses ~50 KB for a 62.5 KB-BDP network).
	minBDP := 42_000.0
	minBDPDelay := faircc.Time(minBDP * 8 * 1e12 / 100e9)

	newAlgo := func() faircc.Algorithm {
		switch {
		case algo == "hpcc" && vaisf:
			return faircc.NewHPCCVAISF(minBDP)
		case algo == "hpcc":
			return faircc.NewHPCC()
		case vaisf:
			return faircc.NewSwiftVAISF(minBDPDelay)
		default:
			return faircc.NewSwift(50)
		}
	}

	srcs := make([]int, senders)
	for i := range srcs {
		srcs[i] = star.Hosts[i].NodeID()
	}
	dst := star.Hosts[senders].NodeID()
	var flows []*faircc.Flow
	for _, spec := range faircc.StaggeredIncast(srcs, dst, 1<<20, 2, 20*faircc.Microsecond, 0) {
		flows = append(flows, nw.AddFlow(spec, newAlgo()))
	}
	eng.Run()

	results := make([]flowResult, len(flows))
	for i, f := range flows {
		results[i] = flowResult{
			start:  f.Spec.Start.Microseconds(),
			finish: (f.Spec.Start + f.FCT()).Microseconds(),
		}
	}
	return results
}

func spread(rs []flowResult) float64 {
	lo, hi := rs[0].finish, rs[0].finish
	for _, r := range rs {
		if r.finish < lo {
			lo = r.finish
		}
		if r.finish > hi {
			hi = r.finish
		}
	}
	return hi - lo
}
