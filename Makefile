# Convenience wrappers around the Go-native CI gate (cmd/ci), so the same
# checks run with or without make installed.

.PHONY: verify test bench-baseline

# The verification gate every PR must keep green: build, vet, gofmt, and
# race-enabled tests of the concurrency-bearing packages.
verify:
	go run ./cmd/ci

test:
	go build ./... && go test ./...

# Record benchmark baselines (BENCH_baseline.json) for perf-PR comparisons.
bench-baseline:
	go run ./cmd/ci -bench
