# Convenience wrappers around the Go-native CI gate (cmd/ci), so the same
# checks run with or without make installed.

.PHONY: verify test bench bench-baseline bench-compare

# The verification gate every PR must keep green: build, vet, gofmt,
# race-enabled tests of the concurrency-bearing packages, and a 1-iteration
# smoke run of the scheduler benchmarks.
verify:
	go run ./cmd/ci

test:
	go build ./... && go test ./...

# Run the scheduler microbenchmarks and the end-to-end simulation benches.
bench:
	go test -run '^$$' -bench 'BenchmarkEngine|BenchmarkIncastSmall' -benchmem ./internal/sim .

# Record a benchmark baseline (BENCH_baseline.json): microbenches plus a
# timed fig10-medium experiment run.
bench-baseline:
	go run ./cmd/ci -bench

# Re-measure and gate against the committed baseline; non-zero exit when
# events/sec regresses (or allocs/op grows) by more than 5%.
bench-compare:
	go run ./cmd/ci -bench -bench-out BENCH_current.json -bench-compare BENCH_baseline.json
