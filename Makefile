# Convenience wrappers around the Go-native CI gate (cmd/ci), so the same
# checks run with or without make installed.

.PHONY: verify test bench bench-baseline bench-compare profile

# The verification gate every PR must keep green: build, vet, gofmt,
# race-enabled tests of the concurrency-bearing packages, and a 1-iteration
# smoke run of the scheduler benchmarks.
verify:
	go run ./cmd/ci

test:
	go build ./... && go test ./...

# Run the scheduler microbenchmarks and the end-to-end simulation benches.
bench:
	go test -run '^$$' -bench 'BenchmarkEngine|BenchmarkIncastSmall|BenchmarkFabric|BenchmarkSteadyState|BenchmarkMailbox|BenchmarkEpochBarrier' -benchmem ./internal/sim ./internal/net .

# Record a benchmark baseline (BENCH_baseline.json): microbenches plus
# best-of-3 timed fig10-medium experiment runs — sequential, sharded,
# ACK-coalesced, and macro-event.
bench-baseline:
	go run ./cmd/ci -bench

# Re-measure and gate against the committed baseline; non-zero exit when
# events/sec regresses (or allocs/op grows) by more than 5%. Keys where
# either side is a single sample are advisory warnings only.
# Gate note: the repo's reference throughput for fig10-medium sequential is
# the PR-4 high-water 9.17M ev/s — but absolute numbers only mean anything
# within one recording window on this shared container. During the PR-10
# recording, interleaved A/B runs of the untouched PR-9 build measured
# 6.5-7.9M ev/s against its recorded 9.13M (pure machine drift), and the
# PR-10 build measured 6.3-8.3M in the same windows. Judge regressions by
# the 5% gate against BENCH_pr10.json (recorded in one window), never by
# cross-PR absolutes; see EXPERIMENTS.md "Run manifests and performance
# baselines".
bench-compare:
	go run ./cmd/ci -bench -bench-out BENCH_current.json -bench-compare BENCH_pr10.json

# Profile the reference workload (fig10-medium): cpu.pprof + heap.pprof into
# results/profiles/, the pair the PGO build and the perf notes come from.
# Inspect with `go tool pprof results/profiles/cpu.pprof`.
profile:
	go build -o /tmp/fairsim-profile ./cmd/fairsim
	/tmp/fairsim-profile -exp fig10 -scale medium -seed 1 -pprof results/profiles -out /tmp/fairsim-profile-out
	rm -rf /tmp/fairsim-profile /tmp/fairsim-profile-out
