// Package fluid implements the paper's Sec. IV-B fluid model comparing
// Sampling Frequency's multiplicative decrease with a once-per-RTT
// decrease (Figure 4).
//
// Two flows start at unequal rates C1 > C0 (bytes per nanosecond). Under
// per-RTT decreases each rate obeys
//
//	R_i'(t) = -beta * R_i(t) / r
//
// while under Sampling Frequency the decrease frequency scales with the
// flow's own rate (more ACKs means more decreases), giving
//
//	S_i'(t) = -beta * S_i(t)^2 / (s * MTU)
//
// The fairness gap (R1-R0) - (S1-S0) is positive when SF converges faster;
// Sec. IV-B derives the condition 1/r < (C1+C0)/(s*MTU) for the gap to
// grow at t=0.
package fluid

import "math"

// Config holds the fluid-model parameters. Rates are in bytes per
// nanosecond and times in nanoseconds, following the paper's Fig. 4 units.
type Config struct {
	RTT  float64 // r: observed network RTT, ns (30,000 in Fig. 4)
	MTU  float64 // packet size, bytes (1,000)
	S    float64 // s: ACKs between SF decreases (30)
	Beta float64 // multiplicative decrease factor (0.5)
	C1   float64 // initial rate of flow 1, bytes/ns (100 Gb/s = 12.5)
	C0   float64 // initial rate of flow 0, bytes/ns (50 Gb/s = 6.25)
}

// DefaultConfig returns the exact Fig. 4 parameters: r = 30,000 ns,
// MTU = 1,000 B, s = 30, beta = 0.5, initial rates 100 and 50 Gb/s.
func DefaultConfig() Config {
	return Config{RTT: 30000, MTU: 1000, S: 30, Beta: 0.5, C1: 12.5, C0: 6.25}
}

// GbpsToBytesPerNs converts a rate in Gb/s to the model's bytes/ns unit.
func GbpsToBytesPerNs(gbps float64) float64 { return gbps / 8 }

// RateRTT returns the closed-form per-RTT-decrease rate at time t (ns)
// from initial rate c: exponential decay c * exp(-beta*t/r).
func (cfg Config) RateRTT(c, t float64) float64 {
	return c * math.Exp(-cfg.Beta*t/cfg.RTT)
}

// RateSF returns the closed-form Sampling Frequency rate at time t from
// initial rate c: the solution of S' = -k S^2 with k = beta/(s*MTU),
// namely c / (1 + k*c*t).
func (cfg Config) RateSF(c, t float64) float64 {
	k := cfg.Beta / (cfg.S * cfg.MTU)
	return c / (1 + k*c*t)
}

// FairnessGap returns (R1(t)-R0(t)) - (S1(t)-S0(t)), the quantity Fig. 4
// plots. Positive values mean SF has converged closer to fairness than the
// per-RTT decrease at time t.
func (cfg Config) FairnessGap(t float64) float64 {
	r := cfg.RateRTT(cfg.C1, t) - cfg.RateRTT(cfg.C0, t)
	s := cfg.RateSF(cfg.C1, t) - cfg.RateSF(cfg.C0, t)
	return r - s
}

// ConvergesFaster reports the paper's derived condition for SF to gain
// fairness faster than per-RTT decreases at t = 0:
// 1/r < (C1+C0)/(s*MTU).
func (cfg Config) ConvergesFaster() bool {
	return 1/cfg.RTT < (cfg.C1+cfg.C0)/(cfg.S*cfg.MTU)
}

// Point is one integration sample.
type Point struct {
	T   float64 // ns
	Gap float64 // bytes/ns
	R1  float64
	R0  float64
	S1  float64
	S0  float64
}

// Integrate solves the two ODE systems numerically with fourth-order
// Runge-Kutta at step dt up to tMax, recording every sample. It exists
// both to regenerate Fig. 4 and to cross-check the closed forms.
func Integrate(cfg Config, dt, tMax float64) []Point {
	if dt <= 0 || tMax <= 0 {
		panic("fluid: dt and tMax must be positive")
	}
	k := cfg.Beta / (cfg.S * cfg.MTU)
	dR := func(x float64) float64 { return -cfg.Beta * x / cfg.RTT }
	dS := func(x float64) float64 { return -k * x * x }

	r1, r0, s1, s0 := cfg.C1, cfg.C0, cfg.C1, cfg.C0
	n := int(tMax/dt) + 1
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		pts = append(pts, Point{T: t, Gap: (r1 - r0) - (s1 - s0), R1: r1, R0: r0, S1: s1, S0: s0})
		r1 = rk4(r1, dt, dR)
		r0 = rk4(r0, dt, dR)
		s1 = rk4(s1, dt, dS)
		s0 = rk4(s0, dt, dS)
	}
	return pts
}

func rk4(x, dt float64, f func(float64) float64) float64 {
	k1 := f(x)
	k2 := f(x + dt/2*k1)
	k3 := f(x + dt/2*k2)
	k4 := f(x + dt*k3)
	return x + dt/6*(k1+2*k2+2*k3+k4)
}
