package fluid

import (
	"math"
	"testing"
)

func TestDefaultConfigMatchesFig4(t *testing.T) {
	c := DefaultConfig()
	if c.RTT != 30000 || c.MTU != 1000 || c.S != 30 || c.Beta != 0.5 {
		t.Fatalf("parameters do not match Fig. 4: %+v", c)
	}
	if c.C1 != GbpsToBytesPerNs(100) || c.C0 != GbpsToBytesPerNs(50) {
		t.Fatalf("initial rates %v/%v, want 12.5/6.25 bytes/ns", c.C1, c.C0)
	}
}

func TestClosedFormsAtZero(t *testing.T) {
	c := DefaultConfig()
	if c.RateRTT(c.C1, 0) != c.C1 || c.RateSF(c.C1, 0) != c.C1 {
		t.Fatal("rates at t=0 must equal initial rates")
	}
	if g := c.FairnessGap(0); g != 0 {
		t.Fatalf("gap at t=0 = %v, want 0", g)
	}
}

func TestRTTDecayHalvesPerBetaInterval(t *testing.T) {
	c := DefaultConfig()
	// After one decrease interval r, the rate decays by e^{-beta}; the
	// integral of the MD model over an interval matches a factor-of-beta
	// decrease in the continuous sense.
	got := c.RateRTT(c.C1, c.RTT)
	want := c.C1 * math.Exp(-c.Beta)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RateRTT(r) = %v, want %v", got, want)
	}
}

func TestSFDecaysFasterForHighRates(t *testing.T) {
	c := DefaultConfig()
	// SF decrease frequency scales with rate: over the same horizon the
	// 100G flow must lose proportionally more than the 50G flow.
	t1 := 100000.0
	lossHigh := (c.C1 - c.RateSF(c.C1, t1)) / c.C1
	lossLow := (c.C0 - c.RateSF(c.C0, t1)) / c.C0
	if lossHigh <= lossLow {
		t.Fatalf("high-rate loss %v not above low-rate loss %v", lossHigh, lossLow)
	}
}

func TestConvergesFasterCondition(t *testing.T) {
	c := DefaultConfig()
	// 1/30000 = 3.3e-5 < (12.5+6.25)/30000 = 6.25e-4.
	if !c.ConvergesFaster() {
		t.Fatal("Fig. 4 parameters must satisfy the convergence condition")
	}
	// Slow sampling (huge s) violates it.
	c.S = 1e6
	if c.ConvergesFaster() {
		t.Fatal("s=1e6 should not satisfy the condition")
	}
	// Very long RTT satisfies it even then.
	c.RTT = 1e12
	if !c.ConvergesFaster() {
		t.Fatal("long RTTs should restore the condition")
	}
}

func TestGapPositiveAndEventuallyDiminishes(t *testing.T) {
	// The Fig. 4 shape: the gap rises from 0, peaks, then diminishes
	// toward 0 as both protocols converge.
	c := DefaultConfig()
	pts := Integrate(c, 100, 3e6)
	if pts[0].Gap != 0 {
		t.Fatalf("gap at origin = %v", pts[0].Gap)
	}
	peak, peakIdx := 0.0, 0
	for i, p := range pts {
		if p.Gap > peak {
			peak, peakIdx = p.Gap, i
		}
		// Late in the run the exponential (per-RTT) decay undercuts the
		// hyperbolic SF decay, so the gap may cross slightly below zero;
		// any substantial negative value would mean SF never helped.
		if p.Gap < -0.01 {
			t.Fatalf("gap substantially negative at t=%v: %v", p.T, p.Gap)
		}
	}
	if peak <= 0.5 {
		t.Fatalf("gap peak = %v bytes/ns, want a substantial positive peak", peak)
	}
	if peakIdx == 0 || peakIdx == len(pts)-1 {
		t.Fatalf("peak at boundary (idx %d); want interior rise-and-fall", peakIdx)
	}
	last := pts[len(pts)-1].Gap
	if last > peak/2 {
		t.Fatalf("gap did not diminish: peak %v, final %v", peak, last)
	}
}

func TestIntegrateMatchesClosedForm(t *testing.T) {
	c := DefaultConfig()
	pts := Integrate(c, 50, 1e6)
	for _, p := range pts {
		wantR1 := c.RateRTT(c.C1, p.T)
		wantS1 := c.RateSF(c.C1, p.T)
		if math.Abs(p.R1-wantR1) > 1e-6*wantR1+1e-12 {
			t.Fatalf("RK4 R1 at t=%v: %v vs closed form %v", p.T, p.R1, wantR1)
		}
		if math.Abs(p.S1-wantS1) > 1e-6*wantS1+1e-12 {
			t.Fatalf("RK4 S1 at t=%v: %v vs closed form %v", p.T, p.S1, wantS1)
		}
	}
}

func TestIntegrateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dt")
		}
	}()
	Integrate(DefaultConfig(), 0, 100)
}
