package hpcc

import (
	"math"
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// TestAdditiveProbeStages verifies the MaxStage mechanism: below eta the
// window probes additively for MaxStage RTTs, then the MI branch engages
// even without congestion (so the reference re-anchors to the measured
// utilization).
func TestAdditiveProbeStages(t *testing.T) {
	h := New(DefaultConfig())
	h.Init(env())
	var acked, sent, tx int64
	var ts sim.Time
	// Deflate the window first so increases are visible.
	for i := 0; i < 300; i++ {
		feed(h, &acked, &sent, &tx, &ts, 200_000, 1.0)
	}
	// Idle link: each RTT adds one W_AI to the reference during the
	// probe stages.
	ref0 := h.Reference()
	stages := 0
	lastRef := ref0
	for i := 0; i < 63*7; i++ { // ~7 RTTs of ACKs
		feed(h, &acked, &sent, &tx, &ts, 0, 0.2)
		if h.Reference() != lastRef {
			stages++
			lastRef = h.Reference()
		}
	}
	if stages < 5 {
		t.Fatalf("observed %d reference updates in 7 idle RTTs, want >= 5", stages)
	}
	if h.Reference() <= ref0 {
		t.Fatalf("reference did not grow during probing: %v -> %v", ref0, h.Reference())
	}
}

// TestPerAckDoesNotCompound verifies the reference-window semantics:
// repeated congested ACKs within one RTT recompute W from the same Wc
// instead of compounding the decrease.
func TestPerAckDoesNotCompound(t *testing.T) {
	h := New(DefaultConfig())
	h.Init(env())
	var acked, sent, tx int64
	var ts sim.Time
	// Prime and pass the first RTT boundary.
	feed(h, &acked, &sent, &tx, &ts, 150_000, 1.0)
	feed(h, &acked, &sent, &tx, &ts, 150_000, 1.0)
	ref := h.Reference()
	var windows []float64
	for i := 0; i < 20; i++ { // same congestion, same RTT
		ctl := feed(h, &acked, &sent, &tx, &ts, 150_000, 1.0)
		if h.Reference() != ref {
			t.Fatalf("reference moved within the RTT at ack %d", i)
		}
		windows = append(windows, ctl.WindowBytes)
	}
	// The per-ACK window tracks U against the constant reference: as the
	// EWMA converges the windows converge instead of collapsing
	// geometrically.
	first, last := windows[0], windows[len(windows)-1]
	if last < first/2 {
		t.Fatalf("per-ACK windows compounded: %v -> %v", first, last)
	}
}

// TestEWMATauClamped: a telemetry gap longer than the base RTT must weigh
// the new sample as one full RTT, not more.
func TestEWMATauClamped(t *testing.T) {
	h := New(DefaultConfig())
	h.Init(env())
	h.OnAck(cc.Feedback{AckedBytes: mtu, SentBytes: 100 * mtu, NewlyAcked: mtu,
		Hops: hop(0, 0, 0)})
	u0 := h.Util()
	// Next sample 10 RTTs later: tau/T must clamp to 1, so U equals the
	// new sample exactly.
	gap := 10 * baseRTT
	tx := int64(sim.BytesOver(lineRate, gap) / 2) // 50% utilization
	h.OnAck(cc.Feedback{AckedBytes: 2 * mtu, SentBytes: 101 * mtu, NewlyAcked: mtu,
		Hops: hop(0, tx, gap)})
	if math.Abs(h.Util()-0.5) > 1e-9 {
		t.Fatalf("U = %v after clamped gap, want exactly the new sample 0.5 (u0 was %v)",
			h.Util(), u0)
	}
}

// TestMaxHopDominates: utilization comes from the most congested hop.
func TestMaxHopDominates(t *testing.T) {
	h := New(DefaultConfig())
	h.Init(env())
	twoHops := func(q1, tx1, q2, tx2 int64, ts sim.Time) []cc.Telemetry {
		return []cc.Telemetry{
			{QueueBytes: q1, TxBytes: tx1, TS: ts, RateBps: lineRate},
			{QueueBytes: q2, TxBytes: tx2, TS: ts, RateBps: lineRate},
		}
	}
	h.OnAck(cc.Feedback{AckedBytes: mtu, SentBytes: 100 * mtu, NewlyAcked: mtu,
		Hops: twoHops(0, 0, 0, 0, 0)})
	// Hop 1 idle, hop 2 saturated with a deep queue. Two samples so the
	// min(qlen, qlen_prev) de-noising admits the standing queue.
	dt := baseRTT
	busy := int64(sim.BytesOver(lineRate, dt))
	h.OnAck(cc.Feedback{AckedBytes: 2 * mtu, SentBytes: 101 * mtu, NewlyAcked: mtu,
		Hops: twoHops(0, busy/10, 200_000, busy, dt)})
	h.OnAck(cc.Feedback{AckedBytes: 3 * mtu, SentBytes: 102 * mtu, NewlyAcked: mtu,
		Hops: twoHops(0, busy/10+busy/10, 200_000, 2*busy, 2*dt)})
	// The EWMA took the saturated hop: U ≈ qlen/(B*T) + 1 > 1.
	if h.Util() <= 1 {
		t.Fatalf("U = %v, want > 1 from the congested second hop", h.Util())
	}
}

// TestProbabilisticRateLimit: accepted reactions are at most one per
// window of acked data, so a burst of congested ACKs cannot compound.
func TestProbabilisticRateLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Probabilistic = true
	h := New(cfg)
	h.Init(env())
	// Force acceptance by keeping Wc at max (probability 1).
	var acked, sent, tx int64
	var ts sim.Time
	feed(h, &acked, &sent, &tx, &ts, 150_000, 1.0) // prime
	refChanges := 0
	prev := h.Reference()
	for i := 0; i < 62; i++ { // one window of ACKs, all congested
		feed(h, &acked, &sent, &tx, &ts, 150_000, 1.0)
		if h.Reference() != prev {
			refChanges++
			prev = h.Reference()
		}
	}
	if refChanges > 2 {
		t.Fatalf("reference decreased %d times within one window of data, want <= 2", refChanges)
	}
	if refChanges == 0 {
		t.Fatal("full-window flow never accepted feedback")
	}
}

// TestVAIOnlyVariantName and config plumbing.
func TestVariantPlumbing(t *testing.T) {
	c := VAISFConfig(50_000)
	c.SFEvery = 0
	if New(c).Name() != "HPCC VAI" {
		t.Fatal("VAI-only name wrong")
	}
	c = DefaultConfig()
	c.SFEvery = 30
	if New(c).Name() != "HPCC SF" {
		t.Fatal("SF-only name wrong")
	}
}

// TestWindowNeverBelowMTU even under catastrophic congestion.
func TestWindowFloor(t *testing.T) {
	h := New(DefaultConfig())
	h.Init(env())
	var acked, sent, tx int64
	var ts sim.Time
	for i := 0; i < 5000; i++ {
		ctl := feed(h, &acked, &sent, &tx, &ts, 10_000_000, 1.0)
		if ctl.WindowBytes < mtu {
			t.Fatalf("window %v below one MTU", ctl.WindowBytes)
		}
	}
}
