// Package hpcc implements HPCC (High Precision Congestion Control,
// Li et al., SIGCOMM 2019) as a sender-side algorithm for the faircc
// simulator, plus the variants the paper evaluates: a configurable base
// additive increase ("HPCC 1Gbps"), probabilistic feedback
// ("HPCC Probabilistic", Sec. III-D), and the paper's Variable Additive
// Increase + Sampling Frequency mechanisms ("HPCC VAI SF", Secs. IV-V).
//
// HPCC estimates per-link utilization from INT telemetry:
//
//	u_i = min(qlen, qlen_prev)/(B_i*T) + txRate_i/B_i
//
// takes the maximum across hops, EWMA-filters it into U, and sets the
// window multiplicatively against a reference window Wc:
//
//	U >= eta (or incStage >= maxStage): W = Wc/(U/eta) + W_AI
//	otherwise (additive probe):         W = Wc + W_AI
//
// The reference window Wc updates once per RTT; between updates, per-ACK
// adjustments recompute W from the unchanged Wc, so repeated signals from
// the same congestion event are not compounded.
package hpcc

import (
	"math"

	"faircc/internal/cc"
	"faircc/internal/core"
)

// Config parameterizes HPCC. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	Eta      float64 // target utilization, 0.95 in the paper
	MaxStage int     // additive-probe stages per MI round, 5 in the paper
	AIBps    float64 // base additive increase, 50 Mb/s in the paper

	// VAI enables Variable Additive Increase when non-nil.
	VAI *core.VAIConfig
	// SFEvery enables Sampling Frequency: multiplicative-decrease
	// reference updates every SFEvery ACKs instead of once per RTT.
	// Zero keeps the default once-per-RTT behaviour.
	SFEvery int
	// Probabilistic ignores a would-be reference-updating multiplicative
	// decrease with probability 1 - Wc/maxW (Sec. III-D: feedback is
	// disregarded when "Current Window < rand() % Max Window").
	Probabilistic bool
}

// DefaultConfig returns the paper's "default HPCC" parameters.
func DefaultConfig() Config {
	return Config{Eta: 0.95, MaxStage: 5, AIBps: 50e6}
}

// VAISFConfig returns the paper's "HPCC VAI SF" parameters (Sec. VI-A):
// tokens minted above a minBDP-bytes queue threshold at 1 token/KB, bank
// cap 1000, spend cap 100, dampener constant 8, decreases every 30 ACKs.
func VAISFConfig(minBDPBytes float64) Config {
	c := DefaultConfig()
	c.VAI = &core.VAIConfig{
		TokenThresh:   minBDPBytes,
		AIDiv:         1000, // one token per KB of queue depth
		BankCap:       1000,
		AICap:         100,
		DampenerConst: 8,
	}
	c.SFEvery = 30
	return c
}

// HPCC is the per-flow sender state. Create one per flow with New.
type HPCC struct {
	cfg  Config
	env  cc.Env
	name string

	maxW float64 // line-rate window (B*T)
	wAI  float64 // base additive increase in bytes (AIBps * T / 8)
	wc   float64 // reference window
	w    float64 // current window
	u    float64 // EWMA utilization estimate
	inc  int     // incStage

	marker   core.RTTMarker
	prevHops []cc.Telemetry
	havePrev bool
	lastProb int64 // acked bytes at the last accepted probabilistic MD

	// VAI + SF state.
	vai     *core.VAI
	sampler core.Sampler
	maxQlen float64 // max queue depth seen this RTT (measured congestion)
	sawCong bool    // any U >= eta this RTT (max C >= 1)
}

// New returns an HPCC instance with the given configuration and a
// descriptive variant name used in experiment labels.
func New(cfg Config) *HPCC {
	h := &HPCC{cfg: cfg}
	switch {
	case cfg.VAI != nil && cfg.SFEvery > 0:
		h.name = "HPCC VAI SF"
	case cfg.VAI != nil:
		h.name = "HPCC VAI"
	case cfg.SFEvery > 0:
		h.name = "HPCC SF"
	case cfg.Probabilistic:
		h.name = "HPCC Probabilistic"
	case cfg.AIBps >= 1e9:
		h.name = "HPCC 1Gbps"
	default:
		h.name = "HPCC"
	}
	return h
}

// Name implements cc.Algorithm.
func (h *HPCC) Name() string { return h.name }

// Window returns the current window in bytes (exposed for tests).
func (h *HPCC) Window() float64 { return h.w }

// Reference returns the reference window Wc in bytes (exposed for tests).
func (h *HPCC) Reference() float64 { return h.wc }

// Util returns the EWMA utilization estimate U (exposed for tests).
func (h *HPCC) Util() float64 { return h.u }

// Init implements cc.Algorithm: flows start at line rate with a one-BDP
// window.
func (h *HPCC) Init(env cc.Env) cc.Control {
	h.env = env
	h.maxW = cc.BDPBytes(env.LineRateBps, env.BaseRTT)
	h.wAI = cc.BDPBytes(h.cfg.AIBps, env.BaseRTT)
	h.wc = h.maxW
	h.w = h.maxW
	h.u = 1 // assume full utilization until telemetry arrives
	if h.cfg.VAI != nil {
		h.vai = core.NewVAI(*h.cfg.VAI)
	}
	h.sampler = core.Sampler{Every: h.cfg.SFEvery}
	h.marker.Reset(0)
	return h.control()
}

func (h *HPCC) control() cc.Control {
	w := math.Max(math.Min(h.w, h.maxW), float64(h.env.MTU))
	h.w = w
	return cc.Control{
		WindowBytes: w,
		RateBps:     w * 8 / h.env.BaseRTT.Seconds(),
	}
}

// measureInflight updates the EWMA utilization U from the ACK's INT stack
// (MeasureInflight in the HPCC paper) and returns it. It also records the
// per-RTT congestion bookkeeping VAI needs.
func (h *HPCC) measureInflight(fb cc.Feedback) float64 {
	if !h.havePrev {
		h.prevHops = append(h.prevHops[:0], fb.Hops...)
		h.havePrev = true
		return h.u
	}
	T := h.env.BaseRTT.Seconds()
	u := 0.0
	tau := T
	n := len(fb.Hops)
	if len(h.prevHops) < n {
		n = len(h.prevHops)
	}
	for i := 0; i < n; i++ {
		cur, prev := fb.Hops[i], h.prevHops[i]
		dt := (cur.TS - prev.TS).Seconds()
		if dt <= 0 {
			continue
		}
		txRate := float64(cur.TxBytes-prev.TxBytes) * 8 / dt
		qlen := math.Min(float64(cur.QueueBytes), float64(prev.QueueBytes))
		ui := qlen*8/(cur.RateBps*T) + txRate/cur.RateBps
		if ui > u {
			u = ui
			tau = dt
		}
		if q := float64(cur.QueueBytes); q > h.maxQlen {
			h.maxQlen = q
		}
	}
	if tau > T {
		tau = T
	}
	h.u = (1-tau/T)*h.u + (tau/T)*u
	h.prevHops = append(h.prevHops[:0], fb.Hops...)
	return h.u
}

// OnAck implements cc.Algorithm (NewAck in the HPCC paper, extended with
// the paper's VAI, SF and probabilistic-feedback hooks).
func (h *HPCC) OnAck(fb cc.Feedback) cc.Control {
	util := h.measureInflight(fb)
	rttPassed := h.marker.Passed(fb.AckedBytes)
	sfFired := h.sampler.Tick()

	decrease := util >= h.cfg.Eta || h.inc >= h.cfg.MaxStage
	if util >= h.cfg.Eta {
		h.sawCong = true
	}

	if rttPassed && h.vai != nil {
		// Algorithm 1 runs on RTT boundaries regardless of branch.
		h.vai.OnRTTEnd(h.maxQlen, !h.sawCong)
		h.maxQlen = 0
		h.sawCong = false
	}

	wAI := h.wAI
	if h.vai != nil {
		wAI *= h.vai.Multiplier()
	}

	if decrease {
		// Reference updates once per RTT by default; with SF, every
		// SFEvery ACKs (the decrease period). A flow whose window holds
		// fewer than SFEvery packets therefore reacts *less* often than
		// once per RTT — that asymmetry against flows with more ACKs is
		// the fairness mechanism (Sec. III-B), not an accident. With
		// probabilistic
		// feedback, on any ACK whose feedback is accepted — the
		// acceptance probability is linear in the window, so flows
		// holding more bandwidth react more often, which is the fairness
		// effect Sec. III-D borrows from RED marking.
		update := rttPassed
		if h.cfg.SFEvery > 0 {
			update = sfFired
		}
		if h.cfg.Probabilistic {
			// The first accepted ACK per window of data triggers the
			// reaction; flows with larger windows see more ACKs and so
			// react more often, but never twice to the same congestion
			// event (mirroring DCQCN's CNP rate limit).
			update = false
			if fb.AckedBytes-h.lastProb >= int64(h.wc) && h.useFeedback() {
				update = true
				h.lastProb = fb.AckedBytes
			}
		}
		w := h.wc/(util/h.cfg.Eta) + wAI
		if update {
			if h.vai != nil {
				wAI = h.wAI * h.vai.Spend()
				w = h.wc/(util/h.cfg.Eta) + wAI
			}
			h.inc = 0
			h.wc = clamp(w, float64(h.env.MTU), h.maxW)
		}
		h.w = w
	} else {
		w := h.wc + wAI
		if rttPassed {
			if h.vai != nil {
				wAI = h.wAI * h.vai.Spend()
				w = h.wc + wAI
			}
			h.inc++
			h.wc = clamp(w, float64(h.env.MTU), h.maxW)
		}
		h.w = w
	}
	if rttPassed {
		h.marker.Reset(fb.SentBytes)
	}
	return h.control()
}

// useFeedback implements the probabilistic-feedback rule of Sec. III-D:
// the reaction is used only when Current Window >= rand() % Max Window,
// a linear-in-window acceptance probability. "Current Window" is the
// per-RTT reference window, not the per-ACK window.
func (h *HPCC) useFeedback() bool {
	draw := h.env.Rand.Float64() * h.maxW
	return h.wc >= draw
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
