package hpcc

import (
	"math"
	"math/rand"
	"testing"

	"faircc/internal/cc"
	"faircc/internal/core"
	"faircc/internal/sim"
)

const (
	lineRate = 100e9
	baseRTT  = 5 * sim.Microsecond
	mtu      = 1000
)

func env() cc.Env {
	return cc.Env{
		LineRateBps: lineRate,
		BaseRTT:     baseRTT,
		MTU:         mtu,
		Hops:        1,
		Rand:        rand.New(rand.NewSource(42)),
		Now:         func() sim.Time { return 0 },
	}
}

// hop builds a single-hop INT stack.
func hop(qlen, txBytes int64, ts sim.Time) []cc.Telemetry {
	return []cc.Telemetry{{QueueBytes: qlen, TxBytes: txBytes, TS: ts, RateBps: lineRate}}
}

func TestInitStartsAtLineRate(t *testing.T) {
	h := New(DefaultConfig())
	ctl := h.Init(env())
	bdp := cc.BDPBytes(lineRate, baseRTT) // 62500 bytes
	if ctl.WindowBytes != bdp {
		t.Fatalf("initial window = %v, want BDP %v", ctl.WindowBytes, bdp)
	}
	if math.Abs(ctl.RateBps-lineRate) > 1 {
		t.Fatalf("initial rate = %v, want line rate", ctl.RateBps)
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{DefaultConfig(), "HPCC"},
		{Config{Eta: 0.95, MaxStage: 5, AIBps: 1e9}, "HPCC 1Gbps"},
		{Config{Eta: 0.95, MaxStage: 5, AIBps: 50e6, Probabilistic: true}, "HPCC Probabilistic"},
		{VAISFConfig(50_000), "HPCC VAI SF"},
		{Config{Eta: 0.95, MaxStage: 5, AIBps: 50e6, SFEvery: 30}, "HPCC SF"},
	}
	for _, c := range cases {
		if got := New(c.cfg).Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

// feed one ACK with synthetic telemetry advancing tx at the given
// utilization fraction of line rate and a fixed queue.
func feed(h *HPCC, acked, sent *int64, tx *int64, ts *sim.Time, qlen int64, frac float64) cc.Control {
	dt := 80 * sim.Nanosecond // one MTU slot at 100G
	*ts += dt
	*tx += int64(frac * sim.BytesOver(lineRate, dt))
	*acked += mtu
	*sent += mtu
	return h.OnAck(cc.Feedback{
		Now:        *ts,
		RTT:        baseRTT,
		AckedBytes: *acked,
		SentBytes:  *sent + 60*mtu, // window's worth still in flight
		NewlyAcked: mtu,
		Hops:       hop(qlen, *tx, *ts),
	})
}

func TestDecreaseOnHighUtilization(t *testing.T) {
	h := New(DefaultConfig())
	h.Init(env())
	var acked, sent, tx int64
	var ts sim.Time
	// Saturated link with a deep queue: U ≈ 1 + q/(B*T) > eta.
	var last cc.Control
	for i := 0; i < 200; i++ {
		last = feed(h, &acked, &sent, &tx, &ts, 100_000, 1.0)
	}
	bdp := cc.BDPBytes(lineRate, baseRTT)
	if last.WindowBytes >= bdp*0.8 {
		t.Fatalf("window = %v after sustained congestion, want well below BDP %v",
			last.WindowBytes, bdp)
	}
	if h.Util() < 0.95 {
		t.Fatalf("U = %v, want >= eta under saturation", h.Util())
	}
}

func TestIncreaseWhenUnderutilized(t *testing.T) {
	h := New(DefaultConfig())
	h.Init(env())
	// Drag the window down first.
	var acked, sent, tx int64
	var ts sim.Time
	for i := 0; i < 300; i++ {
		feed(h, &acked, &sent, &tx, &ts, 200_000, 1.0)
	}
	low := h.Window()
	// Now an idle link: zero queue, low tx rate.
	for i := 0; i < 300; i++ {
		feed(h, &acked, &sent, &tx, &ts, 0, 0.3)
	}
	if h.Window() <= low {
		t.Fatalf("window did not recover: %v -> %v", low, h.Window())
	}
}

func TestWindowBounds(t *testing.T) {
	h := New(DefaultConfig())
	h.Init(env())
	var acked, sent, tx int64
	var ts sim.Time
	bdp := cc.BDPBytes(lineRate, baseRTT)
	for i := 0; i < 2000; i++ {
		ctl := feed(h, &acked, &sent, &tx, &ts, 500_000, 1.0)
		if ctl.WindowBytes < mtu || ctl.WindowBytes > bdp {
			t.Fatalf("window %v out of [MTU, BDP]", ctl.WindowBytes)
		}
	}
	// And on a long idle stretch it must top out at BDP, not above.
	for i := 0; i < 2000; i++ {
		ctl := feed(h, &acked, &sent, &tx, &ts, 0, 0.1)
		if ctl.WindowBytes > bdp {
			t.Fatalf("window %v exceeds line-rate BDP %v", ctl.WindowBytes, bdp)
		}
	}
}

func TestReferenceUpdatesOncePerRTT(t *testing.T) {
	h := New(DefaultConfig())
	h.Init(env())
	var acked, sent, tx int64
	var ts sim.Time
	// Prime telemetry.
	feed(h, &acked, &sent, &tx, &ts, 150_000, 1.0)
	// First ack after priming completes the initial RTT marker (acked >
	// 0), so the reference updates once; subsequent acks within the same
	// RTT must not move it.
	feed(h, &acked, &sent, &tx, &ts, 150_000, 1.0)
	ref := h.Reference()
	for i := 0; i < 10; i++ { // still below the snd_nxt mark
		feed(h, &acked, &sent, &tx, &ts, 150_000, 1.0)
		if h.Reference() != ref {
			t.Fatalf("reference moved within an RTT: %v -> %v", ref, h.Reference())
		}
	}
}

func TestSamplingFrequencyUpdatesReferencePerNAcks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SFEvery = 5
	h := New(cfg)
	h.Init(env())
	var acked, sent, tx int64
	var ts sim.Time
	feed(h, &acked, &sent, &tx, &ts, 150_000, 1.0) // prime (tick 1)
	updates := 0
	prev := h.Reference()
	for i := 0; i < 20; i++ { // ticks 2..21: fires at 5,10,15,20
		feed(h, &acked, &sent, &tx, &ts, 150_000, 1.0)
		if h.Reference() != prev {
			updates++
			prev = h.Reference()
		}
	}
	if updates != 4 {
		t.Fatalf("reference updated %d times in 20 congested ACKs with SF=5, want 4", updates)
	}
}

func TestVAIRaisesAIUnderCongestion(t *testing.T) {
	cfg := VAISFConfig(50_000)
	cfgNoVAI := DefaultConfig()
	cfgNoVAI.SFEvery = 30

	run := func(c Config) float64 {
		h := New(c)
		h.Init(env())
		var acked, sent, tx int64
		var ts sim.Time
		// Sustained big queue (new flows joined), then measure recovery
		// speed on an idle link.
		for i := 0; i < 200; i++ {
			feed(h, &acked, &sent, &tx, &ts, 200_000, 1.0)
		}
		start := h.Window()
		for i := 0; i < 63; i++ { // one RTT of idle ACKs
			feed(h, &acked, &sent, &tx, &ts, 0, 0.2)
		}
		return h.Window() - start
	}
	gainVAI := run(cfg)
	gainBase := run(cfgNoVAI)
	if gainVAI <= gainBase {
		t.Fatalf("VAI recovery gain %v not above base %v", gainVAI, gainBase)
	}
}

func TestVAITokensExhaust(t *testing.T) {
	cfg := VAISFConfig(50_000)
	h := New(cfg)
	h.Init(env())
	var acked, sent, tx int64
	var ts sim.Time
	// One burst of congestion mints tokens…
	for i := 0; i < 100; i++ {
		feed(h, &acked, &sent, &tx, &ts, 200_000, 1.0)
	}
	// …then a long congestion-free period must drain the bank back to a
	// multiplier of 1 (steady-state AI equals the base AI).
	for i := 0; i < 5000; i++ {
		feed(h, &acked, &sent, &tx, &ts, 0, 0.2)
	}
	if h.vai.Multiplier() != 1 {
		t.Fatalf("multiplier = %v after long idle, want 1", h.vai.Multiplier())
	}
	if h.vai.Bank() != 0 {
		t.Fatalf("bank = %v after long idle, want 0", h.vai.Bank())
	}
	if h.vai.Dampener() != 0 {
		t.Fatalf("dampener = %v after long idle, want 0", h.vai.Dampener())
	}
}

func TestProbabilisticSmallWindowIgnoresFeedback(t *testing.T) {
	// With Wc forced near zero, the acceptance probability Wc >= U*maxW is
	// tiny, so reference decreases are almost always skipped; with Wc at
	// maxW it is 1. We check both ends through the exported state.
	cfg := DefaultConfig()
	cfg.Probabilistic = true
	h := New(cfg)
	h.Init(env())
	accept, total := 0, 20000
	for i := 0; i < total; i++ {
		if h.useFeedback() {
			accept++
		}
	}
	if accept != total {
		t.Fatalf("full window accepted %d/%d, want all", accept, total)
	}
	h.wc = h.maxW / 2
	accept = 0
	for i := 0; i < total; i++ {
		if h.useFeedback() {
			accept++
		}
	}
	frac := float64(accept) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("half window acceptance = %v, want ~0.5", frac)
	}
	h.wc = 0
	for i := 0; i < total; i++ {
		if h.useFeedback() {
			// rand()%maxW can draw 0, accepting; anything more than a
			// handful would be wrong.
			accept++
		}
	}
}

func TestMeasureInflightMatchesFormula(t *testing.T) {
	h := New(DefaultConfig())
	h.Init(env())
	T := baseRTT.Seconds()
	// Prime with a known sample.
	h.OnAck(cc.Feedback{AckedBytes: mtu, SentBytes: 60 * mtu, NewlyAcked: mtu,
		Hops: hop(0, 0, 0)})
	u0 := h.Util()
	// Second sample: dt = 1us, tx = 12500 bytes => txRate = 100Gb/s,
	// qlen min(50KB, 0) = 0 → u' = 1.0, tau = 1us.
	h.OnAck(cc.Feedback{AckedBytes: 2 * mtu, SentBytes: 61 * mtu, NewlyAcked: mtu,
		Hops: hop(50_000, 12_500, 1*sim.Microsecond)})
	tau := (1 * sim.Microsecond).Seconds()
	want := (1-tau/T)*u0 + (tau/T)*1.0
	if math.Abs(h.Util()-want) > 1e-9 {
		t.Fatalf("U = %v, want %v", h.Util(), want)
	}
}

func TestVAISFConfigMatchesPaper(t *testing.T) {
	c := VAISFConfig(50_000)
	v := c.VAI
	if v.TokenThresh != 50_000 || v.AIDiv != 1000 || v.BankCap != 1000 ||
		v.AICap != 100 || v.DampenerConst != 8 {
		t.Fatalf("VAI params %+v do not match Sec. VI-A", *v)
	}
	if c.SFEvery != 30 {
		t.Fatalf("SFEvery = %d, want 30", c.SFEvery)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		cfg := DefaultConfig()
		cfg.Probabilistic = true
		h := New(cfg)
		e := env() // fixed seed
		h.Init(e)
		var acked, sent, tx int64
		var ts sim.Time
		var ws []float64
		for i := 0; i < 500; i++ {
			ctl := feed(h, &acked, &sent, &tx, &ts, 120_000, 1.0)
			ws = append(ws, ctl.WindowBytes)
		}
		return ws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at ack %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestVAIConfigRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VAI = &core.VAIConfig{} // invalid
	h := New(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("Init must panic on invalid VAI config")
		}
	}()
	h.Init(env())
}
