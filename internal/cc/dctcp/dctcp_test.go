package dctcp

import (
	"math"
	"math/rand"
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

const (
	lineRate = 100e9
	baseRTT  = 5 * sim.Microsecond
	mtu      = 1000
)

func env() cc.Env {
	return cc.Env{
		LineRateBps: lineRate,
		BaseRTT:     baseRTT,
		MTU:         mtu,
		Hops:        1,
		Rand:        rand.New(rand.NewSource(2)),
		Now:         func() sim.Time { return 0 },
	}
}

func TestInitLineRate(t *testing.T) {
	d := New(DefaultConfig())
	ctl := d.Init(env())
	if ctl.WindowBytes != cc.BDPBytes(lineRate, baseRTT) {
		t.Fatalf("initial window = %v, want BDP", ctl.WindowBytes)
	}
	if d.Alpha() != 1 {
		t.Fatalf("initial alpha = %v, want 1", d.Alpha())
	}
}

// feedWindow delivers one window of ACKs with the given fraction marked.
func feedWindow(d *DCTCP, acked *int64, markedFrac float64) {
	n := int(d.Cwnd())
	if n < 1 {
		n = 1
	}
	marked := int(markedFrac * float64(n))
	for i := 0; i < n; i++ {
		*acked += mtu
		d.OnAck(cc.Feedback{AckedBytes: *acked, SentBytes: *acked + int64(n)*mtu,
			NewlyAcked: mtu, ECE: i < marked})
	}
}

func TestAlphaTracksMarkingFraction(t *testing.T) {
	d := New(DefaultConfig())
	d.Init(env())
	var acked int64
	// Sustained 50% marking: alpha converges near 0.5.
	for i := 0; i < 200; i++ {
		feedWindow(d, &acked, 0.5)
	}
	if math.Abs(d.Alpha()-0.5) > 0.1 {
		t.Fatalf("alpha = %v after sustained 50%% marking, want ~0.5", d.Alpha())
	}
	// Marking stops: alpha decays toward 0.
	for i := 0; i < 300; i++ {
		feedWindow(d, &acked, 0)
	}
	if d.Alpha() > 0.05 {
		t.Fatalf("alpha = %v after marking stopped, want near 0", d.Alpha())
	}
}

func TestCutScalesWithAlpha(t *testing.T) {
	d := New(DefaultConfig())
	d.Init(env())
	var acked int64
	// Drive alpha low with mostly unmarked windows.
	for i := 0; i < 100; i++ {
		feedWindow(d, &acked, 0)
	}
	d.cwnd = 40
	alpha := d.Alpha()
	w0 := d.Cwnd()
	// One marked ACK: the cut is alpha/2, not 1/2.
	acked += mtu
	d.OnAck(cc.Feedback{AckedBytes: acked, SentBytes: acked + 40*mtu,
		NewlyAcked: mtu, ECE: true})
	want := w0 * (1 - alpha/2)
	if math.Abs(d.Cwnd()-want) > 1e-9 {
		t.Fatalf("cwnd after mild-congestion cut = %v, want %v", d.Cwnd(), want)
	}
	if d.Cwnd() < w0*0.9 {
		t.Fatalf("mild congestion should cut gently, got %v from %v", d.Cwnd(), w0)
	}
}

func TestOneCutPerWindow(t *testing.T) {
	d := New(DefaultConfig())
	d.Init(env())
	d.cwnd = 20
	var acked int64
	acked += mtu
	d.OnAck(cc.Feedback{AckedBytes: acked, SentBytes: acked + 20*mtu,
		NewlyAcked: mtu, ECE: true})
	after := d.Cwnd()
	// More marked ACKs inside the same window must not cut again.
	for i := 0; i < 10; i++ {
		acked += mtu
		d.OnAck(cc.Feedback{AckedBytes: acked, SentBytes: acked + 20*mtu,
			NewlyAcked: mtu, ECE: true})
	}
	if d.Cwnd() != after {
		t.Fatalf("window cut twice in one RTT: %v -> %v", after, d.Cwnd())
	}
}

func TestGrowthOnCleanAcks(t *testing.T) {
	d := New(DefaultConfig())
	d.Init(env())
	d.cwnd = 10
	w0 := d.Cwnd()
	var acked int64 = mtu
	d.OnAck(cc.Feedback{AckedBytes: acked, SentBytes: acked + 10*mtu, NewlyAcked: mtu})
	want := w0 + 1/w0
	if math.Abs(d.Cwnd()-want) > 1e-9 {
		t.Fatalf("cwnd = %v, want %v (+1/cwnd per acked packet)", d.Cwnd(), want)
	}
}

func TestCwndBounds(t *testing.T) {
	d := New(DefaultConfig())
	d.Init(env())
	var acked int64
	for i := 0; i < 500; i++ {
		feedWindow(d, &acked, 1)
	}
	if d.Cwnd() < 0.1 {
		t.Fatalf("cwnd %v below floor", d.Cwnd())
	}
	for i := 0; i < 50_000; i++ {
		feedWindow(d, &acked, 0)
	}
	if d.Cwnd() > d.maxCwnd {
		t.Fatalf("cwnd %v above line-rate cap", d.Cwnd())
	}
}

func TestRecommendedK(t *testing.T) {
	// 100G, 5us RTT: BDP 62.5KB -> K ~ 13KB.
	k := RecommendedK(lineRate, baseRTT)
	if k < 9_000 || k > 20_000 {
		t.Fatalf("K = %d, want ~13KB", k)
	}
	red := MarkingAt(k)
	if red.PMax != 1 || red.KMaxBytes != red.KMinBytes+1 {
		t.Fatalf("step marking misconfigured: %+v", red)
	}
}
