// Package dctcp implements DCTCP (Alizadeh et al., SIGCOMM 2010), which
// the paper cites as the origin of scaling the multiplicative decrease
// with the *extent* of congestion — one of the design decisions Sec.
// III-A identifies as trading convergence speed for low latency. It
// serves as an additional ECN-based baseline next to DCQCN.
//
// The sender maintains alpha, an EWMA of the fraction of ECN-marked
// bytes per window:
//
//	alpha = (1-g)*alpha + g*F
//
// and on congestion cuts the window once per RTT by alpha/2:
//
//	cwnd = cwnd * (1 - alpha/2)
//
// Unmarked ACKs grow the window by 1/cwnd packets (standard congestion
// avoidance). Switches mark deterministically above a single threshold K
// (configure ports with MarkingAt).
package dctcp

import (
	"math"

	"faircc/internal/cc"
	"faircc/internal/net"
	"faircc/internal/sim"
)

// Config parameterizes DCTCP.
type Config struct {
	G            float64 // alpha gain, 1/16
	InitialAlpha float64 // 1 (assume heavy congestion until measured)
}

// DefaultConfig returns the DCTCP paper's parameters.
func DefaultConfig() Config {
	return Config{G: 1.0 / 16, InitialAlpha: 1}
}

// MarkingAt returns the switch RED configuration for DCTCP's step
// marking: every packet enqueued above K bytes is marked.
func MarkingAt(kBytes int64) net.REDConfig {
	return net.REDConfig{KMinBytes: kBytes, KMaxBytes: kBytes + 1, PMax: 1}
}

// RecommendedK returns the DCTCP marking threshold for a link: about
// 1/7th of the bandwidth-delay product (the paper's guideline
// K > C*RTT/7).
func RecommendedK(linkBps float64, rtt sim.Time) int64 {
	return int64(cc.BDPBytes(linkBps, rtt) / 7 * 1.5)
}

// DCTCP is the per-flow sender state.
type DCTCP struct {
	cfg Config
	env cc.Env

	cwnd    float64 // packets
	maxCwnd float64
	alpha   float64

	// Per-window marking accounting.
	ackedBytes  int64
	markedBytes int64
	windowEnd   int64 // acked-bytes mark closing the current window
	canCut      bool  // one cut per window
}

// New returns a DCTCP instance.
func New(cfg Config) *DCTCP { return &DCTCP{cfg: cfg} }

// Name implements cc.Algorithm.
func (d *DCTCP) Name() string { return "DCTCP" }

// Alpha returns the congestion estimate (for tests).
func (d *DCTCP) Alpha() float64 { return d.alpha }

// Cwnd returns the congestion window in packets (for tests).
func (d *DCTCP) Cwnd() float64 { return d.cwnd }

// Init implements cc.Algorithm: flows start at line rate like the other
// RDMA protocols in this simulator.
func (d *DCTCP) Init(env cc.Env) cc.Control {
	d.env = env
	d.maxCwnd = cc.BDPBytes(env.LineRateBps, env.BaseRTT) / float64(env.MTU)
	d.cwnd = d.maxCwnd
	d.alpha = d.cfg.InitialAlpha
	d.canCut = true
	return d.control()
}

func (d *DCTCP) control() cc.Control {
	d.cwnd = math.Min(math.Max(d.cwnd, 0.1), d.maxCwnd)
	w := d.cwnd * float64(d.env.MTU)
	rate := d.env.LineRateBps
	if d.cwnd < 1 {
		rate = w * 8 / d.env.BaseRTT.Seconds()
	}
	return cc.Control{WindowBytes: math.Max(w, 1), RateBps: rate}
}

// OnAck implements cc.Algorithm.
func (d *DCTCP) OnAck(fb cc.Feedback) cc.Control {
	d.ackedBytes += int64(fb.NewlyAcked)
	if fb.ECE {
		d.markedBytes += int64(fb.NewlyAcked)
	}

	// Close the observation window once a window of data is acked.
	if fb.AckedBytes > d.windowEnd {
		if d.ackedBytes > 0 {
			f := float64(d.markedBytes) / float64(d.ackedBytes)
			d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G*f
		}
		d.ackedBytes, d.markedBytes = 0, 0
		d.windowEnd = fb.SentBytes
		d.canCut = true
	}

	if fb.ECE {
		if d.canCut {
			d.cwnd *= 1 - d.alpha/2
			d.canCut = false
		}
	} else if d.cwnd >= 1 {
		d.cwnd += float64(fb.NewlyAcked) / float64(d.env.MTU) / d.cwnd
	} else {
		d.cwnd += float64(fb.NewlyAcked) / float64(d.env.MTU)
	}
	return d.control()
}
