// Package timely implements TIMELY (Mittal et al., SIGCOMM 2015), the
// RTT-gradient-based congestion control the paper cites as its third
// example of a sender-side reaction protocol. It exists here to
// demonstrate the paper's claim that Variable Additive Increase and
// Sampling Frequency "could be used with a multitude of congestion
// control algorithms": both mechanisms attach to TIMELY exactly as they
// do to Swift.
//
// TIMELY tracks the smoothed RTT gradient and adjusts a pacing rate:
//
//	rtt < Tlow:            rate += delta             (additive increase)
//	rtt > Thigh:           rate *= 1 - beta*(1 - Thigh/rtt)
//	gradient <= 0:         rate += N*delta           (N = 5 in HAI mode)
//	gradient > 0:          rate *= 1 - beta*norm_gradient
//
// where norm_gradient is the EWMA of RTT differences divided by the
// minimum RTT, and HAI mode engages after five consecutive non-positive
// gradients. Parameters default to the TIMELY paper's values rescaled to
// a 100 Gb/s, microsecond-RTT fabric.
package timely

import (
	"math"

	"faircc/internal/cc"
	"faircc/internal/core"
	"faircc/internal/sim"
)

// Config parameterizes TIMELY.
type Config struct {
	Alpha    float64  // EWMA weight for the RTT-difference filter (0.46)
	Beta     float64  // multiplicative decrease factor (0.8)
	DeltaBps float64  // additive increase step (50 Mb/s, matching the paper's AI)
	TLow     sim.Time // below this RTT, always increase (base + 1 us)
	THigh    sim.Time // above this RTT, always decrease (base + 20 us)
	HAIAfter int      // consecutive non-positive gradients to enter HAI (5)
	HAIMult  float64  // delta multiplier in HAI mode (5)

	// VAI and SFEvery attach the paper's mechanisms, as for Swift:
	// measured congestion is the flow's maximum RTT over a round trip.
	VAI     *core.VAIConfig
	SFEvery int
}

// DefaultConfig returns TIMELY parameters for a 100 Gb/s fabric. TLow and
// THigh are offsets added to the flow's base RTT at Init.
func DefaultConfig() Config {
	return Config{
		Alpha:    0.46,
		Beta:     0.8,
		DeltaBps: 50e6,
		TLow:     1 * sim.Microsecond,
		THigh:    20 * sim.Microsecond,
		HAIAfter: 5,
		HAIMult:  5,
	}
}

// VAISFConfig returns TIMELY with VAI and Sampling Frequency attached,
// sized like Swift's: one token per 30 ns of delay above the threshold,
// which is TLow plus the min-BDP delay.
func VAISFConfig(minBDPDelay sim.Time) Config {
	c := DefaultConfig()
	c.VAI = &core.VAIConfig{
		TokenThresh:   float64(minBDPDelay), // completed with TLow in Init
		AIDiv:         float64(30 * sim.Nanosecond),
		BankCap:       1000,
		AICap:         100,
		DampenerConst: 8,
	}
	c.SFEvery = 30
	return c
}

// Timely is the per-flow sender state.
type Timely struct {
	cfg  Config
	env  cc.Env
	name string

	rate     float64 // pacing rate, bps
	tLow     sim.Time
	tHigh    sim.Time
	prevRTT  sim.Time
	rttDiff  float64 // EWMA of RTT differences, ps
	negCount int     // consecutive non-positive gradients

	marker  core.RTTMarker
	sampler core.Sampler
	vai     *core.VAI
	maxRTT  sim.Time
	sawCong bool
	minRate float64
}

// New returns a TIMELY instance.
func New(cfg Config) *Timely {
	t := &Timely{cfg: cfg}
	switch {
	case cfg.VAI != nil && cfg.SFEvery > 0:
		t.name = "Timely VAI SF"
	case cfg.VAI != nil:
		t.name = "Timely VAI"
	case cfg.SFEvery > 0:
		t.name = "Timely SF"
	default:
		t.name = "Timely"
	}
	return t
}

// Name implements cc.Algorithm.
func (t *Timely) Name() string { return t.name }

// Rate returns the current pacing rate in bps (for tests).
func (t *Timely) Rate() float64 { return t.rate }

// Init implements cc.Algorithm: flows start at line rate.
func (t *Timely) Init(env cc.Env) cc.Control {
	t.env = env
	t.rate = env.LineRateBps
	t.minRate = 10e6
	t.tLow = env.BaseRTT + t.cfg.TLow
	t.tHigh = env.BaseRTT + t.cfg.THigh
	t.prevRTT = env.BaseRTT
	if t.cfg.VAI != nil {
		v := *t.cfg.VAI
		v.TokenThresh += float64(t.tLow)
		t.vai = core.NewVAI(v)
	}
	t.sampler = core.Sampler{Every: t.cfg.SFEvery}
	t.marker.Reset(0)
	return t.control()
}

func (t *Timely) control() cc.Control {
	t.rate = math.Min(math.Max(t.rate, t.minRate), t.env.LineRateBps)
	return cc.Control{
		// TIMELY is rate-based; the window is a line-rate BDP cap so
		// pacing governs.
		WindowBytes: cc.BDPBytes(t.env.LineRateBps, t.env.BaseRTT),
		RateBps:     t.rate,
	}
}

// OnAck implements cc.Algorithm.
func (t *Timely) OnAck(fb cc.Feedback) cc.Control {
	rtt := fb.RTT
	newDiff := float64(rtt - t.prevRTT)
	t.prevRTT = rtt
	t.rttDiff = (1-t.cfg.Alpha)*t.rttDiff + t.cfg.Alpha*newDiff
	gradient := t.rttDiff / float64(t.env.BaseRTT)

	rttPassed := t.marker.Passed(fb.AckedBytes)
	sfFired := t.sampler.Tick()
	t.noteCongestion(rtt, rttPassed)

	delta := t.cfg.DeltaBps
	if t.vai != nil {
		delta *= t.vai.Multiplier()
	}

	// Decreases obey the Sampling Frequency cadence when configured;
	// increases remain once per RTT (Sec. IV-B: using SF on increases
	// would favor large flows).
	decreaseAllowed := rttPassed
	if t.cfg.SFEvery > 0 {
		decreaseAllowed = sfFired
	}
	increaseAllowed := rttPassed

	switch {
	case rtt < t.tLow:
		t.negCount = 0
		if increaseAllowed {
			t.spend(rttPassed)
			t.rate += delta
		}
	case rtt > t.tHigh:
		t.negCount = 0
		if decreaseAllowed {
			t.spend(rttPassed)
			t.rate *= 1 - t.cfg.Beta*(1-float64(t.tHigh)/float64(rtt))
		}
	case gradient <= 0:
		t.negCount++
		if increaseAllowed {
			t.spend(rttPassed)
			n := 1.0
			if t.negCount >= t.cfg.HAIAfter {
				n = t.cfg.HAIMult
			}
			t.rate += n * delta
		}
	default:
		t.negCount = 0
		if decreaseAllowed {
			t.spend(rttPassed)
			t.rate *= 1 - t.cfg.Beta*math.Min(gradient, 1)
		}
	}
	if rttPassed {
		t.marker.Reset(fb.SentBytes)
	}
	return t.control()
}

// spend draws the VAI multiplier once per rate-update period.
func (t *Timely) spend(rttPassed bool) {
	if t.vai != nil {
		t.vai.Spend()
	}
	_ = rttPassed
}

// noteCongestion maintains Algorithm 1's per-RTT bookkeeping.
func (t *Timely) noteCongestion(rtt sim.Time, rttPassed bool) {
	if rtt > t.maxRTT {
		t.maxRTT = rtt
	}
	if rtt > t.tLow {
		t.sawCong = true
	}
	if rttPassed && t.vai != nil {
		t.vai.OnRTTEnd(float64(t.maxRTT), !t.sawCong)
		t.maxRTT = 0
		t.sawCong = false
	}
}
