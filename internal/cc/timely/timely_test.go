package timely

import (
	"math"
	"math/rand"
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

const (
	lineRate = 100e9
	baseRTT  = 5 * sim.Microsecond
	mtu      = 1000
)

func env() cc.Env {
	return cc.Env{
		LineRateBps: lineRate,
		BaseRTT:     baseRTT,
		MTU:         mtu,
		Hops:        1,
		Rand:        rand.New(rand.NewSource(5)),
		Now:         func() sim.Time { return 0 },
	}
}

// ackUntilChange feeds ACKs with the given measured RTT until the rate
// changes once (or 100 ACKs pass), returning the rate delta.
func ackUntilChange(tl *Timely, acked *int64, rtt sim.Time) float64 {
	before := tl.Rate()
	for i := 0; i < 100; i++ {
		*acked += mtu
		tl.OnAck(cc.Feedback{Now: 0, RTT: rtt, AckedBytes: *acked,
			SentBytes: *acked + 10*mtu, NewlyAcked: mtu})
		if tl.Rate() != before {
			break
		}
	}
	return tl.Rate() - before
}

// ackRTT feeds a window's worth of ACKs (one nominal RTT).
func ackRTT(tl *Timely, acked *int64, rtt sim.Time) cc.Control {
	var ctl cc.Control
	for i := 0; i < 11; i++ {
		*acked += mtu
		ctl = tl.OnAck(cc.Feedback{Now: 0, RTT: rtt, AckedBytes: *acked,
			SentBytes: *acked + 10*mtu, NewlyAcked: mtu})
	}
	return ctl
}

func TestNames(t *testing.T) {
	if New(DefaultConfig()).Name() != "Timely" {
		t.Error("default name wrong")
	}
	if New(VAISFConfig(4*sim.Microsecond)).Name() != "Timely VAI SF" {
		t.Error("VAI SF name wrong")
	}
}

func TestInitLineRate(t *testing.T) {
	tl := New(DefaultConfig())
	ctl := tl.Init(env())
	if ctl.RateBps != lineRate {
		t.Fatalf("initial rate = %v, want line rate", ctl.RateBps)
	}
}

func TestAdditiveIncreaseBelowTLow(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Init(env())
	tl.rate = 50e9
	var acked int64
	step := ackUntilChange(tl, &acked, baseRTT) // rtt < tLow = base + 1us
	if math.Abs(step-50e6) > 1 {
		t.Fatalf("AI step = %v, want one delta (50e6)", step)
	}
}

func TestMultiplicativeDecreaseAboveTHigh(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Init(env())
	var acked int64
	rtt := baseRTT + 100*sim.Microsecond // way above tHigh
	ackUntilChange(tl, &acked, rtt)
	// rate *= 1 - beta*(1 - tHigh/rtt) applied once
	factor := 1 - 0.8*(1-float64(baseRTT+20*sim.Microsecond)/float64(rtt))
	want := lineRate * factor
	if math.Abs(tl.Rate()-want) > want*1e-9 {
		t.Fatalf("rate = %v, want %v", tl.Rate(), want)
	}
}

func TestGradientDecrease(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Init(env())
	var acked int64
	// Rising RTTs between tLow and tHigh: positive gradient, decrease.
	r0 := tl.Rate()
	for _, us := range []int{7, 8, 9, 10, 11, 12} {
		ackRTT(tl, &acked, sim.Time(us)*sim.Microsecond)
	}
	if tl.Rate() >= r0 {
		t.Fatalf("rate did not decrease under rising RTT: %v -> %v", r0, tl.Rate())
	}
}

func TestHyperactiveIncreaseAfterNegativeGradients(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Init(env())
	tl.rate = 10e9
	var acked int64
	// Falling RTTs in the gradient band: negative gradient; after
	// HAIAfter RTTs the step must be HAIMult * delta.
	rtts := []int{12, 11, 10, 9, 8, 7}
	var before float64
	for i, us := range rtts {
		if i == len(rtts)-1 {
			before = tl.Rate()
		}
		ackRTT(tl, &acked, sim.Time(us)*sim.Microsecond+baseRTT)
	}
	step := tl.Rate() - before
	if math.Abs(step-5*50e6) > 1 {
		t.Fatalf("HAI step = %v, want 5*delta", step)
	}
}

func TestRateBounds(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Init(env())
	var acked int64
	for i := 0; i < 100; i++ {
		ackRTT(tl, &acked, baseRTT+500*sim.Microsecond)
		if tl.Rate() < tl.minRate {
			t.Fatalf("rate %v below floor", tl.Rate())
		}
	}
	for i := 0; i < 100000; i++ {
		ackRTT(tl, &acked, baseRTT)
	}
	if tl.Rate() > lineRate {
		t.Fatalf("rate %v above line rate", tl.Rate())
	}
}

func TestSFDecreasesMoreOftenForMoreAcks(t *testing.T) {
	// With SF, decreases fire every 30 ACKs: a flow receiving 60 ACKs per
	// RTT decreases twice as often as one receiving 30, for equal RTTs.
	count := func(acksPerRTT int) int {
		cfg := VAISFConfig(4 * sim.Microsecond)
		cfg.VAI = nil
		tl := New(cfg)
		tl.Init(env())
		var acked int64
		decreases := 0
		// Just above tHigh: each decrease is mild, so the rate never
		// hits the floor and every firing is observable.
		rtt := baseRTT + 22*sim.Microsecond
		for r := 0; r < 10; r++ {
			for i := 0; i < acksPerRTT; i++ {
				acked += mtu
				before := tl.Rate()
				tl.OnAck(cc.Feedback{RTT: rtt, AckedBytes: acked,
					SentBytes: acked + int64(acksPerRTT)*mtu, NewlyAcked: mtu})
				if tl.Rate() < before {
					decreases++
				}
			}
		}
		return decreases
	}
	few, many := count(30), count(60)
	if many < 2*few-2 {
		t.Fatalf("decreases: 30 acks/RTT -> %d, 60 acks/RTT -> %d; want ~2x", few, many)
	}
}

func TestVAITokensOnBigCongestion(t *testing.T) {
	tl := New(VAISFConfig(4 * sim.Microsecond))
	tl.Init(env())
	var acked int64
	// RTT far above tLow + 4us threshold mints tokens.
	ackRTT(tl, &acked, baseRTT+50*sim.Microsecond)
	if tl.vai.Bank() == 0 && tl.vai.Multiplier() == 1 {
		t.Fatal("no tokens minted under heavy congestion")
	}
}
