// Package cc defines the interface between the network simulator and
// sender-side congestion-control algorithms, together with the feedback
// types (INT telemetry, RTT, ECN echo) those algorithms consume.
//
// The package is a deliberate leaf of the import graph: internal/net
// imports it so data packets can carry telemetry, and the algorithm
// implementations (hpcc, swift, dcqcn) import it for the driver types,
// without either side depending on the other.
package cc

import (
	"math/rand"

	"faircc/internal/sim"
)

// Telemetry is one hop's In-band Network Telemetry (INT) record, stamped by
// a switch when a packet departs an egress port. HPCC consumes all four
// fields; delay- and ECN-based protocols ignore them.
type Telemetry struct {
	QueueBytes int64    // egress queue occupancy at dequeue
	TxBytes    int64    // cumulative bytes transmitted on the link
	TS         sim.Time // dequeue timestamp
	RateBps    float64  // link bandwidth
}

// Feedback is delivered to an Algorithm once per received acknowledgement.
type Feedback struct {
	Now        sim.Time    // current simulated time
	RTT        sim.Time    // end-to-end RTT measured for the acked packet
	SentAt     sim.Time    // when the acked data packet left the sender
	AckedBytes int64       // cumulative payload bytes acknowledged
	SentBytes  int64       // cumulative payload bytes sent so far (snd_nxt)
	NewlyAcked int         // payload bytes acknowledged by this ACK
	ECE        bool        // congestion-experienced echo (ECN/CNP)
	Hops       []Telemetry // INT stack collected on the forward path; nil if absent
}

// Control is the sender state an algorithm manipulates: the pacing rate and
// the window limiting bytes in flight. A sender honors both (a packet is
// released only when the pacer allows it and in-flight bytes are below the
// window).
type Control struct {
	WindowBytes float64
	RateBps     float64
}

// Env gives an algorithm access to its environment: flow constants, a
// deterministic PRNG, and a scheduler for timer-driven protocols (DCQCN).
type Env struct {
	LineRateBps float64
	BaseRTT     sim.Time // propagation + serialization RTT of the flow's path
	MTU         int      // payload bytes per packet
	Hops        int      // switch hops on the forward path
	Rand        *rand.Rand

	// Now returns the current simulated time.
	Now func() sim.Time
	// Schedule runs fn after d. Timer-driven algorithms (DCQCN) use it;
	// pure ACK-clocked ones need not.
	Schedule func(d sim.Time, fn func())
	// SetControl pushes a control change outside of an OnAck return, for
	// timer-driven rate updates.
	SetControl func(Control)
}

// Algorithm is a sender-side congestion-control protocol. Implementations
// must be deterministic given Env.Rand.
type Algorithm interface {
	// Name identifies the algorithm variant (used in experiment labels).
	Name() string
	// Init is called once when the flow starts and returns the initial
	// control. RDMA congestion control starts flows at line rate
	// (Sec. III-D of the paper).
	Init(env Env) Control
	// OnAck processes one acknowledgement and returns the updated control.
	OnAck(fb Feedback) Control
}

// BDPBytes returns the bandwidth-delay product of rate bps over rtt, in
// bytes.
func BDPBytes(bps float64, rtt sim.Time) float64 {
	return bps / 8 * rtt.Seconds()
}
