package dcqcn

import (
	"math"
	"math/rand"
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

const (
	lineRate = 100e9
	baseRTT  = 5 * sim.Microsecond
	mtu      = 1000
)

// fakeClock provides Env scheduling backed by a manual event list so the
// algorithm's timers can be driven without the full simulator.
type fakeClock struct {
	now    sim.Time
	events []fakeEvent
	ctl    cc.Control
}

type fakeEvent struct {
	at sim.Time
	fn func()
}

func (f *fakeClock) env() cc.Env {
	return cc.Env{
		LineRateBps: lineRate,
		BaseRTT:     baseRTT,
		MTU:         mtu,
		Hops:        1,
		Rand:        rand.New(rand.NewSource(1)),
		Now:         func() sim.Time { return f.now },
		Schedule: func(d sim.Time, fn func()) {
			f.events = append(f.events, fakeEvent{f.now + d, fn})
		},
		SetControl: func(c cc.Control) { f.ctl = c },
	}
}

// advance runs timers up to t in order.
func (f *fakeClock) advance(t sim.Time) {
	for {
		best := -1
		for i, ev := range f.events {
			if ev.at <= t && (best == -1 || ev.at < f.events[best].at) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		ev := f.events[best]
		f.events = append(f.events[:best], f.events[best+1:]...)
		f.now = ev.at
		ev.fn()
	}
	f.now = t
}

func TestInitLineRate(t *testing.T) {
	fc := &fakeClock{}
	d := New(DefaultConfig())
	ctl := d.Init(fc.env())
	if ctl.RateBps != lineRate {
		t.Fatalf("initial rate = %v, want line rate", ctl.RateBps)
	}
	if d.Alpha() != 1 {
		t.Fatalf("initial alpha = %v, want 1", d.Alpha())
	}
}

func TestCNPCutsRate(t *testing.T) {
	fc := &fakeClock{}
	d := New(DefaultConfig())
	d.Init(fc.env())
	ctl := d.OnAck(cc.Feedback{Now: 0, NewlyAcked: mtu, ECE: true})
	// alpha was 1: Rc = Rc*(1 - 1/2) = 50G; alpha = (1-g)+g = 1.
	if math.Abs(ctl.RateBps-50e9) > 1 {
		t.Fatalf("rate after first CNP = %v, want 50G", ctl.RateBps)
	}
	ctl = d.OnAck(cc.Feedback{Now: 1, NewlyAcked: mtu, ECE: true})
	if math.Abs(ctl.RateBps-25e9) > 1 {
		t.Fatalf("rate after second CNP = %v, want 25G", ctl.RateBps)
	}
}

func TestAlphaDecaysWithoutCNPs(t *testing.T) {
	fc := &fakeClock{}
	d := New(DefaultConfig())
	d.Init(fc.env())
	d.OnAck(cc.Feedback{Now: 0, NewlyAcked: mtu, ECE: true})
	a0 := d.Alpha()
	fc.advance(10 * 55 * sim.Microsecond)
	if d.Alpha() >= a0 {
		t.Fatalf("alpha did not decay: %v -> %v", a0, d.Alpha())
	}
	// Roughly (1-g)^9..10 decay (first timer may coincide with the CNP window).
	lo := a0 * math.Pow(1-1.0/256, 11)
	if d.Alpha() < lo {
		t.Fatalf("alpha decayed too much: %v < %v", d.Alpha(), lo)
	}
}

func TestFastRecoveryHalvesGap(t *testing.T) {
	fc := &fakeClock{}
	d := New(DefaultConfig())
	d.Init(fc.env())
	d.OnAck(cc.Feedback{Now: 0, NewlyAcked: mtu, ECE: true}) // Rt=100G, Rc=50G
	rt, rc := d.rt, d.rc
	fc.advance(55 * sim.Microsecond) // one rate-timer: fast recovery
	want := (rt + rc) / 2
	if math.Abs(d.Rate()-want) > 1 {
		t.Fatalf("rate after fast recovery = %v, want %v", d.Rate(), want)
	}
	if d.rt != rt {
		t.Fatalf("target rate moved during fast recovery: %v -> %v", rt, d.rt)
	}
}

func TestAdditiveThenHyperIncrease(t *testing.T) {
	fc := &fakeClock{}
	cfg := DefaultConfig()
	d := New(cfg)
	d.Init(fc.env())
	d.OnAck(cc.Feedback{Now: 0, NewlyAcked: mtu, ECE: true})
	// After F timer expirations fast recovery ends; the next expirations
	// do additive increase (byte counter stays at 0 here).
	fc.advance(sim.Time(cfg.F+1) * cfg.RateTimer)
	rtBefore := d.rt
	fc.advance(sim.Time(cfg.F+2) * cfg.RateTimer)
	if math.Abs(d.rt-rtBefore) > cfg.RAIBps+1 {
		t.Fatalf("additive step = %v, want <= RAI %v", d.rt-rtBefore, cfg.RAIBps)
	}
	// Now drive the byte counter past F too: hyper increase engages.
	// (Rates are clamped to line rate, so watch rt only via the floor.)
	for i := 0; i < cfg.F+2; i++ {
		d.OnAck(cc.Feedback{Now: fc.now, NewlyAcked: int(cfg.ByteCounter)})
	}
	rt2 := d.rt
	fc.advance(fc.now + cfg.RateTimer)
	if d.rt < rt2 {
		t.Fatalf("hyper increase decreased rt: %v -> %v", rt2, d.rt)
	}
}

func TestRateFloorAndCeiling(t *testing.T) {
	fc := &fakeClock{}
	cfg := DefaultConfig()
	d := New(cfg)
	d.Init(fc.env())
	for i := 0; i < 200; i++ {
		d.OnAck(cc.Feedback{Now: sim.Time(i), NewlyAcked: mtu, ECE: true})
	}
	if d.Rate() < cfg.MinRateBps {
		t.Fatalf("rate %v below floor %v", d.Rate(), cfg.MinRateBps)
	}
	fc.advance(fc.now + sim.Second)
	if d.Rate() > lineRate {
		t.Fatalf("rate %v above line rate", d.Rate())
	}
}

func TestCNPResetsIncreaseState(t *testing.T) {
	fc := &fakeClock{}
	cfg := DefaultConfig()
	d := New(cfg)
	d.Init(fc.env())
	d.OnAck(cc.Feedback{Now: 0, NewlyAcked: mtu, ECE: true})
	fc.advance(sim.Time(cfg.F+3) * cfg.RateTimer) // into additive increase
	if d.timerCnt <= cfg.F {
		t.Fatalf("timerCnt = %d, want > F", d.timerCnt)
	}
	d.OnAck(cc.Feedback{Now: fc.now, NewlyAcked: mtu, ECE: true})
	if d.timerCnt != 0 || d.byteCnt != 0 {
		t.Fatalf("counters not reset: timer=%d byte=%d", d.timerCnt, d.byteCnt)
	}
}
