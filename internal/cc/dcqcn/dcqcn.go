// Package dcqcn implements DCQCN (Zhu et al., SIGCOMM 2015), the ECN-based
// congestion control for large-scale RDMA deployments. The paper under
// reproduction uses DCQCN as its background example of probabilistic
// feedback (Sec. II): RED marking makes flows with more packets in the
// queue proportionally more likely to receive congestion notifications, so
// DCQCN does not suffer the deterministic-feedback unfairness of HPCC and
// Swift.
//
// The sender keeps a current rate Rc and a target rate Rt. A Congestion
// Notification Packet (CNP, modeled as an ECE-marked ACK rate-limited at
// the receiver) cuts the rate:
//
//	Rt = Rc; Rc = Rc * (1 - alpha/2); alpha = (1-g)*alpha + g
//
// Without CNPs, alpha decays every AlphaTimer, and rate increases are
// driven by an elapsed-time counter and a transmitted-bytes counter: fast
// recovery halves the gap to Rt, then additive increase raises Rt by
// RAIBps, then hyper increase by HAIBps once both counters pass the
// fast-recovery threshold.
package dcqcn

import (
	"math"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// Config parameterizes DCQCN. Defaults follow the DCQCN paper scaled to
// 100 Gb/s links (as in the HPCC artifact's DCQCN configuration).
type Config struct {
	G           float64  // alpha gain, 1/256
	AlphaTimer  sim.Time // alpha decay period without CNPs, 55us
	RateTimer   sim.Time // rate-increase timer period, 55us
	ByteCounter int64    // rate-increase byte counter period, 10 MB
	F           int      // fast-recovery steps, 5
	RAIBps      float64  // additive increase, 40 Mb/s
	HAIBps      float64  // hyper increase, 200 Mb/s
	MinRateBps  float64  // rate floor, 100 Mb/s
}

// DefaultConfig returns DCQCN parameters for 100 Gb/s networks.
func DefaultConfig() Config {
	return Config{
		G:           1.0 / 256,
		AlphaTimer:  55 * sim.Microsecond,
		RateTimer:   55 * sim.Microsecond,
		ByteCounter: 10 << 20,
		F:           5,
		RAIBps:      40e6,
		HAIBps:      200e6,
		MinRateBps:  100e6,
	}
}

// DCQCN is the per-flow sender state.
type DCQCN struct {
	cfg Config
	env cc.Env

	rc, rt     float64 // current and target rate, bps
	alpha      float64
	timerCnt   int   // rate-timer expirations since last CNP
	byteCnt    int   // byte-counter expirations since last CNP
	bytesAccum int64 // bytes toward the next byte-counter expiration
	lastAcked  int64
	lastCNP    sim.Time
	cnpSeen    bool // CNP since the last alpha-timer expiration

	// alphaTick and rateTick are the timer bodies bound once in Init:
	// passing a fresh method value (d.alphaTimer) to Schedule on every
	// expiration allocated a funcval per tick.
	alphaTick func()
	rateTick  func()
}

// New returns a DCQCN instance.
func New(cfg Config) *DCQCN { return &DCQCN{cfg: cfg} }

// Name implements cc.Algorithm.
func (d *DCQCN) Name() string { return "DCQCN" }

// Rate returns the current rate in bps (for tests).
func (d *DCQCN) Rate() float64 { return d.rc }

// Alpha returns the current alpha estimate (for tests).
func (d *DCQCN) Alpha() float64 { return d.alpha }

// Init implements cc.Algorithm: flows start at line rate with alpha = 1.
func (d *DCQCN) Init(env cc.Env) cc.Control {
	d.env = env
	d.rc = env.LineRateBps
	d.rt = env.LineRateBps
	d.alpha = 1
	d.lastCNP = -sim.Second
	if env.Schedule != nil {
		d.alphaTick = d.alphaTimer
		d.rateTick = d.rateTimer
		env.Schedule(d.cfg.AlphaTimer, d.alphaTick)
		env.Schedule(d.cfg.RateTimer, d.rateTick)
	}
	return d.control()
}

func (d *DCQCN) control() cc.Control {
	d.rc = math.Min(math.Max(d.rc, d.cfg.MinRateBps), d.env.LineRateBps)
	d.rt = math.Min(math.Max(d.rt, d.cfg.MinRateBps), d.env.LineRateBps)
	// DCQCN is purely rate-based: leave the window at one line-rate BDP
	// so pacing, not the window, governs.
	return cc.Control{
		WindowBytes: cc.BDPBytes(d.env.LineRateBps, d.env.BaseRTT),
		RateBps:     d.rc,
	}
}

func (d *DCQCN) alphaTimer() {
	if !d.cnpSeen {
		d.alpha = (1 - d.cfg.G) * d.alpha
	}
	d.cnpSeen = false
	d.env.Schedule(d.cfg.AlphaTimer, d.alphaTick)
}

func (d *DCQCN) rateTimer() {
	d.timerCnt++
	d.increase()
	d.env.Schedule(d.cfg.RateTimer, d.rateTick)
	d.env.SetControl(d.control())
}

// increase performs one rate-increase event: hyper increase once both
// counters pass F, additive once either does, fast recovery otherwise.
func (d *DCQCN) increase() {
	switch {
	case d.timerCnt > d.cfg.F && d.byteCnt > d.cfg.F:
		d.rt += d.cfg.HAIBps
	case d.timerCnt > d.cfg.F || d.byteCnt > d.cfg.F:
		d.rt += d.cfg.RAIBps
	}
	d.rc = (d.rt + d.rc) / 2
}

// OnAck implements cc.Algorithm. An ECE-marked ACK is a CNP.
func (d *DCQCN) OnAck(fb cc.Feedback) cc.Control {
	// Drive the byte counter from acknowledged bytes (a faithful proxy
	// for transmitted bytes in a lossless network).
	d.bytesAccum += int64(fb.NewlyAcked)
	for d.bytesAccum >= d.cfg.ByteCounter {
		d.bytesAccum -= d.cfg.ByteCounter
		d.byteCnt++
		d.increase()
	}
	if fb.ECE {
		d.cutRate(fb.Now)
	}
	return d.control()
}

func (d *DCQCN) cutRate(now sim.Time) {
	d.rt = d.rc
	d.rc *= 1 - d.alpha/2
	d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G
	d.timerCnt = 0
	d.byteCnt = 0
	d.bytesAccum = 0
	d.cnpSeen = true
	d.lastCNP = now
}
