// Package swift implements Swift (Kumar et al., SIGCOMM 2020), the
// delay-based datacenter congestion-control protocol, as configured by the
// paper (Sec. III-D): beta = 0.8, max_mdf = 0.5, additive increase
// 50 Mb/s, flow-based scaling (FBS) and topology-based scaling of the
// target delay, and — unlike TCP-like Swift deployments — flows start at
// line rate to match RDMA congestion control.
//
// The multiplicative decrease factor is the paper's Eq. (1):
//
//	mdf = max(1 - beta*(Delay - Target)/Delay, max_mdf)
//
// applied at most once per RTT by default. The paper's variants are all
// supported: a 1 Gb/s AI, probabilistic feedback, and VAI + Sampling
// Frequency, the latter adding HPCC-style reference-window semantics and
// an always-applied additive increase (Sec. V-B).
package swift

import (
	"math"

	"faircc/internal/cc"
	"faircc/internal/core"
	"faircc/internal/sim"
)

// FBSConfig parameterizes flow-based scaling of the target delay:
// target += clamp(alpha/sqrt(cwnd_pkts) + beta_fs, 0, Range) where alpha
// and beta_fs derive from the min/max scaling windows as in Kumar et al.
type FBSConfig struct {
	Range       sim.Time // fs_range: maximum extra target delay
	MinCwndPkts float64  // below this window the full Range applies (0.1)
	MaxCwndPkts float64  // above this window no scaling applies (100, or 50 on the small topology)
}

// Config parameterizes Swift. Start from DefaultConfig.
type Config struct {
	BaseTarget sim.Time // base target delay, 5us in the paper
	PerHop     sim.Time // topology-based scaling, 2us per hop
	Beta       float64  // 0.8
	MaxMdf     float64  // 0.5 (the largest decrease is a halving)
	AIBps      float64  // base additive increase, 50 Mb/s

	// FBS enables flow-based scaling when non-nil. The paper's VAI SF
	// variant runs without FBS (Sec. VI-B).
	FBS *FBSConfig
	// VAI enables Variable Additive Increase when non-nil.
	VAI *core.VAIConfig
	// SFEvery enables Sampling Frequency (decreases every SFEvery ACKs)
	// and with it the HPCC-style reference window and always-on AI of
	// Sec. V-B. Zero keeps classic once-per-RTT Swift.
	SFEvery int
	// Probabilistic ignores a would-be reference-updating decrease with
	// probability 1 - cwnd/maxCwnd (Sec. III-D).
	Probabilistic bool

	// HAIAfter enables Timely-style hyper additive increase, the
	// extension the paper suggests for Swift's slow bandwidth recovery
	// ("Swift may benefit from a hyper additive increase setting like in
	// Timely", Sec. VI-B): after HAIAfter consecutive congestion-free
	// RTTs the additive increase is multiplied by HAIMult until
	// congestion reappears. Zero disables it.
	HAIAfter int
	HAIMult  float64
}

// DefaultConfig returns the paper's Swift parameters for the given hop
// count, with FBS enabled at a max scaling window of maxScalePkts
// (100 in Kumar et al.; the paper lowers it to 50 on the single-switch
// topology because windows are smaller there).
func DefaultConfig(maxScalePkts float64) Config {
	return Config{
		BaseTarget: 5 * sim.Microsecond,
		PerHop:     2 * sim.Microsecond,
		Beta:       0.8,
		MaxMdf:     0.5,
		AIBps:      50e6,
		FBS: &FBSConfig{
			Range:       4 * sim.Microsecond,
			MinCwndPkts: 0.1,
			MaxCwndPkts: maxScalePkts,
		},
	}
}

// VAISFConfig returns the paper's "Swift VAI SF" parameters (Sec. VI-A):
// no FBS, token threshold of target delay plus the min-BDP queueing delay
// (4us at 100 Gb/s for 50 KB), one token per 30 ns of delay, bank cap
// 1000, spend cap 100, dampener constant 8, decreases every 30 ACKs.
// The threshold depends on the flow's hop count, so it is finalized in
// Init; pass the extra min-BDP delay here.
func VAISFConfig(minBDPDelay sim.Time) Config {
	c := DefaultConfig(0)
	c.FBS = nil
	c.VAI = &core.VAIConfig{
		TokenThresh:   float64(minBDPDelay), // completed with target delay in Init
		AIDiv:         float64(30 * sim.Nanosecond),
		BankCap:       1000,
		AICap:         100,
		DampenerConst: 8,
	}
	c.SFEvery = 30
	return c
}

// Swift is the per-flow sender state. Create one per flow with New.
type Swift struct {
	cfg  Config
	env  cc.Env
	name string

	maxCwnd float64 // line-rate window, packets
	minCwnd float64
	aiPkts  float64 // base additive increase, packets per RTT
	cwnd    float64 // packets (classic mode: the live window)
	ref     float64 // reference window, packets (SF mode)

	lastDecrease sim.Time
	marker       core.RTTMarker

	vai     *core.VAI
	sampler core.Sampler
	// per-RTT congestion bookkeeping for VAI and hyper-AI.
	maxDelay  sim.Time
	sawCong   bool
	cleanRTTs int // consecutive RTTs with no delay above target

	// FBS precomputed coefficients.
	fsAlpha float64
	fsBeta  float64
}

// New returns a Swift instance for the given configuration.
func New(cfg Config) *Swift {
	s := &Swift{cfg: cfg}
	switch {
	case cfg.VAI != nil && cfg.SFEvery > 0:
		s.name = "Swift VAI SF"
	case cfg.VAI != nil:
		s.name = "Swift VAI"
	case cfg.SFEvery > 0:
		s.name = "Swift SF"
	case cfg.Probabilistic:
		s.name = "Swift Probabilistic"
	case cfg.AIBps >= 1e9:
		s.name = "Swift 1Gbps"
	default:
		s.name = "Swift"
	}
	return s
}

// Name implements cc.Algorithm.
func (s *Swift) Name() string { return s.name }

// Cwnd returns the current congestion window in packets (for tests).
func (s *Swift) Cwnd() float64 { return s.cwnd }

// Init implements cc.Algorithm: flows start at line rate.
func (s *Swift) Init(env cc.Env) cc.Control {
	s.env = env
	s.maxCwnd = cc.BDPBytes(env.LineRateBps, env.BaseRTT) / float64(env.MTU)
	s.minCwnd = 0.01
	s.aiPkts = cc.BDPBytes(s.cfg.AIBps, env.BaseRTT) / float64(env.MTU)
	s.cwnd = s.maxCwnd
	s.ref = s.maxCwnd
	s.lastDecrease = -env.BaseRTT
	if s.cfg.VAI != nil {
		v := *s.cfg.VAI
		// Token_Thresh = target delay + min-BDP delay (Sec. V-A). The
		// config carries the min-BDP part; add this flow's target.
		v.TokenThresh += float64(s.targetDelay(s.maxCwnd))
		s.vai = core.NewVAI(v)
	}
	s.sampler = core.Sampler{Every: s.cfg.SFEvery}
	s.marker.Reset(0)
	return s.control()
}

// targetDelay computes the flow's target delay with topology-based scaling
// and, when enabled, flow-based scaling for the given window.
func (s *Swift) targetDelay(cwndPkts float64) sim.Time {
	t := s.cfg.BaseTarget + sim.Time(s.env.Hops)*s.cfg.PerHop
	if fs := s.cfg.FBS; fs != nil {
		if s.fsAlpha == 0 {
			den := 1/math.Sqrt(fs.MinCwndPkts) - 1/math.Sqrt(fs.MaxCwndPkts)
			s.fsAlpha = float64(fs.Range) / den
			s.fsBeta = -s.fsAlpha / math.Sqrt(fs.MaxCwndPkts)
		}
		extra := s.fsAlpha/math.Sqrt(cwndPkts) + s.fsBeta
		if extra < 0 {
			extra = 0
		}
		if extra > float64(fs.Range) {
			extra = float64(fs.Range)
		}
		t += sim.Time(extra)
	}
	return t
}

// Target exposes the current target delay for the live window (for tests
// and metrics).
func (s *Swift) Target() sim.Time { return s.targetDelay(s.cwnd) }

func (s *Swift) control() cc.Control {
	s.cwnd = clamp(s.cwnd, s.minCwnd, s.maxCwnd)
	w := s.cwnd * float64(s.env.MTU)
	rate := s.env.LineRateBps
	if s.cwnd < 1 {
		// Sub-packet windows are enforced by pacing, as in Swift.
		rate = w * 8 / s.env.BaseRTT.Seconds()
	}
	return cc.Control{WindowBytes: math.Max(w, 1), RateBps: rate}
}

// mdf computes Eq. (1) for the given delay and target.
func (s *Swift) mdf(delay, target sim.Time) float64 {
	if delay <= target || delay <= 0 {
		return 1
	}
	m := 1 - s.cfg.Beta*float64(delay-target)/float64(delay)
	return math.Max(m, s.cfg.MaxMdf)
}

// OnAck implements cc.Algorithm.
func (s *Swift) OnAck(fb cc.Feedback) cc.Control {
	if s.cfg.SFEvery > 0 {
		return s.onAckSF(fb)
	}
	return s.onAckClassic(fb)
}

// onAckClassic is stock Swift: per-ACK additive increase below target,
// at most one multiplicative decrease per RTT above it.
func (s *Swift) onAckClassic(fb cc.Feedback) cc.Control {
	delay := fb.RTT
	target := s.targetDelay(s.cwnd)
	rttPassed := s.marker.Passed(fb.AckedBytes)
	s.noteCongestion(delay, target, rttPassed)

	ai := s.aiPkts * s.hyperAI()
	if s.vai != nil {
		ai *= s.vai.Multiplier()
	}

	if delay < target {
		ackedPkts := float64(fb.NewlyAcked) / float64(s.env.MTU)
		if s.cwnd >= 1 {
			s.cwnd += ai * ackedPkts / s.cwnd
		} else {
			s.cwnd += ai * ackedPkts
		}
	} else {
		// At most one decrease per RTT by default; with probabilistic
		// feedback any congested ACK may trigger a decrease, accepted
		// with probability linear in the window (Sec. III-D).
		apply := fb.Now-s.lastDecrease >= fb.RTT
		if s.cfg.Probabilistic {
			apply = s.useFeedback()
		}
		if apply {
			s.cwnd *= s.mdf(delay, target)
			s.lastDecrease = fb.Now
		}
	}
	if rttPassed {
		if s.vai != nil {
			s.vai.Spend()
		}
		s.marker.Reset(fb.SentBytes)
	}
	return s.control()
}

// onAckSF is Swift with the Sec. V-B changes: an HPCC-style reference
// window whose decreases apply every SFEvery ACKs and whose increases
// apply once per RTT; per-ACK adjustments always derive from the
// reference; and the additive increase is applied on every update
// regardless of congestion (so VAI tokens are always spent).
func (s *Swift) onAckSF(fb cc.Feedback) cc.Control {
	delay := fb.RTT
	target := s.targetDelay(s.ref)
	rttPassed := s.marker.Passed(fb.AckedBytes)
	sfFired := s.sampler.Tick()
	s.noteCongestion(delay, target, rttPassed)

	ai := s.aiPkts * s.hyperAI()
	if s.vai != nil {
		ai *= s.vai.Multiplier()
	}
	m := s.mdf(delay, target)
	w := s.ref*m + ai // per-ACK window from the unchanged reference

	decreasing := m < 1
	update := rttPassed
	if decreasing {
		// Decreases fire every SFEvery ACKs: flows holding more
		// bandwidth see more ACKs and shed it faster, while flows whose
		// windows hold fewer than SFEvery packets react less often than
		// once per RTT — the deliberate asymmetry of Sec. III-B. During
		// a mass join (e.g. 96-1 incast) this lets the bottleneck queue
		// transiently exceed what stock Swift would allow, which the
		// per-ACK window (ref*mdf, never above half the reference in
		// deep congestion) bounds.
		update = sfFired
		if update && s.cfg.Probabilistic && !s.useFeedback() {
			update = false
		}
	}
	if update {
		if s.vai != nil {
			ai = s.aiPkts * s.vai.Spend()
			w = s.ref*m + ai
		}
		s.ref = clamp(w, s.minCwnd, s.maxCwnd)
	}
	if rttPassed {
		s.marker.Reset(fb.SentBytes)
	}
	s.cwnd = w
	return s.control()
}

// noteCongestion maintains the per-RTT congestion bookkeeping Algorithm 1
// and hyper-AI consume: the maximum observed delay and whether any packet
// exceeded the target during the RTT.
func (s *Swift) noteCongestion(delay, target sim.Time, rttPassed bool) {
	if delay > s.maxDelay {
		s.maxDelay = delay
	}
	if delay > target {
		s.sawCong = true
	}
	if rttPassed {
		if s.vai != nil {
			s.vai.OnRTTEnd(float64(s.maxDelay), !s.sawCong)
		}
		if s.sawCong {
			s.cleanRTTs = 0
		} else {
			s.cleanRTTs++
		}
		s.maxDelay = 0
		s.sawCong = false
	}
}

// hyperAI returns the hyper-AI multiplier for the current run of
// congestion-free RTTs.
func (s *Swift) hyperAI() float64 {
	if s.cfg.HAIAfter > 0 && s.cleanRTTs >= s.cfg.HAIAfter {
		return s.cfg.HAIMult
	}
	return 1
}

// useFeedback implements the probabilistic-feedback acceptance rule with
// the per-RTT window as "Current Window".
func (s *Swift) useFeedback() bool {
	ref := s.cwnd
	if s.cfg.SFEvery > 0 {
		ref = s.ref
	}
	return ref >= s.env.Rand.Float64()*s.maxCwnd
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
