package swift

import (
	"math"
	"math/rand"
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

const (
	lineRate = 100e9
	baseRTT  = 5 * sim.Microsecond
	mtu      = 1000
)

func env() cc.Env {
	return cc.Env{
		LineRateBps: lineRate,
		BaseRTT:     baseRTT,
		MTU:         mtu,
		Hops:        1,
		Rand:        rand.New(rand.NewSource(7)),
		Now:         func() sim.Time { return 0 },
	}
}

func TestNames(t *testing.T) {
	hi := DefaultConfig(50)
	hi.AIBps = 1e9
	prob := DefaultConfig(50)
	prob.Probabilistic = true
	cases := []struct {
		cfg  Config
		want string
	}{
		{DefaultConfig(50), "Swift"},
		{hi, "Swift 1Gbps"},
		{prob, "Swift Probabilistic"},
		{VAISFConfig(4 * sim.Microsecond), "Swift VAI SF"},
	}
	for _, c := range cases {
		if got := New(c.cfg).Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestInitStartsAtLineRate(t *testing.T) {
	s := New(DefaultConfig(50))
	ctl := s.Init(env())
	bdp := cc.BDPBytes(lineRate, baseRTT)
	if ctl.WindowBytes != bdp {
		t.Fatalf("initial window = %v bytes, want BDP %v", ctl.WindowBytes, bdp)
	}
	if ctl.RateBps != lineRate {
		t.Fatalf("initial rate = %v, want line rate", ctl.RateBps)
	}
}

func TestMdfEquation(t *testing.T) {
	s := New(DefaultConfig(50))
	s.Init(env())
	// Eq. (1): mdf = max(1 - 0.8*(delay-target)/delay, 0.5).
	target := 10 * sim.Microsecond
	cases := []struct {
		delay sim.Time
		want  float64
	}{
		{10 * sim.Microsecond, 1},                      // at target: no decrease
		{5 * sim.Microsecond, 1},                       // below target
		{12500 * sim.Nanosecond, 1 - 0.8*2500.0/12500}, // mild: 0.84
		{20 * sim.Microsecond, 1 - 0.8*10000.0/20000},  // 0.6
		{100 * sim.Microsecond, 0.5},                   // floor at max_mdf
		{1000 * sim.Microsecond, 0.5},                  // deep congestion still 0.5
	}
	for _, c := range cases {
		if got := s.mdf(c.delay, target); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("mdf(%v) = %v, want %v", c.delay, got, c.want)
		}
	}
}

func TestTargetDelayTopologyScaling(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.FBS = nil
	s := New(cfg)
	e := env()
	e.Hops = 5 // max fat-tree path
	s.Init(e)
	want := 5*sim.Microsecond + 5*2*sim.Microsecond
	if got := s.targetDelay(100); got != want {
		t.Fatalf("target at 5 hops = %v, want %v", got, want)
	}
}

func TestFBSRaisesTargetForSmallWindows(t *testing.T) {
	s := New(DefaultConfig(50))
	s.Init(env())
	big := s.targetDelay(50)   // at max scaling window: no extra
	mid := s.targetDelay(4)    // small window: extra target
	tiny := s.targetDelay(0.1) // at min window: full range extra
	if !(tiny > mid && mid > big) {
		t.Fatalf("FBS not monotonic: tiny=%v mid=%v big=%v", tiny, mid, big)
	}
	if tiny-big != 4*sim.Microsecond {
		t.Fatalf("full FBS range = %v, want 4us", tiny-big)
	}
	if mid-big <= 0 || mid-big >= 4*sim.Microsecond {
		t.Fatalf("mid FBS extra = %v, want in (0, 4us)", mid-big)
	}
}

func TestDecreaseOncePerRTT(t *testing.T) {
	s := New(DefaultConfig(50))
	s.Init(env())
	delay := 100 * sim.Microsecond // deep congestion: mdf = 0.5
	now := 1 * sim.Millisecond
	var acked int64
	ack := func(at sim.Time) {
		acked += mtu
		s.OnAck(cc.Feedback{Now: at, RTT: delay, AckedBytes: acked,
			SentBytes: acked + 50*mtu, NewlyAcked: mtu})
	}
	w0 := s.Cwnd()
	ack(now)
	w1 := s.Cwnd()
	if math.Abs(w1-w0*0.5) > 1e-9 {
		t.Fatalf("first decrease: %v -> %v, want halved", w0, w1)
	}
	// More congested ACKs within the same RTT: no further decrease.
	for i := 1; i < 10; i++ {
		ack(now + sim.Time(i)*sim.Microsecond)
	}
	if s.Cwnd() != w1 {
		t.Fatalf("window decreased again within an RTT: %v -> %v", w1, s.Cwnd())
	}
	// After a full (measured) RTT, decreases re-arm.
	ack(now + delay + sim.Microsecond)
	if s.Cwnd() >= w1 {
		t.Fatalf("window did not decrease after RTT passed: %v", s.Cwnd())
	}
}

func TestAdditiveIncreaseBelowTarget(t *testing.T) {
	s := New(DefaultConfig(50))
	s.Init(env())
	s.cwnd = 10
	var acked int64
	w0 := s.Cwnd()
	acked += mtu
	s.OnAck(cc.Feedback{Now: 0, RTT: 1 * sim.Microsecond, AckedBytes: acked,
		SentBytes: acked + 10*mtu, NewlyAcked: mtu})
	// cwnd += ai * acked/cwnd with cwnd >= 1.
	ai := cc.BDPBytes(50e6, baseRTT) / mtu
	want := w0 + ai*1/w0
	if math.Abs(s.Cwnd()-want) > 1e-9 {
		t.Fatalf("cwnd = %v, want %v", s.Cwnd(), want)
	}
}

func TestSubPacketWindowPaced(t *testing.T) {
	s := New(DefaultConfig(50))
	s.Init(env())
	s.cwnd = 0.5
	ctl := s.control()
	if ctl.RateBps >= lineRate {
		t.Fatalf("sub-packet window must pace below line rate, got %v", ctl.RateBps)
	}
	want := 0.5 * mtu * 8 / baseRTT.Seconds()
	if math.Abs(ctl.RateBps-want) > 1 {
		t.Fatalf("paced rate = %v, want %v", ctl.RateBps, want)
	}
}

func TestCwndBounds(t *testing.T) {
	s := New(DefaultConfig(50))
	s.Init(env())
	var acked int64
	now := sim.Time(0)
	for i := 0; i < 5000; i++ {
		acked += mtu
		now += 80 * sim.Nanosecond
		rtt := 500 * sim.Microsecond // brutal congestion
		s.OnAck(cc.Feedback{Now: now, RTT: rtt, AckedBytes: acked,
			SentBytes: acked + mtu, NewlyAcked: mtu})
		if s.Cwnd() < s.minCwnd-1e-12 || s.Cwnd() > s.maxCwnd+1e-12 {
			t.Fatalf("cwnd %v out of [%v, %v]", s.Cwnd(), s.minCwnd, s.maxCwnd)
		}
	}
	// Idle link: grow, but never past line rate.
	for i := 0; i < 200000; i++ {
		acked += mtu
		now += 80 * sim.Nanosecond
		s.OnAck(cc.Feedback{Now: now, RTT: 1 * sim.Microsecond, AckedBytes: acked,
			SentBytes: acked + mtu, NewlyAcked: mtu})
	}
	if s.Cwnd() > s.maxCwnd {
		t.Fatalf("cwnd %v exceeds line-rate window %v", s.Cwnd(), s.maxCwnd)
	}
}

func TestSFDecreasesEveryNAcks(t *testing.T) {
	cfg := VAISFConfig(4 * sim.Microsecond)
	cfg.VAI = nil // isolate SF
	cfg.SFEvery = 10
	s := New(cfg)
	s.Init(env())
	var acked int64
	now := sim.Time(0)
	refs := []float64{s.ref}
	for i := 0; i < 40; i++ {
		acked += mtu
		now += 80 * sim.Nanosecond
		s.OnAck(cc.Feedback{Now: now, RTT: 200 * sim.Microsecond, AckedBytes: acked,
			SentBytes: acked + 100*mtu, NewlyAcked: mtu})
		if s.ref != refs[len(refs)-1] {
			refs = append(refs, s.ref)
			if (i+1)%10 != 0 {
				t.Fatalf("reference changed at ACK %d, want multiples of 10", i+1)
			}
		}
	}
	if len(refs) != 5 { // initial + 4 sampler updates
		t.Fatalf("reference updated %d times in 40 ACKs with s=10, want 4", len(refs)-1)
	}
	// Each update under deep congestion roughly halves the reference
	// (mdf floor 0.5) plus the always-on AI.
	for i := 1; i < len(refs); i++ {
		if refs[i] >= refs[i-1] {
			t.Fatalf("reference did not decrease: %v", refs)
		}
	}
}

func TestSFAlwaysAppliesAI(t *testing.T) {
	// Sec. V-B: with SF, AI applies even while decreasing, so the window
	// after a decrease is ref*mdf + AI, not ref*mdf.
	cfg := VAISFConfig(4 * sim.Microsecond)
	cfg.VAI = nil
	cfg.SFEvery = 1 // every ACK updates the reference
	s := New(cfg)
	s.Init(env())
	ref0 := s.ref
	s.OnAck(cc.Feedback{Now: 0, RTT: 1 * sim.Second, AckedBytes: mtu,
		SentBytes: 2 * mtu, NewlyAcked: mtu})
	want := ref0*0.5 + s.aiPkts
	if math.Abs(s.ref-want) > 1e-9 {
		t.Fatalf("ref = %v, want ref*mdf + AI = %v", s.ref, want)
	}
}

func TestVAISFTokenThreshIncludesTarget(t *testing.T) {
	cfg := VAISFConfig(4 * sim.Microsecond)
	s := New(cfg)
	e := env()
	e.Hops = 1
	s.Init(e)
	// Threshold = 4us min-BDP delay + (5us base + 1 hop * 2us) target.
	want := float64(4*sim.Microsecond + 7*sim.Microsecond)
	// Probe via OnRTTEnd behaviour: a delay just below the threshold must
	// mint no tokens; just above must mint.
	s.vai.OnRTTEnd(want-1, false)
	if s.vai.Bank() != 0 {
		t.Fatalf("bank = %v, want 0 below threshold", s.vai.Bank())
	}
	s.vai.OnRTTEnd(want+float64(30*sim.Nanosecond), false)
	if s.vai.Bank() == 0 {
		t.Fatal("bank empty above threshold")
	}
}

func TestVAISFConvergesFasterFromUnfairStart(t *testing.T) {
	// Two flows on one 100G link, one starting at line rate and one at
	// half: the VAI SF pair should close the rate gap in fewer RTT rounds
	// than default Swift. The coupled model is ACK-clocked: per RTT round
	// each flow receives one ACK per window packet (flows with more
	// bandwidth get more ACKs — the effect Sampling Frequency exploits),
	// and both see the same deterministic delay derived from the shared
	// queue (sum of windows above BDP).
	run := func(cfg Config) int {
		a, b := New(cfg), New(cfg)
		a.Init(env())
		b.Init(env())
		b.cwnd, b.ref = a.maxCwnd/2, a.maxCwnd/2
		var ackedA, ackedB int64
		now := sim.Time(0)
		bdp := cc.BDPBytes(lineRate, baseRTT) / mtu
		feedRTT := func(s *Swift, acked *int64, delay sim.Time) {
			n := int(s.Cwnd())
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				*acked += mtu
				s.OnAck(cc.Feedback{Now: now, RTT: delay, AckedBytes: *acked,
					SentBytes: *acked + int64(s.Cwnd()*mtu), NewlyAcked: mtu})
				now += 10 * sim.Nanosecond
			}
		}
		for round := 0; round < 3000; round++ {
			over := (a.Cwnd() + b.Cwnd()) - bdp
			delay := baseRTT
			if over > 0 {
				delay += sim.Time(over * mtu * 8 / lineRate * 1e12)
			}
			feedRTT(a, &ackedA, delay)
			feedRTT(b, &ackedB, delay)
			now += baseRTT
			if math.Abs(a.Cwnd()-b.Cwnd()) < 0.05*bdp {
				return round
			}
		}
		return 3000
	}
	// Compare against Swift without FBS to isolate the VAI+SF effect:
	// in this deterministic 2-flow model FBS is an artificially strong
	// equalizer (both flows see identical delays, so the per-window
	// target asymmetry dominates); the packet-level integration tests
	// compare against full default Swift.
	baseCfg := DefaultConfig(50)
	baseCfg.FBS = nil
	base := run(baseCfg)
	vaisf := run(VAISFConfig(4 * sim.Microsecond))
	if vaisf >= base {
		t.Fatalf("VAI SF converged in %d rounds, no-FBS default in %d; want faster", vaisf, base)
	}
}

func TestProbabilisticAcceptanceScalesWithWindow(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.Probabilistic = true
	s := New(cfg)
	s.Init(env())
	s.cwnd = s.maxCwnd / 4
	accept := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.useFeedback() {
			accept++
		}
	}
	frac := float64(accept) / n
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("acceptance at quarter window = %v, want ~0.25", frac)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		cfg := DefaultConfig(50)
		cfg.Probabilistic = true
		s := New(cfg)
		s.Init(env())
		var acked int64
		now := sim.Time(0)
		var ws []float64
		for i := 0; i < 500; i++ {
			acked += mtu
			now += 80 * sim.Nanosecond
			rtt := 5*sim.Microsecond + sim.Time(i%40)*sim.Microsecond
			ctl := s.OnAck(cc.Feedback{Now: now, RTT: rtt, AckedBytes: acked,
				SentBytes: acked + 20*mtu, NewlyAcked: mtu})
			ws = append(ws, ctl.WindowBytes)
		}
		return ws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at ack %d", i)
		}
	}
}

func TestHyperAIEngagesAfterCleanRTTs(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.FBS = nil
	cfg.HAIAfter = 3
	cfg.HAIMult = 10
	s := New(cfg)
	s.Init(env())
	s.cwnd = 5
	var acked int64
	now := sim.Time(0)
	ack := func(rtt sim.Time) float64 {
		before := s.Cwnd()
		acked += mtu
		now += sim.Microsecond
		s.OnAck(cc.Feedback{Now: now, RTT: rtt, AckedBytes: acked,
			SentBytes: acked + 5*mtu, NewlyAcked: mtu})
		return s.Cwnd() - before
	}
	// Before HAIAfter clean RTTs: plain AI steps.
	base := ack(1 * sim.Microsecond)
	// Burn through enough clean RTTs (marker passes every ~6 acks).
	for i := 0; i < 40; i++ {
		ack(1 * sim.Microsecond)
	}
	boosted := ack(1 * sim.Microsecond)
	// The boosted per-ACK gain is ~HAIMult times the base gain, modulo
	// the 1/cwnd factor shifting as cwnd grows; require a clear jump.
	if boosted < 4*base {
		t.Fatalf("hyper AI step %v not well above base %v", boosted, base)
	}
	// Congestion resets the boost.
	ack(1 * sim.Second)
	for i := 0; i < 7; i++ {
		ack(1 * sim.Second) // congested RTTs zero the clean counter
	}
	if s.hyperAI() != 1 {
		t.Fatalf("hyper AI still engaged after congestion: %v", s.hyperAI())
	}
}

func TestHyperAIDisabledByDefault(t *testing.T) {
	s := New(DefaultConfig(50))
	s.Init(env())
	s.cleanRTTs = 1000
	if s.hyperAI() != 1 {
		t.Fatal("hyper AI must be off when HAIAfter == 0")
	}
}
