package swift

import (
	"math"
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// TestFBSCoefficients checks the closed-form alpha/beta derivation: the
// scaling term must be exactly Range at MinCwndPkts and exactly 0 at
// MaxCwndPkts.
func TestFBSCoefficients(t *testing.T) {
	s := New(DefaultConfig(50))
	s.Init(env())
	fs := s.cfg.FBS
	base := s.cfg.BaseTarget + sim.Time(s.env.Hops)*s.cfg.PerHop
	atMin := s.targetDelay(fs.MinCwndPkts)
	atMax := s.targetDelay(fs.MaxCwndPkts)
	if atMin-base != fs.Range {
		t.Fatalf("FBS at min cwnd adds %v, want full range %v", atMin-base, fs.Range)
	}
	if atMax != base {
		t.Fatalf("FBS at max cwnd adds %v, want 0", atMax-base)
	}
	// Analytical midpoint: extra = alpha/sqrt(w) + beta.
	w := 10.0
	alpha := float64(fs.Range) / (1/math.Sqrt(fs.MinCwndPkts) - 1/math.Sqrt(fs.MaxCwndPkts))
	beta := -alpha / math.Sqrt(fs.MaxCwndPkts)
	want := base + sim.Time(alpha/math.Sqrt(w)+beta)
	if got := s.targetDelay(w); got != want {
		t.Fatalf("FBS at cwnd 10 = %v, want %v", got, want)
	}
}

// TestDecreaseRearmUsesMeasuredRTT: the once-per-RTT decrease gate uses
// the measured RTT, so under deep congestion (long RTTs) decreases space
// out accordingly.
func TestDecreaseRearmUsesMeasuredRTT(t *testing.T) {
	s := New(DefaultConfig(50))
	s.Init(env())
	var acked int64
	congested := 50 * sim.Microsecond
	ack := func(at sim.Time) float64 {
		before := s.Cwnd()
		acked += mtu
		s.OnAck(cc.Feedback{Now: at, RTT: congested, AckedBytes: acked,
			SentBytes: acked + 50*mtu, NewlyAcked: mtu})
		return before - s.Cwnd()
	}
	if ack(sim.Millisecond) <= 0 {
		t.Fatal("first congested ACK must decrease")
	}
	// Just before one measured RTT later: no decrease.
	if ack(sim.Millisecond+congested-sim.Microsecond) > 0 {
		t.Fatal("decrease re-armed before one measured RTT")
	}
	if ack(sim.Millisecond+congested+sim.Microsecond) <= 0 {
		t.Fatal("decrease did not re-arm after one measured RTT")
	}
}

// TestSFReferenceNotBelowMin: SF-mode clamps keep the reference positive
// under endless deep congestion.
func TestSFReferenceNotBelowMin(t *testing.T) {
	cfg := VAISFConfig(4 * sim.Microsecond)
	s := New(cfg)
	s.Init(env())
	var acked int64
	for i := 0; i < 10_000; i++ {
		acked += mtu
		s.OnAck(cc.Feedback{Now: sim.Time(i) * sim.Microsecond, RTT: sim.Second,
			AckedBytes: acked, SentBytes: acked + mtu, NewlyAcked: mtu})
		if s.ref < s.minCwnd {
			t.Fatalf("reference %v below floor %v", s.ref, s.minCwnd)
		}
	}
}

// TestVAISpendsOnIncreaseRTTs: with SF+VAI, tokens drain even when the
// flow never decreases (the Sec. V-B always-AI change exists so "the
// tokens are always spent").
func TestVAISpendsOnIncreaseRTTs(t *testing.T) {
	cfg := VAISFConfig(4 * sim.Microsecond)
	s := New(cfg)
	s.Init(env())
	// Seed the bank directly through a congested RTT (above threshold).
	var acked int64
	now := sim.Time(0)
	for i := 0; i < 20; i++ {
		acked += mtu
		now += sim.Microsecond
		s.OnAck(cc.Feedback{Now: now, RTT: 60 * sim.Microsecond, AckedBytes: acked,
			SentBytes: acked + 5*mtu, NewlyAcked: mtu})
	}
	if s.vai.Bank() == 0 {
		t.Fatal("bank empty after heavy congestion; cannot test draining")
	}
	// Congestion-free RTTs: the bank must drain via increase-side spends.
	for i := 0; i < 20_000 && s.vai.Bank() > 0; i++ {
		acked += mtu
		now += sim.Microsecond
		s.OnAck(cc.Feedback{Now: now, RTT: baseRTT, AckedBytes: acked,
			SentBytes: acked + 5*mtu, NewlyAcked: mtu})
	}
	if s.vai.Bank() != 0 {
		t.Fatalf("bank = %v after long congestion-free period, want 0", s.vai.Bank())
	}
}

// TestTargetUsesReferenceInSFMode: with SF the target delay derives from
// the reference window, not the transient per-ACK window.
func TestTargetUsesReferenceInSFMode(t *testing.T) {
	cfg := VAISFConfig(4 * sim.Microsecond)
	cfg.FBS = &FBSConfig{Range: 4 * sim.Microsecond, MinCwndPkts: 0.1, MaxCwndPkts: 50}
	s := New(cfg)
	s.Init(env())
	s.ref = 25
	s.cwnd = 1 // transient
	// Target computed in onAckSF uses s.ref; verify via targetDelay
	// directly at both and confirm they differ (so using the wrong one
	// would be detectable).
	if s.targetDelay(25) == s.targetDelay(1) {
		t.Skip("FBS range too small to distinguish")
	}
	var acked int64 = mtu
	s.OnAck(cc.Feedback{Now: sim.Microsecond, RTT: s.targetDelay(25) + sim.Nanosecond,
		AckedBytes: acked, SentBytes: acked + 30*mtu, NewlyAcked: mtu})
	// Delay just above target(ref): mdf < 1 so the per-ACK window shows a
	// decrease relative to ref + AI; if the implementation had used
	// target(cwnd=1) (much higher), mdf would be 1 and cwnd = ref + AI.
	if s.Cwnd() >= s.ref+s.aiPkts {
		t.Fatalf("cwnd %v suggests target was computed from the transient window", s.Cwnd())
	}
}

// TestAcksOfMultiplePacketsScaleAI: NewlyAcked above one MTU contributes
// proportionally to the additive increase.
func TestAcksOfMultiplePacketsScaleAI(t *testing.T) {
	s := New(DefaultConfig(50))
	s.Init(env())
	s.cwnd = 10
	w0 := s.Cwnd()
	s.OnAck(cc.Feedback{Now: 0, RTT: sim.Microsecond, AckedBytes: 3 * mtu,
		SentBytes: 13 * mtu, NewlyAcked: 3 * mtu})
	ai := cc.BDPBytes(50e6, baseRTT) / mtu
	want := w0 + ai*3/w0
	if math.Abs(s.Cwnd()-want) > 1e-9 {
		t.Fatalf("cwnd = %v, want %v for a 3-packet ACK", s.Cwnd(), want)
	}
}
