package cc

import (
	"testing"

	"faircc/internal/sim"
)

func TestBDPBytes(t *testing.T) {
	cases := []struct {
		bps  float64
		rtt  sim.Time
		want float64
	}{
		{100e9, 5 * sim.Microsecond, 62_500},
		{100e9, 4 * sim.Microsecond, 50_000}, // the paper's ~50KB min BDP
		{400e9, sim.Microsecond, 50_000},
		{10e9, sim.Millisecond, 1_250_000},
	}
	for _, c := range cases {
		got := BDPBytes(c.bps, c.rtt)
		if got < c.want*(1-1e-12) || got > c.want*(1+1e-12) {
			t.Errorf("BDPBytes(%v, %v) = %v, want %v", c.bps, c.rtt, got, c.want)
		}
	}
}

func TestTelemetryZeroValueUsable(t *testing.T) {
	// Packets carry empty INT stacks before any switch stamps them; the
	// zero Telemetry must be inert.
	var tel Telemetry
	if tel.QueueBytes != 0 || tel.TxBytes != 0 || tel.TS != 0 || tel.RateBps != 0 {
		t.Fatal("zero Telemetry not zero")
	}
}
