package core

import (
	"math"
	"testing"
	"testing/quick"
)

func testCfg() VAIConfig {
	return VAIConfig{
		TokenThresh:   50_000, // 50 KB, the paper's min-BDP threshold
		AIDiv:         1_000,  // 1 token per KB of queue
		BankCap:       1000,
		AICap:         100,
		DampenerConst: 8,
	}
}

func TestVAIConfigValid(t *testing.T) {
	if !testCfg().Valid() {
		t.Fatal("test config should be valid")
	}
	bad := testCfg()
	bad.AIDiv = 0
	if bad.Valid() {
		t.Fatal("zero AIDiv should be invalid")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewVAI should panic on invalid config")
		}
	}()
	NewVAI(bad)
}

func TestVAIInitialState(t *testing.T) {
	v := NewVAI(testCfg())
	if v.Bank() != 0 || v.Dampener() != 0 {
		t.Fatalf("fresh VAI bank=%v dampener=%v, want 0,0", v.Bank(), v.Dampener())
	}
	if v.Multiplier() != 1 {
		t.Fatalf("fresh multiplier = %v, want 1", v.Multiplier())
	}
	if got := v.Spend(); got != 1 {
		t.Fatalf("Spend with empty bank = %v, want 1 (AI never below base)", got)
	}
}

func TestVAITokenMinting(t *testing.T) {
	v := NewVAI(testCfg())
	// 100 KB of queue: 50 KB above the threshold, mints 50 tokens (one
	// per KB of excess) and raises the dampener by 100/50 = 2.
	v.OnRTTEnd(100_000, false)
	if v.Bank() != 50 {
		t.Fatalf("bank = %v, want 50", v.Bank())
	}
	if v.Dampener() != 2 {
		t.Fatalf("dampener = %v, want 2", v.Dampener())
	}
}

func TestVAINoTokensBelowThreshold(t *testing.T) {
	v := NewVAI(testCfg())
	v.OnRTTEnd(49_999, false)
	if v.Bank() != 0 {
		t.Fatalf("bank = %v, want 0 (congestion below threshold)", v.Bank())
	}
	// Exactly at threshold: Algorithm 1 uses strict >, so no tokens.
	v.OnRTTEnd(50_000, false)
	if v.Bank() != 0 {
		t.Fatalf("bank = %v, want 0 at exact threshold", v.Bank())
	}
}

func TestVAIBankCap(t *testing.T) {
	v := NewVAI(testCfg())
	for i := 0; i < 50; i++ {
		v.OnRTTEnd(500_000, false) // 500 tokens per RTT
	}
	if v.Bank() != 1000 {
		t.Fatalf("bank = %v, want capped at 1000", v.Bank())
	}
}

func TestVAISpend(t *testing.T) {
	v := NewVAI(testCfg())
	v.OnRTTEnd(300_000, false) // (300-50)KB excess -> 250 tokens, dampener 6
	// Spend: tokens = min(100, 250) = 100; divisor = 6/8+1 = 1.75;
	// multiplier = 100/1.75 ≈ 57.1; bank = 150.
	got := v.Spend()
	want := 100 / (6.0/8 + 1)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("multiplier = %v, want %v", got, want)
	}
	if v.Bank() != 150 {
		t.Fatalf("bank after spend = %v, want 150", v.Bank())
	}
	if v.Multiplier() != got {
		t.Fatalf("Multiplier() = %v, want last Spend %v", v.Multiplier(), got)
	}
	// Two more spends drain the bank: 150 -> 50 -> 0.
	v.Spend()
	if v.Bank() != 50 {
		t.Fatalf("bank = %v, want 50", v.Bank())
	}
	v.Spend()
	if v.Bank() != 0 {
		t.Fatalf("bank = %v, want 0", v.Bank())
	}
	if got := v.Spend(); got != 1 {
		t.Fatalf("spend on empty bank = %v, want 1", got)
	}
}

func TestVAIMultiplierFloorsAtOne(t *testing.T) {
	v := NewVAI(testCfg())
	// Huge dampener: divisor large, multiplier would be < 1 without floor.
	for i := 0; i < 100; i++ {
		v.OnRTTEnd(1_000_000, false) // dampener += 20 each
	}
	if got := v.Spend(); got < 1 {
		t.Fatalf("multiplier = %v, must never drop below 1", got)
	}
}

func TestVAIDampenerResetRequiresEmptyBankAndNoCongestion(t *testing.T) {
	v := NewVAI(testCfg())
	v.OnRTTEnd(100_000, false) // bank 100, dampener 2

	// Congestion-free RTT but bank not empty: no reset (tokens are still
	// input into the system, a feedback loop is still possible).
	v.OnRTTEnd(0, true)
	if v.Dampener() != 2 {
		t.Fatalf("dampener = %v, want 2 (bank non-empty blocks reset)", v.Dampener())
	}

	v.Spend() // bank 0
	if v.Bank() != 0 {
		t.Fatalf("bank = %v, want 0", v.Bank())
	}
	// Mild congestion below threshold with empty bank: decrement by 1.
	v.OnRTTEnd(10_000, false)
	if v.Dampener() != 1 {
		t.Fatalf("dampener = %v, want 2-1=1", v.Dampener())
	}
	// Fully congestion-free RTT with empty bank: reset to 0.
	v.OnRTTEnd(0, true)
	if v.Dampener() != 0 {
		t.Fatalf("dampener = %v, want 0 after reset", v.Dampener())
	}
}

func TestVAIDampenerNeverNegative(t *testing.T) {
	v := NewVAI(testCfg())
	for i := 0; i < 5; i++ {
		v.OnRTTEnd(10_000, false)
	}
	if v.Dampener() != 0 {
		t.Fatalf("dampener = %v, want clamped at 0", v.Dampener())
	}
}

func TestVAIIncastDampenerGrowth(t *testing.T) {
	// Under a large incast the dampener must grow fast so the elevated AI
	// creates less congestion (Sec. IV-A).
	v := NewVAI(testCfg())
	v.OnRTTEnd(1_000_000, false) // 20x threshold, e.g. 96-1 incast queue
	if v.Dampener() != 20 {
		t.Fatalf("dampener = %v, want 20 (cong/thresh)", v.Dampener())
	}
	mult := v.Spend()
	// divisor = 20/8 + 1 = 3.5; tokens = 100 -> multiplier ≈ 28.6, far
	// below the undampened 100.
	if mult >= 100/1.0 || mult <= 1 {
		t.Fatalf("multiplier = %v, want dampened into (1, 100)", mult)
	}
}

// Property: bank stays within [0, BankCap] and dampener >= 0 and
// multiplier >= 1 under arbitrary interleavings of OnRTTEnd and Spend.
func TestVAIInvariantsProperty(t *testing.T) {
	cfg := testCfg()
	prop := func(ops []struct {
		Measured uint32
		NoCong   bool
		Spend    bool
	}) bool {
		v := NewVAI(cfg)
		for _, op := range ops {
			if op.Spend {
				if v.Spend() < 1 {
					return false
				}
			} else {
				v.OnRTTEnd(float64(op.Measured), op.NoCong)
			}
			if v.Bank() < 0 || v.Bank() > cfg.BankCap || v.Dampener() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerDisabled(t *testing.T) {
	var s Sampler // Every == 0
	for i := 0; i < 1000; i++ {
		if s.Tick() {
			t.Fatal("disabled sampler fired")
		}
	}
}

func TestSamplerCadence(t *testing.T) {
	s := Sampler{Every: 30}
	fires := 0
	for i := 1; i <= 90; i++ {
		if s.Tick() {
			fires++
			if i%30 != 0 {
				t.Fatalf("fired at tick %d, want multiples of 30", i)
			}
		}
	}
	if fires != 3 {
		t.Fatalf("fired %d times in 90 ticks, want 3", fires)
	}
}

func TestSamplerEveryOne(t *testing.T) {
	s := Sampler{Every: 1}
	for i := 0; i < 10; i++ {
		if !s.Tick() {
			t.Fatal("Every=1 sampler must fire each tick")
		}
	}
}

func TestSamplerReset(t *testing.T) {
	s := Sampler{Every: 3}
	s.Tick()
	s.Tick()
	s.Reset()
	if s.Tick() || s.Tick() {
		t.Fatal("fired too early after Reset")
	}
	if !s.Tick() {
		t.Fatal("did not fire 3 ticks after Reset")
	}
}

func TestRTTMarker(t *testing.T) {
	var m RTTMarker
	m.Reset(10_000) // 10 KB in flight when marked
	if m.Passed(10_000) {
		t.Fatal("RTT not passed at exactly the mark (strict >)")
	}
	if !m.Passed(10_001) {
		t.Fatal("RTT passed once acked exceeds mark")
	}
	m.Reset(25_000)
	if m.Passed(20_000) {
		t.Fatal("new mark should not have passed")
	}
}
