// Package core implements the paper's two mechanisms for fast convergence
// to fairness in sender-side datacenter congestion control:
//
//   - Variable Additive Increase (VAI): Algorithms 1 and 2 of the paper.
//     Congestion above a threshold (which the paper argues signals a new
//     flow joining, and therefore an unfair allocation) mints AI tokens
//     into a capped bank; tokens multiply the protocol's base additive
//     increase, and a dampener divides the boost when congestion persists
//     so the mechanism cannot enter a feedback loop with itself.
//
//   - Sampling Frequency (SF): rate *decreases* are applied every s
//     acknowledgements instead of once per RTT, so flows holding more
//     bandwidth — which receive proportionally more ACKs — decrease more
//     often, restoring the natural fairness effect that once-per-RTT
//     reaction removes. Increases remain once per RTT (reacting to every
//     ACK on increases would favor large flows and fight fairness).
//
// Both mechanisms are protocol-agnostic; internal/cc/hpcc and
// internal/cc/swift wire them into HPCC and Swift exactly as Sec. V of the
// paper describes.
package core

import "math"

// VAIConfig parameterizes Variable Additive Increase. "Congestion units"
// are protocol-specific: bytes of switch queue for HPCC, picoseconds of
// packet delay for Swift. TokenThresh and AIDiv must use the same unit the
// caller passes to OnRTTEnd.
type VAIConfig struct {
	// TokenThresh is the measured-congestion level above which tokens are
	// minted. The paper sets it to the minimum bandwidth-delay product of
	// the network (~50 KB at 100 Gb/s), because a joining flow that sends
	// at line rate for an RTT deposits at least one min-BDP of queue.
	TokenThresh float64
	// AIDiv converts measured congestion into tokens: one token is minted
	// per AIDiv congestion units (1 KB of queue for HPCC, 30 ns of delay
	// for Swift in the paper's evaluation).
	AIDiv float64
	// BankCap bounds the token bank (1000 in the paper).
	BankCap float64
	// AICap bounds the tokens spendable per rate-update period (100 in the
	// paper). Larger values trade latency for faster convergence.
	AICap float64
	// DampenerConst divides the dampener when computing the AI divisor
	// (8 in the paper).
	DampenerConst float64
}

// Valid reports whether the configuration is usable.
func (c VAIConfig) Valid() bool {
	return c.TokenThresh > 0 && c.AIDiv > 0 && c.BankCap > 0 &&
		c.AICap > 0 && c.DampenerConst > 0
}

// VAI holds the token bank and dampener state of Algorithm 1 and computes
// the additive-increase multiplier of Algorithm 2. The zero value is not
// ready; use NewVAI.
type VAI struct {
	cfg        VAIConfig
	bank       float64
	dampener   float64
	multiplier float64
}

// NewVAI returns a VAI with an empty bank and a multiplier of 1 (so the
// base AI applies until congestion mints tokens). It panics on an invalid
// configuration, which is always a programming error.
func NewVAI(cfg VAIConfig) *VAI {
	if !cfg.Valid() {
		panic("core: invalid VAIConfig")
	}
	return &VAI{cfg: cfg, multiplier: 1}
}

// Bank returns the current token-bank level.
func (v *VAI) Bank() float64 { return v.bank }

// Dampener returns the current dampener value.
func (v *VAI) Dampener() float64 { return v.dampener }

// Multiplier returns the additive-increase multiplier computed at the most
// recent Spend. It is always >= 1: VAI can only raise AI above the
// protocol's base value, never below.
func (v *VAI) Multiplier() float64 { return v.multiplier }

// OnRTTEnd implements Algorithm 1. It is called once per round-trip with
// the maximum congestion measured during that RTT (max egress queue depth
// for HPCC, max packet delay for Swift) and noCongestion, which reports
// whether the entire RTT was congestion-free (max C < 1 for HPCC; no packet
// delay above target for Swift). The dampener resets only when the bank is
// empty *and* the RTT was congestion-free — at that point the mechanism has
// no input and no output, so no feedback loop can exist.
//
// Tokens are minted from the congestion *in excess of* the threshold,
// following the paper's prose ("dividing the difference between Measured
// Congestion [and Token_Thresh] by a configurable constant"; for Swift,
// "an AI token for every 30ns of queueing delay" — queueing delay, not raw
// RTT). The dampener grows with the full measured congestion as in
// Algorithm 1 line 6.
func (v *VAI) OnRTTEnd(measured float64, noCongestion bool) {
	switch {
	case measured > v.cfg.TokenThresh:
		v.bank = math.Min((measured-v.cfg.TokenThresh)/v.cfg.AIDiv+v.bank, v.cfg.BankCap)
		v.dampener += measured / v.cfg.TokenThresh
	case v.bank == 0:
		if noCongestion {
			v.dampener = 0
		} else if measured < v.cfg.TokenThresh {
			v.dampener = math.Max(v.dampener-1, 0)
		}
	}
}

// Spend implements Algorithm 2: it withdraws up to AICap tokens from the
// bank, divides them by the dampener divisor, updates the multiplier (never
// below 1), and returns it. Call it once per rate-update period — every
// decrease period when the rate is falling, every RTT when it is rising —
// so that banked tokens are spread over time instead of creating one large
// queue spike.
func (v *VAI) Spend() float64 {
	tokens := math.Min(v.cfg.AICap, v.bank)
	v.bank = math.Max(v.bank-tokens, 0)
	divisor := v.dampener/v.cfg.DampenerConst + 1
	v.multiplier = math.Max(tokens/divisor, 1)
	return v.multiplier
}

// Sampler implements Sampling Frequency: Tick is called once per received
// acknowledgement and fires every Every ticks. A zero or negative Every
// disables the sampler (Tick never fires), which callers use for the
// default once-per-RTT behaviour.
type Sampler struct {
	Every int
	count int
}

// Tick records one acknowledgement and reports whether a decrease-side
// reference update is due.
func (s *Sampler) Tick() bool {
	if s.Every <= 0 {
		return false
	}
	s.count++
	if s.count >= s.Every {
		s.count = 0
		return true
	}
	return false
}

// Reset clears the tick count (used when a flow restarts).
func (s *Sampler) Reset() { s.count = 0 }

// RTTMarker detects round-trip boundaries the way HPCC does: an RTT has
// passed once the cumulative acknowledged bytes exceed the bytes that had
// been sent when the marker was last reset (ack.seq > lastUpdateSeq).
type RTTMarker struct {
	mark int64
}

// Passed reports whether the acknowledgement covering ackedBytes completes
// the round-trip started at the last Reset.
func (m *RTTMarker) Passed(ackedBytes int64) bool { return ackedBytes > m.mark }

// Reset starts a new round-trip measured from sentBytes (snd_nxt).
func (m *RTTMarker) Reset(sentBytes int64) { m.mark = sentBytes }
