// Package viz renders experiment data series as ASCII charts for terminal
// inspection, so figures can be eyeballed without external plotting
// tools (`fairsim -plot`).
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label string
	X, Y  []float64
}

// Options controls chart geometry and labeling.
type Options struct {
	Width  int // plot columns (default 72)
	Height int // plot rows (default 20)
	XLabel string
	YLabel string
	Title  string
}

// seriesGlyphs mark points of successive series.
var seriesGlyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Plot renders the series into w as an ASCII chart with axes, ranges and
// a legend. Series with no points are skipped; an error is returned only
// for writer failures.
func Plot(w io.Writer, opt Options, series ...Series) error {
	width, height := opt.Width, opt.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			any = true
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for i := range s.X {
			c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			r := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - r
			if cell := grid[row][c]; cell == ' ' || cell == glyph {
				grid[row][c] = glyph
			} else {
				grid[row][c] = '?' // overlapping series
			}
		}
	}

	if opt.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", opt.Title); err != nil {
			return err
		}
	}
	yHi := fmt.Sprintf("%.4g", maxY)
	yLo := fmt.Sprintf("%.4g", minY)
	margin := len(yHi)
	if len(yLo) > margin {
		margin = len(yLo)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", margin, yHi)
		case height - 1:
			label = fmt.Sprintf("%*s", margin, yLo)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", margin),
		strings.Repeat("-", width)); err != nil {
		return err
	}
	xLo := fmt.Sprintf("%.4g", minX)
	xHi := fmt.Sprintf("%.4g", maxX)
	pad := width - len(xLo) - len(xHi)
	if pad < 1 {
		pad = 1
	}
	if _, err := fmt.Fprintf(w, "%s  %s%s%s\n", strings.Repeat(" ", margin),
		xLo, strings.Repeat(" ", pad), xHi); err != nil {
		return err
	}
	if opt.XLabel != "" || opt.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%s  x: %s   y: %s\n",
			strings.Repeat(" ", margin), opt.XLabel, opt.YLabel); err != nil {
			return err
		}
	}
	for si, s := range series {
		if len(s.X) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s  %c %s\n", strings.Repeat(" ", margin),
			seriesGlyphs[si%len(seriesGlyphs)], s.Label); err != nil {
			return err
		}
	}
	return nil
}
