package viz

import (
	"strings"
	"testing"
)

func line(n int) Series {
	s := Series{Label: "line"}
	for i := 0; i < n; i++ {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, float64(i)*2)
	}
	return s
}

func TestPlotBasicGeometry(t *testing.T) {
	var b strings.Builder
	err := Plot(&b, Options{Width: 40, Height: 10, Title: "T",
		XLabel: "t", YLabel: "v"}, line(100))
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 10 rows + axis + x-range + labels + 1 legend
	if len(lines) != 15 {
		t.Fatalf("lines = %d, want 15:\n%s", len(lines), out)
	}
	if lines[0] != "T" {
		t.Fatalf("missing title: %q", lines[0])
	}
	if !strings.Contains(out, "198") { // max Y = 99*2
		t.Fatalf("missing y max:\n%s", out)
	}
	if !strings.Contains(out, "* line") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// A rising line puts a glyph in the top row (at the right) and the
	// bottom row (at the left).
	top, bottom := lines[1], lines[10]
	if !strings.Contains(top, "*") || !strings.Contains(bottom, "*") {
		t.Fatalf("line endpoints not plotted:\n%s", out)
	}
	if strings.Index(bottom, "*") > strings.Index(top, "*") {
		t.Fatalf("rising line plotted falling:\n%s", out)
	}
}

func TestPlotMultipleSeriesGlyphs(t *testing.T) {
	a := Series{Label: "a", X: []float64{0, 1}, Y: []float64{0, 0}}
	c := Series{Label: "c", X: []float64{0, 1}, Y: []float64{1, 1}}
	var b strings.Builder
	if err := Plot(&b, Options{Width: 20, Height: 5}, a, c); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("distinct glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ c") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	var b strings.Builder
	if err := Plot(&b, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Fatalf("empty plot output: %q", b.String())
	}
}

func TestPlotConstantSeries(t *testing.T) {
	// Degenerate ranges (single point, constant Y) must not divide by
	// zero or panic.
	s := Series{Label: "flat", X: []float64{5, 5}, Y: []float64{3, 3}}
	var b strings.Builder
	if err := Plot(&b, Options{Width: 10, Height: 4}, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Fatal("constant series not plotted")
	}
}

func TestPlotOverlapMarker(t *testing.T) {
	a := Series{Label: "a", X: []float64{0}, Y: []float64{0}}
	c := Series{Label: "c", X: []float64{0}, Y: []float64{0}}
	var b strings.Builder
	if err := Plot(&b, Options{Width: 10, Height: 4}, a, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "?") {
		t.Fatalf("overlap not marked:\n%s", b.String())
	}
}
