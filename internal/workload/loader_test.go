package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseCDF(t *testing.T) {
	src := `# WebSearch-style distribution
10000 15

20000 20
1000000 70
30000000 100
`
	cdf, err := ParseCDF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Max() != 30_000_000 {
		t.Fatalf("max = %v, want 30MB", cdf.Max())
	}
	if got := cdf.FracAbove(1_000_000); got < 0.2999 || got > 0.3001 {
		t.Fatalf("P(>1MB) = %v, want 0.30", got)
	}
	if got := cdf.Quantile(0.15); got != 10_000 {
		t.Fatalf("Quantile(0.15) = %v, want 10000", got)
	}
}

func TestParseCDFErrors(t *testing.T) {
	cases := map[string]string{
		"three fields":       "100 50 extra\n200 100\n",
		"bad size":           "abc 50\n200 100\n",
		"bad percent":        "100 x\n200 100\n",
		"doesn't reach 100":  "100 50\n200 90\n",
		"decreasing percent": "100 60\n200 40\n300 100\n",
		"empty":              "# only comments\n",
	}
	for name, src := range cases {
		if _, err := ParseCDF(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadCDF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dist.txt")
	if err := os.WriteFile(path, []byte("1000 50\n2000 100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cdf, err := LoadCDF(path)
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Mean() != 1500*0.5+500*0.5+250 { // sanity: mean in (1000, 2000)
		// Just check the range rather than the exact trapezoid value.
		if m := cdf.Mean(); m < 1000 || m > 2000 {
			t.Fatalf("mean = %v, want within support", m)
		}
	}
	if _, err := LoadCDF(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("expected error for missing file")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("zzz\n"), 0o644)
	if _, err := LoadCDF(bad); err == nil {
		t.Fatal("expected parse error surfaced from LoadCDF")
	}
}
