// Package workload generates the traffic the paper evaluates on: the
// staggered incast microbenchmarks (Sec. III-D: 16-1 and Sec. VI: 96-1,
// two flows starting every 20 us, 1 MB each) and Poisson-arrival
// datacenter traffic drawn from three flow-size distributions at a target
// load (Sec. VI-A: 50% for 50 ms).
//
// The published traces themselves are not redistributable, so the
// distributions here are synthetic piecewise-linear CDFs matching every
// aggregate property the paper states about them:
//
//   - Facebook Hadoop: 95% of flows < 300 KB, 2.5% > 1 MB;
//   - Microsoft WebSearch: many long flows, 30% > 1 MB;
//   - Alibaba storage: almost exclusively small, 96% < 128 KB, 100% < 2 MB.
//
// Their shapes follow the published DCTCP / HPCC-artifact distributions.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"faircc/internal/net"
	"faircc/internal/sim"
	"faircc/internal/stats"
)

// Hadoop returns the Facebook-Hadoop-like flow size CDF (bytes).
func Hadoop() *stats.CDF {
	return stats.MustCDF([]stats.CDFPoint{
		{Value: 250, Frac: 0.10},
		{Value: 500, Frac: 0.25},
		{Value: 1_000, Frac: 0.40},
		{Value: 10_000, Frac: 0.63},
		{Value: 30_000, Frac: 0.75},
		{Value: 100_000, Frac: 0.88},
		{Value: 300_000, Frac: 0.95},
		{Value: 1_000_000, Frac: 0.975},
		{Value: 5_000_000, Frac: 0.993},
		{Value: 10_000_000, Frac: 1},
	})
}

// WebSearch returns the Microsoft-WebSearch-like flow size CDF (bytes),
// the long-flow-heavy DCTCP distribution: 30% of flows exceed 1 MB.
func WebSearch() *stats.CDF {
	return stats.MustCDF([]stats.CDFPoint{
		{Value: 6_000, Frac: 0.15},
		{Value: 13_000, Frac: 0.20},
		{Value: 19_000, Frac: 0.30},
		{Value: 33_000, Frac: 0.40},
		{Value: 53_000, Frac: 0.53},
		{Value: 133_000, Frac: 0.60},
		{Value: 667_000, Frac: 0.67},
		{Value: 1_000_000, Frac: 0.70},
		{Value: 2_000_000, Frac: 0.80},
		{Value: 5_000_000, Frac: 0.90},
		{Value: 10_000_000, Frac: 0.97},
		{Value: 30_000_000, Frac: 1},
	})
}

// Storage returns the Alibaba-storage-like flow size CDF (bytes): almost
// exclusively small flows.
func Storage() *stats.CDF {
	return stats.MustCDF([]stats.CDFPoint{
		{Value: 1_000, Frac: 0.20},
		{Value: 4_000, Frac: 0.45},
		{Value: 16_000, Frac: 0.70},
		{Value: 64_000, Frac: 0.90},
		{Value: 128_000, Frac: 0.96},
		{Value: 512_000, Frac: 0.99},
		{Value: 2_000_000, Frac: 1},
	})
}

// ByName returns a distribution by its experiment label.
func ByName(name string) (*stats.CDF, error) {
	switch name {
	case "hadoop":
		return Hadoop(), nil
	case "websearch":
		return WebSearch(), nil
	case "storage":
		return Storage(), nil
	}
	return nil, fmt.Errorf("workload: unknown distribution %q", name)
}

// StaggeredIncast builds the paper's incast pattern: senders hosts
// (senders[i] -> dst), size bytes each, perGroup flows starting together
// every interval beginning at start. The 16-1 pattern is 16 senders, 1 MB,
// 2 per 20 us group.
func StaggeredIncast(senders []int, dst int, size int64, perGroup int, interval sim.Time, start sim.Time) []net.FlowSpec {
	if perGroup < 1 {
		panic("workload: perGroup must be >= 1")
	}
	specs := make([]net.FlowSpec, 0, len(senders))
	for i, src := range senders {
		specs = append(specs, net.FlowSpec{
			ID:    i + 1,
			Src:   src,
			Dst:   dst,
			Size:  size,
			Start: start + sim.Time(i/perGroup)*interval,
		})
	}
	return specs
}

// PoissonConfig drives random datacenter traffic generation.
type PoissonConfig struct {
	Hosts    []int      // host ids that source and sink traffic
	Sizes    *stats.CDF // flow size distribution, bytes
	Load     float64    // fraction of per-host line rate, e.g. 0.5
	LinkBps  float64    // host line rate
	Duration sim.Time   // arrival window
	Seed     int64
	FirstID  int // first flow id to assign (default 1)
}

// Poisson generates flows with exponential inter-arrival times so that the
// expected offered load equals Load * LinkBps * len(Hosts) in aggregate,
// sources drawn uniformly, destinations uniform among the other hosts —
// the standard datacenter-simulation traffic model used by the HPCC
// artifact.
func Poisson(cfg PoissonConfig) []net.FlowSpec {
	if cfg.Load <= 0 || cfg.LinkBps <= 0 || len(cfg.Hosts) < 2 {
		panic("workload: Poisson requires positive load, rate, and >= 2 hosts")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	meanSize := cfg.Sizes.Mean()
	// Aggregate arrival rate (flows/sec) to hit the offered load.
	lambda := cfg.Load * cfg.LinkBps * float64(len(cfg.Hosts)) / (8 * meanSize)
	meanGapSec := 1 / lambda

	id := cfg.FirstID
	if id == 0 {
		id = 1
	}
	var specs []net.FlowSpec
	t := sim.Time(0)
	for {
		gap := sim.Time(r.ExpFloat64() * meanGapSec * float64(sim.Second))
		t += gap
		if t >= cfg.Duration {
			return specs
		}
		src := cfg.Hosts[r.Intn(len(cfg.Hosts))]
		dst := src
		for dst == src {
			dst = cfg.Hosts[r.Intn(len(cfg.Hosts))]
		}
		size := int64(math.Max(1, cfg.Sizes.Sample(r)))
		specs = append(specs, net.FlowSpec{
			ID: id, Src: src, Dst: dst, Size: size, Start: t,
		})
		id++
	}
}

// Mixed interleaves two Poisson workloads (e.g. WebSearch and Storage
// sharing a cluster, Sec. VI-A), splitting the load equally between them
// and renumbering flow ids to stay unique.
func Mixed(cfg PoissonConfig, a, b *stats.CDF) []net.FlowSpec {
	half := cfg
	half.Load = cfg.Load / 2

	half.Sizes = a
	half.Seed = cfg.Seed
	specsA := Poisson(half)

	half.Sizes = b
	half.Seed = cfg.Seed + 1
	half.FirstID = len(specsA) + 1
	specsB := Poisson(half)

	return append(specsA, specsB...)
}

// OfferedLoad computes the aggregate offered load of specs as a fraction
// of hosts*linkBps over the duration (for validating generators).
func OfferedLoad(specs []net.FlowSpec, hosts int, linkBps float64, duration sim.Time) float64 {
	var bytes int64
	for _, s := range specs {
		bytes += s.Size
	}
	return float64(bytes) * 8 / (linkBps * float64(hosts) * duration.Seconds())
}
