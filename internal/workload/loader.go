package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"faircc/internal/stats"
)

// ParseCDF reads a flow-size distribution in the HPCC-artifact text
// format: one "<size_bytes> <cumulative_percent>" pair per line, percents
// in [0,100] ending at 100. Blank lines and lines starting with '#' are
// ignored. This lets users who have the original WebSearch / FbHdp /
// AliStorage trace files drop them in instead of the synthetic CDFs.
func ParseCDF(r io.Reader) (*stats.CDF, error) {
	var pts []stats.CDFPoint
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: line %d: want \"size percent\", got %q", lineNo, line)
		}
		size, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad size: %w", lineNo, err)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad percent: %w", lineNo, err)
		}
		pts = append(pts, stats.CDFPoint{Value: size, Frac: pct / 100})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	cdf, err := stats.NewCDF(pts)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return cdf, nil
}

// LoadCDF reads a distribution file (see ParseCDF for the format).
func LoadCDF(path string) (*stats.CDF, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cdf, err := ParseCDF(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cdf, nil
}
