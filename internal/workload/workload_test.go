package workload

import (
	"math"
	"math/rand"
	"testing"

	"faircc/internal/sim"
)

// The distributions must match the aggregate properties the paper states.

func TestHadoopAggregates(t *testing.T) {
	c := Hadoop()
	if got := 1 - c.FracAbove(300_000); got < 0.94 || got > 0.96 {
		t.Errorf("Hadoop P(<300KB) = %v, want ~0.95", got)
	}
	if got := c.FracAbove(1_000_000); math.Abs(got-0.025) > 0.005 {
		t.Errorf("Hadoop P(>1MB) = %v, want ~0.025", got)
	}
}

func TestWebSearchAggregates(t *testing.T) {
	c := WebSearch()
	if got := c.FracAbove(1_000_000); math.Abs(got-0.30) > 0.02 {
		t.Errorf("WebSearch P(>1MB) = %v, want ~0.30", got)
	}
	if c.Max() < 10_000_000 {
		t.Errorf("WebSearch max %v too small for a long-flow-heavy trace", c.Max())
	}
}

func TestStorageAggregates(t *testing.T) {
	c := Storage()
	if got := 1 - c.FracAbove(128_000); got < 0.95 || got > 0.97 {
		t.Errorf("Storage P(<128KB) = %v, want ~0.96", got)
	}
	if c.Max() > 2_000_000 {
		t.Errorf("Storage max = %v, want <= 2MB (100%% < 2MB)", c.Max())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"hadoop", "websearch", "storage"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName should reject unknown names")
	}
}

func TestStaggeredIncast16(t *testing.T) {
	senders := make([]int, 16)
	for i := range senders {
		senders[i] = i
	}
	specs := StaggeredIncast(senders, 16, 1_000_000, 2, 20*sim.Microsecond, 0)
	if len(specs) != 16 {
		t.Fatalf("specs = %d, want 16", len(specs))
	}
	for i, s := range specs {
		if s.Size != 1_000_000 || s.Dst != 16 || s.Src != i {
			t.Fatalf("spec %d wrong: %+v", i, s)
		}
		wantStart := sim.Time(i/2) * 20 * sim.Microsecond
		if s.Start != wantStart {
			t.Fatalf("spec %d start = %v, want %v (two flows every 20us)", i, s.Start, wantStart)
		}
	}
	// Last group starts at 7*20us = 140us.
	if specs[15].Start != 140*sim.Microsecond {
		t.Fatalf("last start = %v, want 140us", specs[15].Start)
	}
	// IDs unique.
	seen := map[int]bool{}
	for _, s := range specs {
		if seen[s.ID] {
			t.Fatalf("duplicate flow id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestPoissonLoadTargeting(t *testing.T) {
	hosts := make([]int, 16)
	for i := range hosts {
		hosts[i] = i
	}
	cfg := PoissonConfig{
		Hosts:    hosts,
		Sizes:    Hadoop(),
		Load:     0.5,
		LinkBps:  100e9,
		Duration: 20 * sim.Millisecond,
		Seed:     1,
	}
	specs := Poisson(cfg)
	if len(specs) == 0 {
		t.Fatal("no flows generated")
	}
	load := OfferedLoad(specs, len(hosts), 100e9, cfg.Duration)
	if math.Abs(load-0.5) > 0.1 {
		t.Fatalf("offered load = %v, want ~0.5", load)
	}
	// Arrivals ordered, inside window, valid endpoints.
	var last sim.Time
	for _, s := range specs {
		if s.Start < last {
			t.Fatal("arrivals not time-ordered")
		}
		last = s.Start
		if s.Start >= cfg.Duration {
			t.Fatal("arrival beyond duration")
		}
		if s.Src == s.Dst {
			t.Fatal("self-flow generated")
		}
		if s.Size < 1 {
			t.Fatal("non-positive size")
		}
	}
}

func TestPoissonDeterministicPerSeed(t *testing.T) {
	hosts := []int{0, 1, 2, 3}
	cfg := PoissonConfig{Hosts: hosts, Sizes: Storage(), Load: 0.3,
		LinkBps: 100e9, Duration: 5 * sim.Millisecond, Seed: 42}
	a := Poisson(cfg)
	b := Poisson(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs", i)
		}
	}
	cfg.Seed = 43
	c := Poisson(cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestMixedSplitsLoad(t *testing.T) {
	hosts := make([]int, 32)
	for i := range hosts {
		hosts[i] = i
	}
	cfg := PoissonConfig{Hosts: hosts, Sizes: nil, Load: 0.5,
		LinkBps: 100e9, Duration: 20 * sim.Millisecond, Seed: 7}
	specs := Mixed(cfg, WebSearch(), Storage())
	load := OfferedLoad(specs, len(hosts), 100e9, cfg.Duration)
	if math.Abs(load-0.5) > 0.12 {
		t.Fatalf("mixed offered load = %v, want ~0.5", load)
	}
	// IDs unique across the two halves.
	seen := map[int]bool{}
	for _, s := range specs {
		if seen[s.ID] {
			t.Fatalf("duplicate id %d across mixed halves", s.ID)
		}
		seen[s.ID] = true
	}
	// The storage half pulls the size distribution down: there must be
	// both >1MB flows (websearch) and plenty of <16KB flows (storage).
	big, small := 0, 0
	for _, s := range specs {
		if s.Size > 1_000_000 {
			big++
		}
		if s.Size < 16_000 {
			small++
		}
	}
	if big == 0 || small == 0 {
		t.Fatalf("mixed workload not mixed: big=%d small=%d", big, small)
	}
}

func TestSampleSizesWithinSupport(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, c := range []struct {
		name string
		max  float64
	}{{"hadoop", 10e6}, {"websearch", 30e6}, {"storage", 2e6}} {
		cdf, _ := ByName(c.name)
		for i := 0; i < 10_000; i++ {
			s := cdf.Sample(r)
			if s <= 0 || s > c.max {
				t.Fatalf("%s sample %v outside (0, %v]", c.name, s, c.max)
			}
		}
	}
}
