package topo

import "sort"

// ShardMap partitions the fat-tree for parallel execution, returning a
// node-id -> shard assignment (suitable for Network.Shard) and the shard
// count actually used (never more than k, and never more than the number
// of partition cells available).
//
// For k up to Pods+AggsPerPod the partition keeps pods intact (the
// pod-local invariant: every host-ToR and ToR-Agg link stays shard-local)
// and splits the spine layer by spine group — the AggsPerPod natural
// groups, where group g holds the spines that attach to agg index g of
// every pod. A spine group never talks to another spine group, so the
// split costs no extra cross-shard links; it removes the monolithic spine
// shard that serialized all fabric traffic in the earlier pod+spine
// partition. Pods round-robin over the first min(k, Pods) shards; spine
// groups go to dedicated trailing shards when k > Pods, and otherwise
// round-robin over the same shards as the pods (co-residence beats one
// hot spine shard: spine work spreads over all k). Every cross-shard link
// remains an Agg-Spine link, so the parallel lookahead is the full fabric
// LinkDelay.
//
// For larger k the pods are split into finer cells — one per ToR subtree
// (the ToR and its hosts), one per Agg, one per Spine — and the cells are
// packed onto shards by weighted greedy (heaviest cell first onto the
// lightest shard). Cross-shard links are still switch-to-switch fabric
// links with the same LinkDelay, so any cell packing is causally valid;
// finer cells just trade lookahead-irrelevant locality for balance.
//
// The assignment is a pure function of (cfg, k): deterministic, so a
// sharded run's partition never varies between repetitions.
func (ft *FatTree) ShardMap(k int) ([]int, int) {
	cfg := ft.Config
	nNodes := len(ft.Hosts) + len(ft.ToRs) + len(ft.Aggs) + len(ft.Spines)
	assign := make([]int, nNodes)
	if k <= 1 {
		return assign, 1
	}

	groups := cfg.AggsPerPod // spine group g = spines attached to agg index g
	if k <= cfg.Pods+groups {
		podShards := k
		if podShards > cfg.Pods {
			podShards = cfg.Pods
		}
		podShard := func(p int) int { return p % podShards }
		spineShard := func(g int) int {
			if k <= cfg.Pods {
				return g % k // co-resident with the pods
			}
			return cfg.Pods + g%(k-cfg.Pods) // dedicated spine shards
		}
		for i, h := range ft.Hosts {
			assign[h.NodeID()] = podShard(i / (cfg.ToRsPerPod * cfg.HostsPerToR))
		}
		for i, t := range ft.ToRs {
			assign[t.NodeID()] = podShard(i / cfg.ToRsPerPod)
		}
		for i, a := range ft.Aggs {
			assign[a.NodeID()] = podShard(i / cfg.AggsPerPod)
		}
		for i, s := range ft.Spines {
			// Spine i attaches to agg index i/(Spines/AggsPerPod) in every
			// pod (see Build), so its group is that agg index.
			assign[s.NodeID()] = spineShard(i / (cfg.Spines / groups))
		}
		return assign, k
	}

	// Fine cells: ToR subtrees (ToR + its hosts), individual Aggs,
	// individual Spines. Weight approximates event volume: one unit per
	// node in the cell.
	type cell struct {
		nodes  []int
		weight int
	}
	var cells []cell
	for i, t := range ft.ToRs {
		c := cell{nodes: []int{t.NodeID()}, weight: 1 + cfg.HostsPerToR}
		for h := i * cfg.HostsPerToR; h < (i+1)*cfg.HostsPerToR; h++ {
			c.nodes = append(c.nodes, ft.Hosts[h].NodeID())
		}
		cells = append(cells, c)
	}
	for _, a := range ft.Aggs {
		cells = append(cells, cell{nodes: []int{a.NodeID()}, weight: 1})
	}
	for _, s := range ft.Spines {
		cells = append(cells, cell{nodes: []int{s.NodeID()}, weight: 1})
	}
	if k > len(cells) {
		k = len(cells)
	}
	// Heaviest-first greedy onto the lightest shard; stable order (by
	// original index on weight ties, lowest shard id on load ties) keeps
	// the packing deterministic.
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cells[order[a]].weight > cells[order[b]].weight
	})
	load := make([]int, k)
	for _, ci := range order {
		best := 0
		for s := 1; s < k; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		for _, id := range cells[ci].nodes {
			assign[id] = best
		}
		load[best] += cells[ci].weight
	}
	return assign, k
}

// ShardMapPodSpine is the earlier coarse partition — one shard per pod
// plus a single monolithic shard holding the whole spine layer — retained
// as a differential-testing reference for ShardMap's spine split (both
// partitions must yield internally deterministic runs; see the
// determinism contract in sim.Parallel). k is clamped to Pods+1, the most
// shards this partition can use.
func (ft *FatTree) ShardMapPodSpine(k int) ([]int, int) {
	cfg := ft.Config
	nNodes := len(ft.Hosts) + len(ft.ToRs) + len(ft.Aggs) + len(ft.Spines)
	assign := make([]int, nNodes)
	if k <= 1 {
		return assign, 1
	}
	if k > cfg.Pods+1 {
		k = cfg.Pods + 1
	}
	podShard := func(p int) int { return p % (k - 1) }
	for i, h := range ft.Hosts {
		assign[h.NodeID()] = podShard(i / (cfg.ToRsPerPod * cfg.HostsPerToR))
	}
	for i, t := range ft.ToRs {
		assign[t.NodeID()] = podShard(i / cfg.ToRsPerPod)
	}
	for i, a := range ft.Aggs {
		assign[a.NodeID()] = podShard(i / cfg.AggsPerPod)
	}
	for _, s := range ft.Spines {
		assign[s.NodeID()] = k - 1
	}
	return assign, k
}

// ShardMap partitions the incast star: the switch and the receiver-side
// congestion live on shard 0, and the remaining hosts spread round-robin
// over the other shards (every host-switch link has the same delay, so
// any split is causally valid). Shard counts above the host count are
// clamped.
func (s *Star) ShardMap(k int) ([]int, int) {
	nNodes := len(s.Hosts) + 1
	assign := make([]int, nNodes)
	if k <= 1 {
		return assign, 1
	}
	if k > len(s.Hosts) {
		k = len(s.Hosts)
	}
	if k <= 1 {
		return assign, 1
	}
	for i, h := range s.Hosts {
		assign[h.NodeID()] = 1 + i%(k-1)
	}
	assign[s.Switch.NodeID()] = 0
	return assign, k
}
