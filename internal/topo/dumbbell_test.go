package topo

import (
	"testing"

	"faircc/internal/net"
	"faircc/internal/sim"
)

func TestDumbbellShape(t *testing.T) {
	eng := sim.NewEngine()
	nw := net.New(eng, 1)
	cfg := DefaultDumbbell()
	d := NewDumbbell(nw, cfg)
	if got := len(d.Senders); got != cfg.NumSenders() {
		t.Fatalf("senders = %d, want %d", got, cfg.NumSenders())
	}
	if len(d.Receivers) != len(d.Senders) || len(d.Class) != len(d.Senders) {
		t.Fatalf("receivers=%d classes=%d, want %d of each",
			len(d.Receivers), len(d.Class), len(d.Senders))
	}
	// Class runs group-major: the first group's Count senders are class 0.
	want := 0
	idx := 0
	for gi, g := range cfg.Groups {
		for i := 0; i < g.Count; i++ {
			if d.Class[idx] != gi {
				t.Fatalf("Class[%d] = %d, want %d", idx, d.Class[idx], gi)
			}
			idx++
		}
		want += g.Count
	}
	// Bottleneck port belongs to the left switch and peers with the right.
	if d.BottleneckPort.Owner().NodeID() != d.Left.NodeID() {
		t.Fatal("BottleneckPort not owned by the left switch")
	}
	if d.BottleneckPort.Peer().Owner().NodeID() != d.Right.NodeID() {
		t.Fatal("BottleneckPort does not peer with the right switch")
	}
}

func TestDumbbellHopsAndClassBaseRTT(t *testing.T) {
	eng := sim.NewEngine()
	nw := net.New(eng, 1)
	cfg := DefaultDumbbell()
	d := NewDumbbell(nw, cfg)

	// Every sender->receiver path crosses exactly the two switches.
	for i, s := range d.Senders {
		hops, _, _, err := nw.ProbePath(net.FlowSpec{
			ID: i + 1, Src: s.NodeID(), Dst: d.Receivers[i].NodeID(), Size: 1})
		if err != nil {
			t.Fatalf("sender %d: %v", i, err)
		}
		if hops != 2 {
			t.Fatalf("sender %d: hops = %d, want 2", i, hops)
		}
	}

	rtts := d.ClassBaseRTT(nw)
	if len(rtts) != 2 {
		t.Fatalf("classes = %d, want 2", len(rtts))
	}
	fast, slow := rtts[0], rtts[1]
	if fast >= slow {
		t.Fatalf("fast RTT %v not below slow RTT %v", fast, slow)
	}
	// One-way propagation: fast 3 us, slow 27 us; round trip doubles it and
	// serialization adds a little. The heterogeneity the class split is
	// meant to model must actually be there: slow/fast well above 5x.
	if fast < 6*sim.Microsecond || fast > 7*sim.Microsecond {
		t.Fatalf("fast class base RTT = %v, want 6-7 us", fast)
	}
	if slow < 54*sim.Microsecond || slow > 55*sim.Microsecond {
		t.Fatalf("slow class base RTT = %v, want 54-55 us", slow)
	}
}

func TestWANEdgeDumbbellRTT(t *testing.T) {
	eng := sim.NewEngine()
	nw := net.New(eng, 1)
	d := NewDumbbell(nw, WANEdgeDumbbell())
	rtts := d.ClassBaseRTT(nw)
	// The slow class crosses a 10 ms access link: base RTT just above
	// 20 ms, i.e. 4*baseRTT ~80 ms — past RTOMax (10 ms), the regime the
	// initial-RTO clamp exists for.
	if rtts[1] < 20*sim.Millisecond || rtts[1] > 21*sim.Millisecond {
		t.Fatalf("WAN slow class base RTT = %v, want ~20 ms", rtts[1])
	}
	if rtts[0] > 100*sim.Microsecond {
		t.Fatalf("WAN fast class base RTT = %v, want well under 100 us", rtts[0])
	}
}

func TestDumbbellTrafficDelivers(t *testing.T) {
	eng := sim.NewEngine()
	nw := net.New(eng, 3)
	d := NewDumbbell(nw, DefaultDumbbell())
	for i, s := range d.Senders {
		nw.AddFlow(net.FlowSpec{ID: i + 1, Src: s.NodeID(),
			Dst: d.Receivers[i].NodeID(), Size: 100_000,
			Start: sim.Time(i) * sim.Microsecond}, lineRateAlgo())
	}
	eng.Run()
	if !nw.AllFinished() {
		t.Fatal("not all flows finished")
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestDumbbellShardMap(t *testing.T) {
	eng := sim.NewEngine()
	nw := net.New(eng, 3)
	d := NewDumbbell(nw, DefaultDumbbell())
	assign, k := d.ShardMap(2)
	if k != 2 {
		t.Fatalf("shards = %d, want 2", k)
	}
	for i, s := range d.Senders {
		if assign[s.NodeID()] != 0 {
			t.Fatalf("sender %d on shard %d, want 0", i, assign[s.NodeID()])
		}
	}
	for i, r := range d.Receivers {
		if assign[r.NodeID()] != 1 {
			t.Fatalf("receiver %d on shard %d, want 1", i, assign[r.NodeID()])
		}
	}
	// Sharded execution across the bottleneck link still delivers.
	nw.Shard(assign, k)
	for i, s := range d.Senders {
		nw.AddFlow(net.FlowSpec{ID: i + 1, Src: s.NodeID(),
			Dst: d.Receivers[i].NodeID(), Size: 50_000}, lineRateAlgo())
	}
	if err := nw.NewParallel().Run(); err != nil {
		t.Fatal(err)
	}
	if !nw.AllFinished() {
		t.Fatal("sharded dumbbell run did not finish all flows")
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestDumbbellValidate(t *testing.T) {
	if err := (DumbbellConfig{}).Validate(); err == nil {
		t.Fatal("empty config must not validate")
	}
	bad := DefaultDumbbell()
	bad.Groups[0].Count = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-count group must not validate")
	}
	bad = DefaultDumbbell()
	bad.Groups[1].AccessDelay = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero access delay must not validate")
	}
	bad = DefaultDumbbell()
	bad.BottleneckBps = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bottleneck rate must not validate")
	}
	for _, cfg := range []DumbbellConfig{DefaultDumbbell(), WANEdgeDumbbell()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset invalid: %v", err)
		}
	}
}
