package topo

import (
	"testing"

	"faircc/internal/cc"
	"faircc/internal/net"
	"faircc/internal/sim"
)

type fixedAlgo struct{ ctl cc.Control }

func (a *fixedAlgo) Name() string                 { return "fixed" }
func (a *fixedAlgo) Init(cc.Env) cc.Control       { return a.ctl }
func (a *fixedAlgo) OnAck(cc.Feedback) cc.Control { return a.ctl }

func lineRateAlgo() cc.Algorithm {
	return &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: 100e9}}
}

func TestStarShape(t *testing.T) {
	eng := sim.NewEngine()
	nw := net.New(eng, 1)
	st := NewStar(nw, 17, 100e9, sim.Microsecond)
	if len(st.Hosts) != 17 || len(st.HostPorts) != 17 {
		t.Fatalf("hosts=%d ports=%d, want 17", len(st.Hosts), len(st.HostPorts))
	}
	f := nw.AddFlow(net.FlowSpec{ID: 1, Src: st.Hosts[0].NodeID(),
		Dst: st.Hosts[16].NodeID(), Size: 1000}, lineRateAlgo())
	if f.Hops() != 1 {
		t.Fatalf("star path hops = %d, want 1", f.Hops())
	}
}

func TestDefaultFatTreeMatchesPaper(t *testing.T) {
	cfg := DefaultFatTree()
	if cfg.NumHosts() != 320 {
		t.Fatalf("hosts = %d, want 320", cfg.NumHosts())
	}
	eng := sim.NewEngine()
	nw := net.New(eng, 1)
	ft := NewFatTree(nw, cfg)
	if len(ft.ToRs) != 20 {
		t.Fatalf("ToRs = %d, want 20", len(ft.ToRs))
	}
	if len(ft.Aggs) != 20 {
		t.Fatalf("Aggs = %d, want 20", len(ft.Aggs))
	}
	if len(ft.Spines) != 16 {
		t.Fatalf("Spines = %d, want 16", len(ft.Spines))
	}
	if len(ft.Hosts) != 320 {
		t.Fatalf("hosts = %d, want 320", len(ft.Hosts))
	}
	// Each agg has ToRsPerPod downlinks + Spines/AggsPerPod uplinks = 8.
	for i, agg := range ft.Aggs {
		if got := len(agg.Ports()); got != 8 {
			t.Fatalf("agg %d has %d ports, want 8", i, got)
		}
	}
	// Each spine connects once per pod.
	for i, sp := range ft.Spines {
		if got := len(sp.Ports()); got != 5 {
			t.Fatalf("spine %d has %d ports, want 5", i, got)
		}
	}
	// Each ToR: 16 host ports + 4 agg uplinks.
	for i, tor := range ft.ToRs {
		if got := len(tor.Ports()); got != 20 {
			t.Fatalf("ToR %d has %d ports, want 20", i, got)
		}
	}
}

func TestFatTreeHopCounts(t *testing.T) {
	eng := sim.NewEngine()
	nw := net.New(eng, 1)
	ft := NewFatTree(nw, DefaultFatTree())
	cases := []struct {
		name     string
		src, dst int
		hops     int
	}{
		{"same ToR", 0, 1, 1},
		{"same pod, different ToR", 0, 16, 3},
		{"cross pod", 0, 64, 5}, // pod 0 -> pod 1
		{"far cross pod", 5, 319, 5},
	}
	for _, c := range cases {
		f := nw.AddFlow(net.FlowSpec{ID: c.src*1000 + c.dst,
			Src: ft.Hosts[c.src].NodeID(), Dst: ft.Hosts[c.dst].NodeID(),
			Size: 1000}, lineRateAlgo())
		if f.Hops() != c.hops {
			t.Errorf("%s: hops = %d, want %d (max 5 per the paper)", c.name, f.Hops(), c.hops)
		}
	}
}

func TestFatTreeAllPairsRoutable(t *testing.T) {
	// A scaled-down tree, every ordered pair: pathInfo panics on any
	// broken route, so AddFlow across all pairs is the connectivity check.
	eng := sim.NewEngine()
	nw := net.New(eng, 1)
	ft := NewFatTree(nw, DefaultFatTree().Scaled(2, 2, 2))
	n := len(ft.Hosts)
	if n != 8 {
		t.Fatalf("scaled hosts = %d, want 8", n)
	}
	id := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			id++
			f := nw.AddFlow(net.FlowSpec{ID: id, Src: ft.Hosts[i].NodeID(),
				Dst: ft.Hosts[j].NodeID(), Size: 1000}, lineRateAlgo())
			if f.Hops() > 5 || f.Hops() < 1 {
				t.Fatalf("pair (%d,%d): hops = %d", i, j, f.Hops())
			}
		}
	}
}

func TestFatTreeTrafficDelivers(t *testing.T) {
	// End-to-end: a mesh of flows across a scaled tree all complete and
	// conserve bytes.
	eng := sim.NewEngine()
	nw := net.New(eng, 7)
	ft := NewFatTree(nw, DefaultFatTree().Scaled(2, 2, 2))
	n := len(ft.Hosts)
	for i := 0; i < n; i++ {
		dst := (i + 3) % n
		nw.AddFlow(net.FlowSpec{ID: i + 1, Src: ft.Hosts[i].NodeID(),
			Dst: ft.Hosts[dst].NodeID(), Size: 200_000,
			Start: sim.Time(i) * sim.Microsecond}, lineRateAlgo())
	}
	eng.Run()
	if !nw.AllFinished() {
		t.Fatal("not all flows finished")
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestFatTreeECMPUsesMultiplePaths(t *testing.T) {
	// Many cross-pod flows from one host: spine downlink tx counters show
	// that more than one spine carried traffic.
	eng := sim.NewEngine()
	nw := net.New(eng, 3)
	ft := NewFatTree(nw, DefaultFatTree().Scaled(2, 2, 2))
	for i := 0; i < 16; i++ {
		src := i % 4 // hosts in pod 0
		nw.AddFlow(net.FlowSpec{ID: 100 + i, Src: ft.Hosts[src].NodeID(),
			Dst: ft.Hosts[4+(i%4)].NodeID(), Size: 50_000}, lineRateAlgo())
	}
	eng.Run()
	used := 0
	for _, sp := range ft.Spines {
		var tx int64
		for _, p := range sp.Ports() {
			tx += p.TxBytes()
		}
		if tx > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("only %d spines carried traffic; ECMP not spreading", used)
	}
}

func TestFatTreeValidate(t *testing.T) {
	bad := DefaultFatTree()
	bad.Spines = 15 // not a multiple of AggsPerPod
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error for spines not multiple of aggs")
	}
	bad = DefaultFatTree()
	bad.Pods = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error for zero pods")
	}
	// Regression: Spines: 0 used to slip through — it was absent from the
	// positive-count check and 0 % AggsPerPod == 0 satisfied the
	// multiple-of check, so NewFatTree built a spineless tree whose
	// cross-pod routes were empty and AddFlow failed with "no route".
	bad = DefaultFatTree()
	bad.Spines = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error for zero spines")
	}
	bad = DefaultFatTree()
	bad.ToRUplinkBps = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error for negative ToR uplink rate")
	}
	if err := DefaultFatTree().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestFatTreeOversubscribed(t *testing.T) {
	// Ratio math: Oversubscribed(r) must make OversubscriptionRatio
	// report r, and the default tree is 1:1.
	if got := DefaultFatTree().OversubscriptionRatio(); got != 1 {
		t.Fatalf("default ratio = %v, want 1", got)
	}
	cfg := DefaultFatTree().Oversubscribed(4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.OversubscriptionRatio(); got != 4 {
		t.Fatalf("ratio = %v, want 4", got)
	}
	// 16 hosts x 100G over 4 uplinks at ratio 4 -> 100G per uplink.
	if cfg.ToRUplinkBps != 100e9 {
		t.Fatalf("uplink = %v, want 100e9", cfg.ToRUplinkBps)
	}

	// The uplink rate must reach the wire: a cross-ToR path through a
	// 2:1-oversubscribed scaled tree bottlenecks at the ToR uplink, not
	// the host link.
	eng := sim.NewEngine()
	nw := net.New(eng, 1)
	scfg := DefaultFatTree().Scaled(2, 2, 2).Oversubscribed(2)
	ft := NewFatTree(nw, scfg)
	_, _, minBw, err := nw.ProbePath(net.FlowSpec{ID: 1,
		Src: ft.Hosts[0].NodeID(), Dst: ft.Hosts[2].NodeID(), Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantUplink := float64(scfg.HostsPerToR) * scfg.HostBps / (float64(scfg.AggsPerPod) * 2)
	if minBw != wantUplink {
		t.Fatalf("cross-ToR bottleneck = %v, want ToR uplink %v", minBw, wantUplink)
	}
	// Same-ToR paths never cross an uplink and stay at host rate.
	_, _, minBw, err = nw.ProbePath(net.FlowSpec{ID: 2,
		Src: ft.Hosts[0].NodeID(), Dst: ft.Hosts[1].NodeID(), Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if minBw != scfg.HostBps {
		t.Fatalf("same-ToR bottleneck = %v, want host rate %v", minBw, scfg.HostBps)
	}
}

func TestK16FatTree(t *testing.T) {
	cfg := K16FatTree()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumHosts() != 4096 {
		t.Fatalf("hosts = %d, want 4096", cfg.NumHosts())
	}
	if got := cfg.OversubscriptionRatio(); got != 1 {
		t.Fatalf("base ratio = %v, want 1 (non-blocking)", got)
	}
	over := cfg.Oversubscribed(4)
	if got := over.OversubscriptionRatio(); got != 4 {
		t.Fatalf("oversubscribed ratio = %v, want 4", got)
	}
	// 32 hosts x 100G over 8 uplinks at 4:1 -> 100G uplinks.
	if over.ToRUplinkBps != 100e9 {
		t.Fatalf("uplink = %v, want 100e9", over.ToRUplinkBps)
	}
}

func TestFatTreeBaseRTT(t *testing.T) {
	eng := sim.NewEngine()
	nw := net.New(eng, 1)
	ft := NewFatTree(nw, DefaultFatTree())
	// Cross-pod flow: 6 links, 12 us of propagation round trip, plus
	// serialization on each hop. Base RTT must be a bit above 12 us.
	f := nw.AddFlow(net.FlowSpec{ID: 1, Src: ft.Hosts[0].NodeID(),
		Dst: ft.Hosts[319].NodeID(), Size: 1000}, lineRateAlgo())
	if f.BaseRTT() < 12*sim.Microsecond || f.BaseRTT() > 13*sim.Microsecond {
		t.Fatalf("cross-pod base RTT = %v, want 12-13us", f.BaseRTT())
	}
}

func TestScaledConfigurations(t *testing.T) {
	cases := []struct {
		pods, tors, hosts int
		wantHosts         int
	}{
		{2, 2, 2, 8},
		{2, 2, 8, 32},
		{3, 2, 4, 24},
		{5, 4, 16, 320}, // scaling back up to the paper's size
	}
	for _, c := range cases {
		cfg := DefaultFatTree().Scaled(c.pods, c.tors, c.hosts)
		if err := cfg.Validate(); err != nil {
			t.Errorf("Scaled(%d,%d,%d) invalid: %v", c.pods, c.tors, c.hosts, err)
			continue
		}
		if cfg.NumHosts() != c.wantHosts {
			t.Errorf("Scaled(%d,%d,%d) hosts = %d, want %d",
				c.pods, c.tors, c.hosts, cfg.NumHosts(), c.wantHosts)
		}
		// Build it and check a cross-pod flow routes.
		eng := sim.NewEngine()
		nw := net.New(eng, 1)
		ft := NewFatTree(nw, cfg)
		f := nw.AddFlow(net.FlowSpec{ID: 1, Src: ft.Hosts[0].NodeID(),
			Dst: ft.Hosts[len(ft.Hosts)-1].NodeID(), Size: 1000}, lineRateAlgo())
		if f.Hops() != 5 {
			t.Errorf("Scaled(%d,%d,%d) cross-pod hops = %d, want 5",
				c.pods, c.tors, c.hosts, f.Hops())
		}
	}
}

func TestFatTreeNonOversubscribed(t *testing.T) {
	// The paper's fat-tree is 1:1 at every layer: per-ToR host capacity
	// (16 x 100G) equals its uplink capacity (4 x 400G), and per-Agg
	// downlink capacity equals its spine uplinks.
	cfg := DefaultFatTree()
	hostCap := float64(cfg.HostsPerToR) * cfg.HostBps
	torUp := float64(cfg.AggsPerPod) * cfg.FabricBps
	if hostCap != torUp {
		t.Fatalf("ToR oversubscribed: hosts %v vs uplinks %v", hostCap, torUp)
	}
	aggDown := float64(cfg.ToRsPerPod) * cfg.FabricBps
	aggUp := float64(cfg.Spines/cfg.AggsPerPod) * cfg.FabricBps
	if aggDown != aggUp {
		t.Fatalf("Agg oversubscribed: down %v vs up %v", aggDown, aggUp)
	}
}

func TestFatTreeECMPBalanceAcrossAggs(t *testing.T) {
	// Many same-pod cross-ToR flows from varied sources: all four Aggs of
	// the pod should carry traffic.
	eng := sim.NewEngine()
	nw := net.New(eng, 5)
	ft := NewFatTree(nw, DefaultFatTree())
	id := 0
	for src := 0; src < 16; src++ { // ToR 0 hosts
		for k := 0; k < 4; k++ {
			id++
			dst := 16 + (id % 16) // ToR 1 hosts, same pod
			nw.AddFlow(net.FlowSpec{ID: id, Src: ft.Hosts[src].NodeID(),
				Dst: ft.Hosts[dst].NodeID(), Size: 20_000}, lineRateAlgo())
		}
	}
	eng.Run()
	used := 0
	for a := 0; a < 4; a++ { // pod 0 aggs
		if ft.Aggs[a].Stats().TxBytes > 0 {
			used++
		}
	}
	if used < 3 {
		t.Fatalf("only %d of 4 pod aggs carried traffic; ECMP skewed", used)
	}
}

func TestStarHostPortIdentity(t *testing.T) {
	eng := sim.NewEngine()
	nw := net.New(eng, 1)
	st := NewStar(nw, 4, 100e9, sim.Microsecond)
	// HostPorts[i] must be the switch-side port whose peer is host i.
	for i, p := range st.HostPorts {
		if p.Peer().Owner().NodeID() != st.Hosts[i].NodeID() {
			t.Fatalf("HostPorts[%d] peers with node %d, want host %d",
				i, p.Peer().Owner().NodeID(), st.Hosts[i].NodeID())
		}
		if p.Owner().NodeID() != st.Switch.NodeID() {
			t.Fatalf("HostPorts[%d] not owned by the switch", i)
		}
	}
}
