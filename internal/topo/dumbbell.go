package topo

import (
	"fmt"

	"faircc/internal/net"
	"faircc/internal/sim"
)

// SenderGroup describes one RTT class of dumbbell senders: Count hosts
// whose access links share a bandwidth and propagation delay. Groups with
// different AccessDelay values are what make the topology heterogeneous in
// base RTT — the scenario axis the paper never evaluates (it stops at
// uniform 1 us hops).
type SenderGroup struct {
	Name        string
	Count       int
	AccessBps   float64
	AccessDelay sim.Time
}

// DumbbellConfig sizes a dumbbell: sender groups on a left switch, one
// receiver per sender on a right switch, and a single bottleneck link
// between the switches that every flow crosses. Per-link delay is fully
// configurable, so the same builder covers datacenter-scale heterogeneity
// (1 us vs 25 us access links) and a WAN edge (a multi-millisecond
// bottleneck), the setups of the FaiRTT / BBR RTT-fairness studies.
type DumbbellConfig struct {
	Groups []SenderGroup

	// BottleneckBps / BottleneckDelay size the inter-switch link — the
	// shared congestion point.
	BottleneckBps   float64
	BottleneckDelay sim.Time

	// ReceiverBps / ReceiverDelay size every receiver's access link.
	ReceiverBps   float64
	ReceiverDelay sim.Time
}

// DefaultDumbbell returns the datacenter-heterogeneity instance: a fast
// group and a slow group of 4 senders each (100 Gb/s access at 1 us and
// 25 us), a 100 Gb/s / 1 us bottleneck, 100 Gb/s / 1 us receiver links.
// The slow class's base RTT is ~13x the fast class's, while 8 senders
// share one bottleneck link.
func DefaultDumbbell() DumbbellConfig {
	return DumbbellConfig{
		Groups: []SenderGroup{
			{Name: "fast", Count: 4, AccessBps: 100e9, AccessDelay: 1 * sim.Microsecond},
			{Name: "slow", Count: 4, AccessBps: 100e9, AccessDelay: 25 * sim.Microsecond},
		},
		BottleneckBps:   100e9,
		BottleneckDelay: 1 * sim.Microsecond,
		ReceiverBps:     100e9,
		ReceiverDelay:   1 * sim.Microsecond,
	}
}

// WANEdgeDumbbell returns the WAN-edge instance: the slow group reaches
// the bottleneck over a 10 ms access link (a metro/WAN hop), the fast
// group over 5 us, with a 10 Gb/s bottleneck. The slow class's unloaded
// RTT is ~20 ms — the regime where an unclamped 4*baseRTT initial RTO
// would exceed RTOMax.
func WANEdgeDumbbell() DumbbellConfig {
	return DumbbellConfig{
		Groups: []SenderGroup{
			{Name: "fast", Count: 4, AccessBps: 100e9, AccessDelay: 5 * sim.Microsecond},
			{Name: "slow", Count: 4, AccessBps: 100e9, AccessDelay: 10 * sim.Millisecond},
		},
		BottleneckBps:   10e9,
		BottleneckDelay: 5 * sim.Microsecond,
		ReceiverBps:     100e9,
		ReceiverDelay:   1 * sim.Microsecond,
	}
}

// Validate reports configuration errors.
func (c DumbbellConfig) Validate() error {
	if len(c.Groups) == 0 {
		return fmt.Errorf("topo: dumbbell needs at least one sender group")
	}
	for i, g := range c.Groups {
		if g.Count < 1 {
			return fmt.Errorf("topo: dumbbell group %d (%s) count must be positive", i, g.Name)
		}
		if g.AccessBps <= 0 {
			return fmt.Errorf("topo: dumbbell group %d (%s) access rate must be positive", i, g.Name)
		}
		if g.AccessDelay <= 0 {
			return fmt.Errorf("topo: dumbbell group %d (%s) access delay must be positive", i, g.Name)
		}
	}
	if c.BottleneckBps <= 0 || c.ReceiverBps <= 0 {
		return fmt.Errorf("topo: dumbbell link rates must be positive")
	}
	if c.BottleneckDelay <= 0 || c.ReceiverDelay <= 0 {
		return fmt.Errorf("topo: dumbbell link delays must be positive")
	}
	return nil
}

// NumSenders returns the total sender count across groups.
func (c DumbbellConfig) NumSenders() int {
	n := 0
	for _, g := range c.Groups {
		n += g.Count
	}
	return n
}

// Dumbbell is a built dumbbell. Senders[i] pairs with Receivers[i];
// Class[i] is the index into Config.Groups of sender i's RTT class.
type Dumbbell struct {
	Config    DumbbellConfig
	Senders   []*net.Host
	Receivers []*net.Host
	Class     []int
	Left      *net.Switch // sender-side switch
	Right     *net.Switch // receiver-side switch
	// BottleneckPort is the left switch's egress toward the right switch
	// — the queue where cross-class congestion appears.
	BottleneckPort *net.Port
}

// NewDumbbell builds the topology over nw and installs routes: the left
// switch delivers to its senders directly and forwards everything else
// across the bottleneck; the right switch mirrors that for receivers.
func NewDumbbell(nw *net.Network, cfg DumbbellConfig) *Dumbbell {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Dumbbell{Config: cfg}
	for gi, g := range cfg.Groups {
		for i := 0; i < g.Count; i++ {
			d.Senders = append(d.Senders, nw.AddHost())
			d.Class = append(d.Class, gi)
		}
	}
	for range d.Senders {
		d.Receivers = append(d.Receivers, nw.AddHost())
	}
	d.Left = nw.AddSwitch()
	d.Right = nw.AddSwitch()

	lp, rp := nw.Connect(d.Left, d.Right, cfg.BottleneckBps, cfg.BottleneckDelay)
	d.BottleneckPort = lp

	si := 0
	for _, g := range cfg.Groups {
		for i := 0; i < g.Count; i++ {
			sp, _ := nw.Connect(d.Left, d.Senders[si], g.AccessBps, g.AccessDelay)
			d.Left.AddRoute(d.Senders[si].NodeID(), sp)
			d.Right.AddRoute(d.Senders[si].NodeID(), rp)
			si++
		}
	}
	for _, r := range d.Receivers {
		rp2, _ := nw.Connect(d.Right, r, cfg.ReceiverBps, cfg.ReceiverDelay)
		d.Right.AddRoute(r.NodeID(), rp2)
		d.Left.AddRoute(r.NodeID(), lp)
	}
	return d
}

// ClassBaseRTT probes the unloaded round-trip time of each class's
// sender-to-receiver path, in group order.
func (d *Dumbbell) ClassBaseRTT(nw *net.Network) []sim.Time {
	rtts := make([]sim.Time, len(d.Config.Groups))
	seen := make([]bool, len(d.Config.Groups))
	for i, s := range d.Senders {
		g := d.Class[i]
		if seen[g] {
			continue
		}
		_, rtt, _, err := nw.ProbePath(net.FlowSpec{
			ID: -1, Src: s.NodeID(), Dst: d.Receivers[i].NodeID(), Size: 1})
		if err != nil {
			panic(err) // the dumbbell we just built is always probeable
		}
		rtts[g] = rtt
		seen[g] = true
	}
	return rtts
}

// ShardMap partitions the dumbbell for parallel execution: the sender
// side (senders + left switch) on shard 0 and the receiver side
// (receivers + right switch) on shard 1 when k >= 2. The only cross-shard
// link is the bottleneck, so the parallel lookahead is BottleneckDelay —
// the first topology in the repository whose lookahead is not the uniform
// fabric LinkDelay.
func (d *Dumbbell) ShardMap(k int) ([]int, int) {
	nNodes := len(d.Senders) + len(d.Receivers) + 2
	assign := make([]int, nNodes)
	if k <= 1 {
		return assign, 1
	}
	for _, r := range d.Receivers {
		assign[r.NodeID()] = 1
	}
	assign[d.Right.NodeID()] = 1
	return assign, 2
}
