// Package topo builds the two topologies the paper evaluates on: the
// single-switch star used for the incast microbenchmarks (Sec. III-D) and
// the 320-host three-layer fat-tree used for the datacenter simulations
// (Sec. VI-A, Fig. 7).
package topo

import (
	"fmt"

	"faircc/internal/net"
	"faircc/internal/sim"
)

// Star is a single switch with n directly attached hosts — the incast
// topology: 17 hosts, 100 Gb/s links, 1 us propagation in the paper.
type Star struct {
	Switch *net.Switch
	Hosts  []*net.Host
	// HostPorts[i] is the switch port toward Hosts[i], whose egress queue
	// is the incast bottleneck when host i is the receiver.
	HostPorts []*net.Port
}

// NewStar builds a star over nw.
func NewStar(nw *net.Network, hosts int, hostBps float64, delay sim.Time) *Star {
	s := &Star{}
	for i := 0; i < hosts; i++ {
		s.Hosts = append(s.Hosts, nw.AddHost())
	}
	s.Switch = nw.AddSwitch()
	for _, h := range s.Hosts {
		sp, _ := nw.Connect(s.Switch, h, hostBps, delay)
		s.Switch.AddRoute(h.NodeID(), sp)
		s.HostPorts = append(s.HostPorts, sp)
	}
	return s
}

// FatTreeConfig sizes a three-layer fat-tree. The paper's instance
// (Fig. 7) is the zero-argument DefaultFatTree: 5 pods, each with 4 ToR
// and 4 Agg switches, 16 hosts per ToR (320 total), 16 spines, 100 Gb/s
// host links and 400 Gb/s fabric links, 1 us propagation per link.
type FatTreeConfig struct {
	Pods        int
	ToRsPerPod  int
	AggsPerPod  int
	Spines      int // must be a multiple of AggsPerPod
	HostsPerToR int
	HostBps     float64
	FabricBps   float64
	// ToRUplinkBps, when positive, overrides FabricBps on the ToR<->Agg
	// links only — the knob that makes the tree oversubscribed at the ToR
	// layer (the one place real Clos fabrics economize). Zero keeps the
	// paper's 1:1 fabric.
	ToRUplinkBps float64
	LinkDelay    sim.Time
}

// DefaultFatTree returns the paper's datacenter topology parameters.
func DefaultFatTree() FatTreeConfig {
	return FatTreeConfig{
		Pods:        5,
		ToRsPerPod:  4,
		AggsPerPod:  4,
		Spines:      16,
		HostsPerToR: 16,
		HostBps:     100e9,
		FabricBps:   400e9,
		LinkDelay:   1 * sim.Microsecond,
	}
}

// Scaled returns the configuration shrunk by dividing pods/hosts counts,
// for fast tests and benchmarks, keeping link speeds and layering.
func (c FatTreeConfig) Scaled(pods, torsPerPod, hostsPerToR int) FatTreeConfig {
	c.Pods = pods
	c.ToRsPerPod = torsPerPod
	c.AggsPerPod = torsPerPod
	c.Spines = torsPerPod * torsPerPod
	c.HostsPerToR = hostsPerToR
	return c
}

// Validate reports configuration errors.
func (c FatTreeConfig) Validate() error {
	switch {
	case c.Pods < 1 || c.ToRsPerPod < 1 || c.AggsPerPod < 1 || c.HostsPerToR < 1 || c.Spines < 1:
		// Spines must be checked here explicitly: 0 % AggsPerPod == 0, so
		// the multiple-of check below would wave a spineless tree through
		// and cross-pod routes would silently come out empty.
		return fmt.Errorf("topo: all counts must be positive: %+v", c)
	case c.Spines%c.AggsPerPod != 0:
		return fmt.Errorf("topo: spines (%d) must be a multiple of aggs per pod (%d)",
			c.Spines, c.AggsPerPod)
	case c.HostBps <= 0 || c.FabricBps <= 0:
		return fmt.Errorf("topo: link rates must be positive")
	case c.ToRUplinkBps < 0:
		return fmt.Errorf("topo: ToR uplink rate must be non-negative (zero means FabricBps)")
	}
	return nil
}

// torUplinkBps is the effective ToR<->Agg link rate.
func (c FatTreeConfig) torUplinkBps() float64 {
	if c.ToRUplinkBps > 0 {
		return c.ToRUplinkBps
	}
	return c.FabricBps
}

// Oversubscribed returns the configuration with ToR uplinks sized so that
// per-ToR host capacity is ratio times its uplink capacity (ratio 1 = the
// paper's 1:1; ratio 4 = a typical production 4:1 ToR layer).
func (c FatTreeConfig) Oversubscribed(ratio float64) FatTreeConfig {
	if ratio <= 0 {
		panic("topo: oversubscription ratio must be positive")
	}
	c.ToRUplinkBps = float64(c.HostsPerToR) * c.HostBps / (float64(c.AggsPerPod) * ratio)
	return c
}

// OversubscriptionRatio reports per-ToR host capacity over uplink
// capacity (1 means non-blocking).
func (c FatTreeConfig) OversubscriptionRatio() float64 {
	return float64(c.HostsPerToR) * c.HostBps /
		(float64(c.AggsPerPod) * c.torUplinkBps())
}

// K16FatTree returns a k=16-style two-tier-pod Clos: 16 pods of 8 ToRs
// and 8 Aggs, 64 spines, 32 hosts per ToR — 4096 hosts, an order of
// magnitude beyond the paper's 320. At FabricBps 400G it is 1:1;
// compose with Oversubscribed to economize the ToR layer, e.g.
// K16FatTree().Oversubscribed(4).
func K16FatTree() FatTreeConfig {
	return FatTreeConfig{
		Pods:        16,
		ToRsPerPod:  8,
		AggsPerPod:  8,
		Spines:      64,
		HostsPerToR: 32,
		HostBps:     100e9,
		FabricBps:   400e9,
		LinkDelay:   1 * sim.Microsecond,
	}
}

// FatTree is a built fat-tree: hosts in pod-major order plus the switch
// layers. Host i's position: pod i/(ToRsPerPod*HostsPerToR), ToR within
// pod (i/HostsPerToR)%ToRsPerPod.
type FatTree struct {
	Config FatTreeConfig
	Hosts  []*net.Host
	ToRs   []*net.Switch // pod-major
	Aggs   []*net.Switch // pod-major
	Spines []*net.Switch
	// HostPorts[i] is the ToR port toward Hosts[i] (the host's downlink
	// queue — where incast congestion to host i appears).
	HostPorts []*net.Port
}

// NewFatTree builds the topology and installs up/down ECMP routing:
// packets ascend only as far as needed (same-ToR: 1 hop; same-pod: via any
// of the pod's Aggs, 3 hops; cross-pod: via an Agg and one of its Spines,
// 5 hops) and descend on the unique downward path.
func NewFatTree(nw *net.Network, cfg FatTreeConfig) *FatTree {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ft := &FatTree{Config: cfg}
	nHosts := cfg.Pods * cfg.ToRsPerPod * cfg.HostsPerToR
	for i := 0; i < nHosts; i++ {
		ft.Hosts = append(ft.Hosts, nw.AddHost())
	}
	for i := 0; i < cfg.Pods*cfg.ToRsPerPod; i++ {
		ft.ToRs = append(ft.ToRs, nw.AddSwitch())
	}
	for i := 0; i < cfg.Pods*cfg.AggsPerPod; i++ {
		ft.Aggs = append(ft.Aggs, nw.AddSwitch())
	}
	for i := 0; i < cfg.Spines; i++ {
		ft.Spines = append(ft.Spines, nw.AddSwitch())
	}

	// Host <-> ToR links.
	ft.HostPorts = make([]*net.Port, nHosts)
	for i, h := range ft.Hosts {
		tor := ft.ToRs[i/cfg.HostsPerToR]
		tp, _ := nw.Connect(tor, h, cfg.HostBps, cfg.LinkDelay)
		ft.HostPorts[i] = tp
	}

	// ToR <-> Agg links (full bipartite within each pod). These run at
	// torUplinkBps — FabricBps unless the config oversubscribes the ToR
	// layer.
	torUp := make([][]*net.Port, len(ft.ToRs))   // ToR -> its Agg uplinks
	aggDown := make([][]*net.Port, len(ft.Aggs)) // Agg -> ToR downlinks, by ToR index in pod
	uplinkBps := cfg.torUplinkBps()
	for p := 0; p < cfg.Pods; p++ {
		for t := 0; t < cfg.ToRsPerPod; t++ {
			tor := ft.ToRs[p*cfg.ToRsPerPod+t]
			for a := 0; a < cfg.AggsPerPod; a++ {
				agg := ft.Aggs[p*cfg.AggsPerPod+a]
				tp, ap := nw.Connect(tor, agg, uplinkBps, cfg.LinkDelay)
				torUp[p*cfg.ToRsPerPod+t] = append(torUp[p*cfg.ToRsPerPod+t], tp)
				if aggDown[p*cfg.AggsPerPod+a] == nil {
					aggDown[p*cfg.AggsPerPod+a] = make([]*net.Port, cfg.ToRsPerPod)
				}
				aggDown[p*cfg.AggsPerPod+a][t] = ap
			}
		}
	}

	// Agg <-> Spine links: spine s attaches to agg index s/(Spines/AggsPerPod)
	// in every pod, giving each agg Spines/AggsPerPod uplinks.
	group := cfg.Spines / cfg.AggsPerPod
	aggUp := make([][]*net.Port, len(ft.Aggs))
	spineDown := make([][]*net.Port, cfg.Spines) // spine -> per-pod downlink
	for s := 0; s < cfg.Spines; s++ {
		aggIdx := s / group
		spineDown[s] = make([]*net.Port, cfg.Pods)
		for p := 0; p < cfg.Pods; p++ {
			agg := ft.Aggs[p*cfg.AggsPerPod+aggIdx]
			ap, sp := nw.Connect(agg, ft.Spines[s], cfg.FabricBps, cfg.LinkDelay)
			aggUp[p*cfg.AggsPerPod+aggIdx] = append(aggUp[p*cfg.AggsPerPod+aggIdx], ap)
			spineDown[s][p] = sp
		}
	}

	// Routing tables.
	pod := func(host int) int { return host / (cfg.ToRsPerPod * cfg.HostsPerToR) }
	torOf := func(host int) int { return host / cfg.HostsPerToR } // global ToR index
	for i := range ft.Hosts {
		hostID := ft.Hosts[i].NodeID()
		hp, ht := pod(i), torOf(i)
		// ToRs: the attached ToR delivers directly; every other ToR sends
		// up across all its Agg uplinks — same-pod and cross-pod paths
		// only diverge at the Agg layer, so the ToR rule is identical.
		for tIdx, tor := range ft.ToRs {
			if tIdx == ht {
				tor.AddRoute(hostID, ft.HostPorts[i])
			} else {
				tor.AddRoute(hostID, torUp[tIdx]...)
			}
		}
		// Aggs.
		for aIdx, agg := range ft.Aggs {
			if aIdx/cfg.AggsPerPod == hp {
				agg.AddRoute(hostID, aggDown[aIdx][ht%cfg.ToRsPerPod])
			} else {
				agg.AddRoute(hostID, aggUp[aIdx]...) // up to this agg's spines
			}
		}
		// Spines: descend into the host's pod.
		for s, spine := range ft.Spines {
			spine.AddRoute(hostID, spineDown[s][hp])
		}
	}
	return ft
}

// NumHosts returns the number of hosts in the configuration.
func (c FatTreeConfig) NumHosts() int { return c.Pods * c.ToRsPerPod * c.HostsPerToR }
