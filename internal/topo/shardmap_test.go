package topo

import (
	"reflect"
	"testing"

	"faircc/internal/net"
	"faircc/internal/sim"
)

func buildFT(t *testing.T, pods, tors, hosts int) (*net.Network, *FatTree) {
	t.Helper()
	nw := net.New(sim.NewEngine(), 1)
	return nw, NewFatTree(nw, DefaultFatTree().Scaled(pods, tors, hosts))
}

// checkPodLocal asserts every pod's hosts, ToRs and Aggs share one shard
// (the pod-local invariant: all intra-pod links stay shard-local).
func checkPodLocal(t *testing.T, ft *FatTree, assign []int, k int) {
	t.Helper()
	cfg := ft.Config
	for p := 0; p < cfg.Pods; p++ {
		want := assign[ft.ToRs[p*cfg.ToRsPerPod].NodeID()]
		for i := 0; i < cfg.ToRsPerPod; i++ {
			tor := ft.ToRs[p*cfg.ToRsPerPod+i]
			if assign[tor.NodeID()] != want {
				t.Fatalf("k=%d pod %d: ToR %d off-pod shard", k, p, i)
			}
			for h := 0; h < cfg.HostsPerToR; h++ {
				host := ft.Hosts[(p*cfg.ToRsPerPod+i)*cfg.HostsPerToR+h]
				if assign[host.NodeID()] != want {
					t.Fatalf("k=%d pod %d: host under ToR %d on shard %d, want %d",
						k, p, i, assign[host.NodeID()], want)
				}
			}
		}
		for i := 0; i < cfg.AggsPerPod; i++ {
			agg := ft.Aggs[p*cfg.AggsPerPod+i]
			if assign[agg.NodeID()] != want {
				t.Fatalf("k=%d pod %d: Agg %d off-pod shard", k, p, i)
			}
		}
	}
}

// TestShardMapFatTreePods checks the coarse partition (k up to
// Pods+AggsPerPod): pods stay intact, every spine group stays intact, the
// spine layer is split across shards instead of serialized on one, and
// every shard is used.
func TestShardMapFatTreePods(t *testing.T) {
	_, ft := buildFT(t, 4, 2, 2)
	cfg := ft.Config
	groups := cfg.AggsPerPod
	spinesPerGroup := cfg.Spines / groups
	for k := 2; k <= cfg.Pods+groups; k++ {
		assign, got := ft.ShardMap(k)
		if got != k {
			t.Fatalf("k=%d: ShardMap used %d shards", k, got)
		}
		checkPodLocal(t, ft, assign, k)
		// Spine groups stay intact, and the layer splits over the expected
		// number of shards: min(groups, k) when co-resident with pods,
		// k-Pods dedicated shards otherwise — never one monolithic shard
		// unless that's all the partition has room for.
		spineShards := map[int]bool{}
		for g := 0; g < groups; g++ {
			want := assign[ft.Spines[g*spinesPerGroup].NodeID()]
			spineShards[want] = true
			for i := 0; i < spinesPerGroup; i++ {
				s := ft.Spines[g*spinesPerGroup+i]
				if assign[s.NodeID()] != want {
					t.Fatalf("k=%d: spine group %d split across shards", k, g)
				}
			}
		}
		wantSpineShards := k
		if wantSpineShards > cfg.Pods {
			wantSpineShards = k - cfg.Pods
		}
		if wantSpineShards > groups {
			wantSpineShards = groups
		}
		if len(spineShards) != wantSpineShards {
			t.Fatalf("k=%d: spine layer on %d shards, want %d", k, len(spineShards), wantSpineShards)
		}
		if k > cfg.Pods {
			// Dedicated spine shards: disjoint from every pod shard.
			for p := 0; p < cfg.Pods; p++ {
				if spineShards[assign[ft.ToRs[p*cfg.ToRsPerPod].NodeID()]] {
					t.Fatalf("k=%d: pod %d shares a shard with a spine group despite spare shards", k, p)
				}
			}
		}
		used := map[int]bool{}
		for _, s := range assign {
			used[s] = true
		}
		if len(used) != k {
			t.Fatalf("k=%d: only %d shards used", k, len(used))
		}
	}
}

// TestShardMapFatTreeBalance pins the coarse partition's load spread: the
// per-shard node counts may differ by at most one pod's worth of nodes
// plus one spine group (pods and groups round-robin independently).
func TestShardMapFatTreeBalance(t *testing.T) {
	_, ft := buildFT(t, 4, 2, 2)
	cfg := ft.Config
	podNodes := cfg.ToRsPerPod*cfg.HostsPerToR + cfg.ToRsPerPod + cfg.AggsPerPod
	groupNodes := cfg.Spines / cfg.AggsPerPod
	for k := 2; k <= cfg.Pods+cfg.AggsPerPod; k++ {
		assign, got := ft.ShardMap(k)
		load := make([]int, got)
		for _, s := range assign {
			load[s]++
		}
		min, max := load[0], load[0]
		for _, l := range load[1:] {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if min == 0 || max-min > podNodes+groupNodes {
			t.Fatalf("k=%d: unbalanced coarse partition: loads %v", k, load)
		}
	}
}

// TestShardMapPodSpineLegacy checks the retained PR-5 reference partition:
// pod-local, all spines on the last shard, k clamped to Pods+1.
func TestShardMapPodSpineLegacy(t *testing.T) {
	_, ft := buildFT(t, 4, 2, 2)
	cfg := ft.Config
	for k := 2; k <= cfg.Pods+1; k++ {
		assign, got := ft.ShardMapPodSpine(k)
		if got != k {
			t.Fatalf("k=%d: ShardMapPodSpine used %d shards", k, got)
		}
		checkPodLocal(t, ft, assign, k)
		for _, s := range ft.Spines {
			if assign[s.NodeID()] != k-1 {
				t.Fatalf("k=%d: spine on shard %d, want %d", k, assign[s.NodeID()], k-1)
			}
		}
	}
	if _, got := ft.ShardMapPodSpine(cfg.Pods + 3); got != cfg.Pods+1 {
		t.Fatalf("oversized k used %d shards, want clamp to %d", got, cfg.Pods+1)
	}
}

// TestShardMapFatTreeFine checks the fine-cell packing used when k
// exceeds Pods+1: ToR subtrees stay intact (a host always shards with its
// ToR — the host-ToR link has the only sub-fabric delay) and the load
// spread is balanced.
func TestShardMapFatTreeFine(t *testing.T) {
	_, ft := buildFT(t, 2, 2, 8)
	cfg := ft.Config
	k := cfg.Pods + 4
	assign, got := ft.ShardMap(k)
	if got != k {
		t.Fatalf("ShardMap used %d shards, want %d", got, k)
	}
	for i, tor := range ft.ToRs {
		want := assign[tor.NodeID()]
		for h := i * cfg.HostsPerToR; h < (i+1)*cfg.HostsPerToR; h++ {
			if assign[ft.Hosts[h].NodeID()] != want {
				t.Fatalf("host %d split from its ToR %d", h, i)
			}
		}
	}
	load := make([]int, k)
	for _, s := range assign {
		if s < 0 || s >= k {
			t.Fatalf("assignment out of range: %d", s)
		}
		load[s]++
	}
	min, max := load[0], load[0]
	for _, l := range load[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// Heaviest cell is a ToR subtree (1+8 nodes); greedy packing keeps the
	// spread within one such cell.
	if min == 0 || max-min > 1+cfg.HostsPerToR {
		t.Fatalf("unbalanced packing: loads %v", load)
	}
}

// TestShardMapFatTreeClamps checks degenerate shard counts: k <= 1 is the
// identity partition and k beyond the cell count is clamped.
func TestShardMapFatTreeClamps(t *testing.T) {
	_, ft := buildFT(t, 2, 2, 2)
	if assign, k := ft.ShardMap(1); k != 1 {
		t.Fatalf("k=1 used %d shards", k)
	} else {
		for _, s := range assign {
			if s != 0 {
				t.Fatal("k=1 assignment not all-zero")
			}
		}
	}
	cells := len(ft.ToRs) + len(ft.Aggs) + len(ft.Spines)
	if _, k := ft.ShardMap(1000); k != cells {
		t.Fatalf("k=1000 clamped to %d, want the cell count %d", k, cells)
	}
}

// TestShardMapDeterministic checks the assignment is a pure function of
// (cfg, k) — the partition half of the determinism contract.
func TestShardMapDeterministic(t *testing.T) {
	_, ft1 := buildFT(t, 2, 2, 8)
	_, ft2 := buildFT(t, 2, 2, 8)
	for _, k := range []int{2, 3, 7, 40} {
		a1, k1 := ft1.ShardMap(k)
		a2, k2 := ft2.ShardMap(k)
		if k1 != k2 || !reflect.DeepEqual(a1, a2) {
			t.Fatalf("k=%d: assignment differs between identical topologies", k)
		}
	}
}

// TestShardMapStar checks the incast partition: switch (and the shared
// bottleneck) on shard 0, senders spread over the rest, oversized k
// clamped to the host count.
func TestShardMapStar(t *testing.T) {
	nw := net.New(sim.NewEngine(), 1)
	st := NewStar(nw, 5, 100e9, sim.Microsecond)
	assign, k := st.ShardMap(3)
	if k != 3 {
		t.Fatalf("ShardMap used %d shards, want 3", k)
	}
	if assign[st.Switch.NodeID()] != 0 {
		t.Fatalf("switch on shard %d, want 0", assign[st.Switch.NodeID()])
	}
	seen := map[int]int{}
	for _, h := range st.Hosts {
		s := assign[h.NodeID()]
		if s < 1 || s >= k {
			t.Fatalf("host on shard %d, want [1,%d)", s, k)
		}
		seen[s]++
	}
	if len(seen) != k-1 {
		t.Fatalf("hosts use %d shards, want %d", len(seen), k-1)
	}
	if _, k := st.ShardMap(100); k != 5 {
		t.Fatalf("oversized k clamped to %d, want 5", k)
	}
	if _, k := st.ShardMap(1); k != 1 {
		t.Fatalf("k=1 used %d shards", k)
	}
	// A 1-host star clamps every k to sequential rather than dividing by
	// zero in the round-robin.
	nw2 := net.New(sim.NewEngine(), 1)
	st2 := NewStar(nw2, 1, 100e9, sim.Microsecond)
	if _, k := st2.ShardMap(4); k != 1 {
		t.Fatalf("1-host star used %d shards, want 1", k)
	}
}
