package net

import (
	"math/rand"
	"testing"
	"testing/quick"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// TestConservationProperty: for arbitrary small traffic patterns on a
// star (random sizes, sources, destinations, start times, rates), every
// flow finishes, delivers exactly its size, and the network passes its
// conservation checks. This is the simulator's core correctness
// invariant under randomized inputs.
func TestConservationProperty(t *testing.T) {
	type flowGene struct {
		Src, Dst uint8
		SizeKB   uint8
		StartUs  uint8
		RateDiv  uint8
	}
	prop := func(genes []flowGene, seed int64) bool {
		if len(genes) > 12 {
			genes = genes[:12]
		}
		eng := sim.NewEngine()
		nw := New(eng, seed)
		const hosts = 6
		hs := make([]*Host, hosts)
		for i := range hs {
			hs[i] = nw.AddHost()
		}
		sw := nw.AddSwitch()
		for _, h := range hs {
			sp, _ := nw.Connect(sw, h, gbps100, usec)
			sw.AddRoute(h.NodeID(), sp)
		}
		id := 0
		for _, g := range genes {
			src := int(g.Src) % hosts
			dst := int(g.Dst) % hosts
			if src == dst {
				dst = (dst + 1) % hosts
			}
			id++
			rate := gbps100 / float64(1+g.RateDiv%8)
			nw.AddFlow(FlowSpec{
				ID:    id,
				Src:   src,
				Dst:   dst,
				Size:  int64(g.SizeKB)*1000 + 1, // 1 B .. 255 KB
				Start: sim.Time(g.StartUs) * usec,
			}, &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: rate}})
		}
		eng.Run()
		if !nw.AllFinished() {
			return false
		}
		if err := nw.CheckConservation(); err != nil {
			t.Logf("conservation: %v", err)
			return false
		}
		for _, f := range nw.Flows() {
			if f.Delivered() != f.Spec.Size || f.Acked() != f.Spec.Size {
				return false
			}
			if f.FCT() <= 0 || f.Slowdown() < 1-1e-9 {
				t.Logf("flow %d: fct=%v slowdown=%v", f.Spec.ID, f.FCT(), f.Slowdown())
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(99)),
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestConservationPropertyWithPFC repeats the invariant with finite
// buffers and PFC engaged at an aggressive threshold, where pause/resume
// cycles constantly interrupt transmission.
func TestConservationPropertyWithPFC(t *testing.T) {
	prop := func(sizes []uint8, seed int64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 8 {
			sizes = sizes[:8]
		}
		eng := sim.NewEngine()
		nw := New(eng, seed)
		nw.PFCPauseBytes = 10_000 // aggressive: constant pausing
		nw.PFCResumeBytes = 5_000
		hs := make([]*Host, len(sizes)+1)
		for i := range hs {
			hs[i] = nw.AddHost()
		}
		sw := nw.AddSwitch()
		for _, h := range hs {
			sp, _ := nw.Connect(sw, h, gbps100, usec)
			sw.AddRoute(h.NodeID(), sp)
		}
		dst := hs[len(sizes)].NodeID()
		for i, s := range sizes {
			nw.AddFlow(FlowSpec{ID: i + 1, Src: hs[i].NodeID(), Dst: dst,
				Size: int64(s)*500 + 1},
				&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
		}
		eng.Run()
		return nw.AllFinished() && nw.CheckConservation() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLosslessnessPropertyWithPFC: the PFC headroom invariant. With
// aggressive pause/resume thresholds and finite buffers on every switch
// port sized for worst-case pause slack, randomized multihop workloads
// must finish with zero drops: PFC backpressure reaches the sources
// before any switch buffer can overflow. Loss recovery stays off — if
// the invariant ever breaks, flows wedge and the property fails loudly.
func TestLosslessnessPropertyWithPFC(t *testing.T) {
	type flowGene struct {
		Src, Dst uint8
		SizeKB   uint8
		StartUs  uint8
	}
	prop := func(genes []flowGene, seed int64) bool {
		if len(genes) == 0 {
			return true
		}
		if len(genes) > 10 {
			genes = genes[:10]
		}
		eng := sim.NewEngine()
		nw := New(eng, seed)
		nw.PFCPauseBytes = 10_000 // aggressive: constant pause/resume cycling
		nw.PFCResumeBytes = 5_000

		// Two switches, three hosts each; cross-switch flows exercise the
		// cascaded pause path.
		const hosts = 6
		hs := make([]*Host, hosts)
		for i := range hs {
			hs[i] = nw.AddHost()
		}
		sw1, sw2 := nw.AddSwitch(), nw.AddSwitch()
		s12, s21 := nw.Connect(sw1, sw2, gbps100, usec)
		for i, h := range hs {
			sw := sw1
			if i >= hosts/2 {
				sw = sw2
			}
			sp, _ := nw.Connect(sw, h, gbps100, usec)
			sw.AddRoute(h.NodeID(), sp)
		}
		// Routes across the inter-switch link, plus finite buffers on
		// every switch port. The budget per egress is the sum over ingress
		// ports of pause threshold + in-flight slack (~2 link-RTTs at
		// 100G ≈ 26 KB each); 300 KB covers the worst case with room.
		for i, h := range hs {
			if i < hosts/2 {
				sw2.AddRoute(h.NodeID(), s21)
			} else {
				sw1.AddRoute(h.NodeID(), s12)
			}
		}
		for _, sw := range []*Switch{sw1, sw2} {
			for _, p := range sw.Ports() {
				p.SetBuffer(300_000)
			}
		}

		for id, g := range genes {
			src := int(g.Src) % hosts
			dst := int(g.Dst) % hosts
			if src == dst {
				dst = (dst + 1) % hosts
			}
			nw.AddFlow(FlowSpec{
				ID:    id + 1,
				Src:   src,
				Dst:   dst,
				Size:  int64(g.SizeKB)*800 + 1,
				Start: sim.Time(g.StartUs) * usec,
			}, &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
		}
		eng.Run()
		st := nw.Stats()
		if st.Drops() != 0 {
			t.Logf("losslessness violated: %d drops (%d buffer) with PFC on", st.Drops(), st.BufferDrops)
			return false
		}
		return nw.AllFinished() && nw.CheckConservation() == nil
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(7)),
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
