package net

import (
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// TestSendControlCoalesces checks the PFC wire-order fix at the queue
// level: a control frame enqueued while the opposite kind is still queued
// annihilates with it instead of overtaking it via PushFront.
func TestSendControlCoalesces(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 1)
	h0, h1 := nw.AddHost(), nw.AddHost()
	p01, _ := nw.Connect(h0, h1, gbps100, usec)
	_ = h1

	p01.busy = true // queued control frames cannot start transmitting

	// Pause then Resume while both are stuck behind the busy transmitter:
	// the peer never saw the Pause, so delivering neither is correct.
	p01.sendPFC(Pause)
	if p01.q.Len() != 1 {
		t.Fatalf("queue len = %d after Pause, want 1", p01.q.Len())
	}
	p01.sendPFC(Resume)
	if p01.q.Len() != 0 {
		t.Fatalf("queue len = %d after Resume, want 0 (coalesced)", p01.q.Len())
	}

	// Duplicate same-kind frames collapse to one (defensive; pauseSent
	// alternation should make this unreachable).
	p01.sendPFC(Pause)
	p01.sendPFC(Pause)
	if p01.q.Len() != 1 {
		t.Fatalf("queue len = %d after duplicate Pause, want 1", p01.q.Len())
	}
	p01.sendPFC(Resume)
	if p01.q.Len() != 0 {
		t.Fatalf("queue len = %d, want 0", p01.q.Len())
	}

	// Control coalescing must not disturb queued data.
	data := nw.shards[0].getPacket()
	data.Kind = Data
	data.Wire = 1000
	p01.q.Push(data)
	p01.sendPFC(Pause)
	p01.sendPFC(Resume)
	if p01.q.Len() != 1 || p01.q.buf[p01.q.head] != data {
		t.Fatalf("data packet disturbed: len=%d", p01.q.Len())
	}
}

// TestPFCResumeCannotOvertakePause is the end-to-end regression test for
// the Pause/Resume reordering bug: both control frames are generated
// while the reverse-direction transmitter is busy, which used to make the
// PushFronted Resume overtake the queued Pause on the wire — the peer
// processed Pause last and stayed paused forever (with pauseSent already
// false, so no Resume would ever follow).
func TestPFCResumeCannotOvertakePause(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 1)
	nw.PFCPauseBytes = 2000
	nw.PFCResumeBytes = 1000
	h0, h1 := nw.AddHost(), nw.AddHost()
	sw := nw.AddSwitch()
	sp0, _ := nw.Connect(sw, h0, gbps100, usec)
	sp1, _ := nw.Connect(sw, h1, gbps100, usec)
	sw.AddRoute(h0.NodeID(), sp0)
	sw.AddRoute(h1.NodeID(), sp1)

	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: h0.NodeID(), Dst: h1.NodeID(),
		Size: 100_000, Start: 20 * usec}, algo)

	// Occupy sp0 — the direction PFC frames to h0 travel — with a filler
	// packet that serializes for 8 us, then cross the pause threshold and
	// fall back below the resume threshold while it is still going.
	eng.At(0, func() {
		filler := nw.shards[0].getPacket()
		filler.Kind = Ack
		filler.Flow = f
		filler.Src = int32(h1.NodeID())
		filler.Dst = int32(h0.NodeID())
		filler.Wire = 100_000
		sp0.send(filler)
	})
	eng.At(usec, func() {
		sp0.chargeIngress(2500)
		if !sp0.pauseSent {
			t.Fatal("pause threshold crossing did not emit Pause")
		}
		sp0.creditIngress(2500)
		if sp0.pauseSent {
			t.Fatal("resume threshold crossing did not clear pauseSent")
		}
	})
	eng.Run()
	if h0.port.pausedBy {
		t.Fatal("upstream port left paused forever: Resume overtook Pause on the wire")
	}
	if !f.Finished() {
		t.Fatal("flow stalled behind a reordered PFC pause")
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestSetREDValidation(t *testing.T) {
	_, nw, sw := star(t, 2, 1)
	pt := sw.Ports()[0]
	mustPanic := func(name string, cfg REDConfig) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: SetRED(%+v) did not panic", name, cfg)
			}
		}()
		pt.SetRED(cfg)
	}
	mustPanic("negative KMin", REDConfig{KMinBytes: -1, KMaxBytes: 100, PMax: 0.5})
	mustPanic("KMax below KMin", REDConfig{KMinBytes: 100, KMaxBytes: 50, PMax: 0.5})
	mustPanic("zero PMax", REDConfig{KMinBytes: 10, KMaxBytes: 100, PMax: 0})
	mustPanic("PMax above 1", REDConfig{KMinBytes: 10, KMaxBytes: 100, PMax: 1.5})
	// Step config (KMax == KMin) is valid.
	pt.SetRED(REDConfig{KMinBytes: 100, KMaxBytes: 100, PMax: 0.3})
	pt.SetRED(REDConfig{KMinBytes: 10, KMaxBytes: 100, PMax: 1})
	_ = nw
}

// TestREDStepConfigMarksWithPMax: KMax == KMin used to divide by zero
// into a +Inf marking probability (always mark); it must behave as a step
// function marking with PMax instead.
func TestREDStepConfigMarksWithPMax(t *testing.T) {
	eng, nw, sw := star(t, 3, 1)
	const pmax = 0.3
	sw.Ports()[0].SetRED(REDConfig{KMinBytes: 1, KMaxBytes: 1, PMax: pmax})
	a1 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	a2 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	nw.AddFlow(FlowSpec{ID: 1, Src: 1, Dst: 0, Size: 500_000, Start: 0}, a1)
	nw.AddFlow(FlowSpec{ID: 2, Src: 2, Dst: 0, Size: 500_000, Start: 0}, a2)
	eng.Run()
	sent := nw.Stats().DataSent
	marks := nw.Stats().ECNMarks
	if marks == 0 {
		t.Fatal("step RED config never marked")
	}
	// Every packet is above the 1-byte threshold, so the mark rate must
	// track PMax — not the 100% an +Inf probability produced.
	rate := float64(marks) / float64(sent)
	if rate < pmax/2 || rate > pmax*2 {
		t.Fatalf("mark rate = %.2f with PMax %.2f; step config not honored", rate, pmax)
	}
}

// TestMarkECNCountsArrivingPacket: the instantaneous queue RED compares
// against must include the arriving packet itself, so the first packet
// into an empty queue can be marked when thresholds say so.
func TestMarkECNCountsArrivingPacket(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 1)
	h0, h1 := nw.AddHost(), nw.AddHost()
	sw := nw.AddSwitch()
	sp0, _ := nw.Connect(sw, h0, gbps100, usec)
	sp1, _ := nw.Connect(sw, h1, gbps100, usec)
	sw.AddRoute(h0.NodeID(), sp0)
	sw.AddRoute(h1.NodeID(), sp1)
	// One MTU packet is 1048 wire bytes: above KMin even alone, and PMax 1
	// makes marking deterministic.
	sp1.SetRED(REDConfig{KMinBytes: 500, KMaxBytes: 501, PMax: 1})

	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1000, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: h0.NodeID(), Dst: h1.NodeID(), Size: 1000, Start: 0}, algo)
	eng.Run()
	if !f.Finished() {
		t.Fatal("flow did not finish")
	}
	// The single packet always finds an empty queue; before the fix its
	// own bytes were invisible and it could never be marked.
	if nw.Stats().ECNMarks != 1 {
		t.Fatalf("ECN marks = %d, want 1 (arriving packet's bytes must count)", nw.Stats().ECNMarks)
	}
}

// TestTailDropAtFiniteBuffer: a 2:1 overload into a small finite buffer
// must drop, keep the queue capped, and still complete every flow via
// loss recovery.
func TestTailDropAtFiniteBuffer(t *testing.T) {
	eng, nw, sw := star(t, 3, 1)
	nw.BufferBytes = 20_000
	nw.LossRecovery = true
	a1 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	a2 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	nw.AddFlow(FlowSpec{ID: 1, Src: 1, Dst: 0, Size: 200_000, Start: 0}, a1)
	nw.AddFlow(FlowSpec{ID: 2, Src: 2, Dst: 0, Size: 200_000, Start: 0}, a2)
	eng.Run()
	if !nw.AllFinished() {
		t.Fatal("flows did not finish under tail drop + loss recovery")
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.BufferDrops == 0 {
		t.Fatal("2:1 overload into a 20 KB buffer never tail-dropped")
	}
	if st.Retransmits == 0 || st.RTOFires == 0 {
		t.Fatalf("recovery counters: retransmits=%d rtoFires=%d, want both > 0",
			st.Retransmits, st.RTOFires)
	}
	if peak := sw.Ports()[0].QueuePeak(); peak > nw.BufferBytes {
		t.Fatalf("queue peaked at %d bytes past the %d buffer", peak, nw.BufferBytes)
	}
	if st.DataDrops+st.AckDrops != st.BufferDrops+st.WireDrops {
		t.Fatalf("drop breakdowns disagree: %+v", st)
	}
}

// TestRTORecoversDroppedDataAndAck: one dropped data packet mid-flow and
// the dropped final ACK both force RTO-driven go-back-N; the flow still
// completes with exact delivery.
func TestRTORecoversDroppedDataAndAck(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	nw.LossRecovery = true
	const size = 50_000
	droppedData, droppedAck := false, false
	nw.DropFilter = func(kind Kind, flowID int, seq int64) bool {
		if kind == Data && seq == 5000 && !droppedData {
			droppedData = true
			return true
		}
		// The final cumulative ACK: without it the sender can only finish
		// through a timeout-driven resend.
		if kind == Ack && seq == size && !droppedAck {
			droppedAck = true
			return true
		}
		return false
	}
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 30_000, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: size, Start: 0}, algo)
	eng.Run()
	if !f.Finished() {
		t.Fatal("flow did not recover from a dropped data packet + dropped ACK")
	}
	if !droppedData || !droppedAck {
		t.Fatalf("fault filter never fired: data=%v ack=%v", droppedData, droppedAck)
	}
	if f.Delivered() != size {
		t.Fatalf("delivered = %d, want %d", f.Delivered(), size)
	}
	st := nw.Stats()
	if st.WireDrops != 2 || st.DataDrops != 1 || st.AckDrops != 1 {
		t.Fatalf("drop counters: %+v", st)
	}
	if f.Timeouts < 2 {
		t.Fatalf("timeouts = %d, want >= 2 (one per injected loss)", f.Timeouts)
	}
	if f.Retransmits == 0 || st.Retransmits == 0 {
		t.Fatal("no retransmits recorded")
	}
	if st.DupAcks == 0 || st.DataOutOfSeq == 0 {
		t.Fatalf("receiver-side loss evidence missing: %+v", st)
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomLossCompletes: random data and ACK loss on every link, same
// seed twice — both runs finish, agree bit-for-bit, and leave the
// loss counters nonzero.
func TestRandomLossCompletes(t *testing.T) {
	run := func() ([]sim.Time, NetworkStats) {
		eng, nw, _ := star(t, 3, 7)
		nw.LossRecovery = true
		nw.DropDataProb = 0.01
		nw.DropAckProb = 0.01
		for i := 1; i <= 2; i++ {
			algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 100_000, RateBps: gbps100}}
			nw.AddFlow(FlowSpec{ID: i, Src: i, Dst: 0, Size: 100_000, Start: 0}, algo)
		}
		eng.Run()
		if !nw.AllFinished() {
			t.Fatal("flows did not finish under random loss")
		}
		if err := nw.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		var fct []sim.Time
		for _, f := range nw.Flows() {
			fct = append(fct, f.FinishedAt)
		}
		return fct, nw.Stats()
	}
	fctA, stA := run()
	fctB, stB := run()
	if stA.WireDrops == 0 {
		t.Fatal("1% loss probability never dropped on a 200-packet workload")
	}
	if stA != stB {
		t.Fatalf("lossy run not deterministic:\n%+v\n%+v", stA, stB)
	}
	for i := range fctA {
		if fctA[i] != fctB[i] {
			t.Fatalf("flow %d finished %v vs %v across identical seeds", i, fctA[i], fctB[i])
		}
	}
}

// TestLinkFlapRecovery: a link-down window in the middle of a flow drops
// everything serialized during it; the flow times out and completes after
// the link returns.
func TestLinkFlapRecovery(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	nw.LossRecovery = true
	h0 := nw.Hosts()[0]
	h0.Port().ScheduleFlap(10*usec, 50*usec)
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 100_000, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 500_000, Start: 0}, algo)
	eng.Run()
	if !f.Finished() {
		t.Fatal("flow did not survive a 50 us link-down window")
	}
	st := nw.Stats()
	if st.WireDrops == 0 {
		t.Fatal("link-down window dropped nothing")
	}
	if f.Timeouts == 0 {
		t.Fatal("no RTO fired across the down window")
	}
	if f.Delivered() != 500_000 {
		t.Fatalf("delivered = %d, want 500000", f.Delivered())
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// The flow must have lost at least the down window to recovery.
	if f.FCT() < 60*usec {
		t.Fatalf("FCT %v implausibly short for a 50 us outage starting at 10 us", f.FCT())
	}
}

// TestOverlappingFlapsKeepLinkDown is the regression test for the flap
// nesting bug: down-ness used to be a bool, so flap A ending at 60 us
// silently re-enabled the link while flap B's window [40,100) was still
// open. With the depth counter the link stays down through the full union
// [10,100) of the windows — probed directly and evidenced by link-down
// drops after flap A's end.
func TestOverlappingFlapsKeepLinkDown(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	nw.LossRecovery = true
	// Pin the RTO at 20 us so go-back-N keeps retransmitting into the
	// outage: without retries nothing would serialize (and drop) late in
	// the union, and the after-60us assertions would be vacuous.
	nw.RTOMin, nw.RTOMax = 20*usec, 20*usec
	pt := nw.Hosts()[0].Port()
	pt.ScheduleFlap(10*usec, 50*usec) // flap A: [10, 60)
	pt.ScheduleFlap(40*usec, 60*usec) // flap B: [40, 100)

	probe := func(at sim.Time, want bool) {
		eng.At(at, func() {
			if pt.LinkDown() != want {
				t.Errorf("LinkDown at %v = %v, want %v", at, !want, want)
			}
		})
	}
	probe(5*usec, false)
	probe(50*usec, true) // both windows open
	probe(70*usec, true) // flap A ended: B's window must still hold
	probe(105*usec, false)

	var lateDrops int
	nw.Hooks.OnDrop = func(f *Flow, kind Kind, seq int64, cause DropCause) {
		if cause == DropLinkDown && eng.Now() >= 60*usec {
			lateDrops++
		}
	}
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 100_000, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 500_000, Start: 0}, algo)
	eng.Run()
	if !f.Finished() {
		t.Fatal("flow did not survive the overlapping down windows")
	}
	if lateDrops == 0 {
		t.Fatal("no link-down drops after flap A's end: flap B's window was clipped")
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Completion cannot predate the union of the windows.
	if f.FCT() < 100*usec {
		t.Fatalf("FCT %v implausibly short for an outage spanning [10,100) us", f.FCT())
	}
}

// TestSurplusLinkUpIsNoop: closing a window that was never opened must not
// drive the depth negative (a later real window would then never take the
// link down).
func TestSurplusLinkUpIsNoop(t *testing.T) {
	_, nw, _ := star(t, 2, 1)
	pt := nw.Hosts()[0].Port()
	pt.SetLinkDown(false)
	if pt.LinkDown() {
		t.Fatal("surplus SetLinkDown(false) took the link down")
	}
	pt.SetLinkDown(true)
	if !pt.LinkDown() {
		t.Fatal("SetLinkDown(true) after a surplus up did not take the link down")
	}
	pt.SetLinkDown(false)
	if pt.LinkDown() {
		t.Fatal("matched SetLinkDown(false) left the link down")
	}
}

// TestDropCreditsPFCIngress: a tail drop of a packet that already charged
// PFC ingress accounting must credit it back, or the upstream stays
// paused forever on bytes that no longer exist.
func TestDropCreditsPFCIngress(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 1)
	nw.PFCPauseBytes = 50_000
	nw.PFCResumeBytes = 25_000
	nw.LossRecovery = true
	// Dumbbell with a 10G bottleneck and a tiny bottleneck buffer: the
	// fast first hop charges ingress for packets the slow egress then
	// tail-drops.
	h0, h1 := nw.AddHost(), nw.AddHost()
	sw1, sw2 := nw.AddSwitch(), nw.AddSwitch()
	s1h, _ := nw.Connect(sw1, h0, gbps100, usec)
	s1s2, s2s1 := nw.Connect(sw1, sw2, 10e9, usec)
	s2h, _ := nw.Connect(sw2, h1, gbps100, usec)
	sw1.AddRoute(h0.NodeID(), s1h)
	sw1.AddRoute(h1.NodeID(), s1s2)
	sw2.AddRoute(h0.NodeID(), s2s1)
	sw2.AddRoute(h1.NodeID(), s2h)
	s1s2.SetBuffer(10_000)

	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: h0.NodeID(), Dst: h1.NodeID(),
		Size: 500_000, Start: 0}, algo)
	eng.Run()
	if !f.Finished() {
		t.Fatal("flow wedged: dropped packets left PFC ingress bytes charged")
	}
	st := nw.Stats()
	if st.BufferDrops == 0 {
		t.Fatal("10 KB bottleneck buffer at a 10:1 speed mismatch never dropped")
	}
	if s1s2.ingressBytes != 0 || s1h.ingressBytes != 0 {
		t.Fatalf("residual ingress accounting after drain: s1s2=%d s1h=%d",
			s1s2.ingressBytes, s1h.ingressBytes)
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
