package net

// queue is a FIFO packet queue with byte accounting, implemented as a
// growable ring buffer so sustained enqueue/dequeue churn does not
// allocate. The buffer length is always a power of two (grow doubles from
// 16, shrink halves), so ring indexing is a mask rather than a modulo.
//
// Shrink policy (the egress-queue counterpart of the PR-8 mailbox policy):
// every max(queueShrinkAfter, capacity) Pops the queue checks the
// occupancy peak over that window, and if the window never reached a
// quarter of the capacity the buffer is reallocated at half, down to
// queueMinCap — so one incast burst does not pin peak queue capacity for
// the rest of a long run. Two details keep the policy from thrashing on
// cyclic traffic: the decision uses the windowed peak rather than
// instantaneous occupancy (a queue oscillating just under its grow
// threshold would otherwise alternate grow and shrink allocations
// forever), and the window scales with capacity, so a large ring must
// prove underuse over proportionally many Pops — periodic bursts re-fill
// it before it can halve, instead of shrink/grow churn on every cycle.
// Shrinking only moves memory; FIFO order, byte accounting and
// simulation results are untouched.
const (
	queueMinCap      = 16
	queueShrinkAfter = 32
)

type queue struct {
	buf   []*Packet
	head  int
	n     int
	bytes int64
	// peak tracks the maximum byte occupancy since the last PeakReset,
	// used by queue-depth samplers.
	peak int64
	// popTick counts Pops toward the next shrink decision and winPeak the
	// packet-occupancy peak inside that window; capPeak and shrinks feed
	// the NetworkStats high-water/shrink counters.
	popTick int32
	winPeak int32
	capPeak int32
	shrinks int32
}

// Len returns the number of queued packets.
func (q *queue) Len() int { return q.n }

// Bytes returns the queued bytes (wire sizes).
func (q *queue) Bytes() int64 { return q.bytes }

// Peak returns the maximum byte occupancy since the last PeakReset.
func (q *queue) Peak() int64 { return q.peak }

// PeakReset resets the occupancy high-water mark to the current depth.
func (q *queue) PeakReset() { q.peak = q.bytes }

// Push appends a packet.
func (q *queue) Push(p *Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = p
	q.n++
	if int32(q.n) > q.winPeak {
		q.winPeak = int32(q.n)
	}
	q.bytes += int64(p.Wire)
	if q.bytes > q.peak {
		q.peak = q.bytes
	}
}

// PushFront prepends a packet (used for PFC control frames, which preempt
// queued data).
func (q *queue) PushFront(p *Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = p
	q.n++
	if int32(q.n) > q.winPeak {
		q.winPeak = int32(q.n)
	}
	q.bytes += int64(p.Wire)
	if q.bytes > q.peak {
		q.peak = q.bytes
	}
}

// Pop removes and returns the head packet, or nil if empty. It also runs
// the shrink policy: the common case (capacity already at the floor) costs
// one comparison.
func (q *queue) Pop() *Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.bytes -= int64(p.Wire)
	if c := len(q.buf); c > queueMinCap {
		window := int32(queueShrinkAfter)
		if int32(c) > window {
			window = int32(c)
		}
		if q.popTick++; q.popTick >= window {
			if int(q.winPeak) < c/4 {
				q.shrink()
			}
			q.popTick, q.winPeak = 0, int32(q.n)
		}
	}
	return p
}

func (q *queue) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = queueMinCap
	}
	q.realloc(size)
	if int32(size) > q.capPeak {
		q.capPeak = int32(size)
	}
}

// shrink halves the buffer after a sustained-underuse window. The window
// peak was below a quarter of the old capacity, so the current occupancy
// always fits the new half.
func (q *queue) shrink() {
	q.realloc(len(q.buf) / 2)
	q.shrinks++
}

func (q *queue) realloc(size int) {
	buf := make([]*Packet, size)
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)&mask]
	}
	q.buf = buf
	q.head = 0
}
