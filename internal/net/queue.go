package net

// queue is a FIFO packet queue with byte accounting, implemented as a
// growable ring buffer so sustained enqueue/dequeue churn does not allocate.
type queue struct {
	buf   []*Packet
	head  int
	n     int
	bytes int64
	// peak tracks the maximum byte occupancy since the last PeakReset,
	// used by queue-depth samplers.
	peak int64
}

// Len returns the number of queued packets.
func (q *queue) Len() int { return q.n }

// Bytes returns the queued bytes (wire sizes).
func (q *queue) Bytes() int64 { return q.bytes }

// Peak returns the maximum byte occupancy since the last PeakReset.
func (q *queue) Peak() int64 { return q.peak }

// PeakReset resets the occupancy high-water mark to the current depth.
func (q *queue) PeakReset() { q.peak = q.bytes }

// Push appends a packet.
func (q *queue) Push(p *Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
	q.bytes += int64(p.Wire)
	if q.bytes > q.peak {
		q.peak = q.bytes
	}
}

// PushFront prepends a packet (used for PFC control frames, which preempt
// queued data).
func (q *queue) PushFront(p *Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1 + len(q.buf)) % len(q.buf)
	q.buf[q.head] = p
	q.n++
	q.bytes += int64(p.Wire)
	if q.bytes > q.peak {
		q.peak = q.bytes
	}
}

// Pop removes and returns the head packet, or nil if empty.
func (q *queue) Pop() *Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.bytes -= int64(p.Wire)
	return p
}

func (q *queue) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]*Packet, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}
