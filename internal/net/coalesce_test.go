package net

import (
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// deliverData hand-crafts a data packet from the shard pool and feeds it
// straight to the receiving host, bypassing the fabric — the receiver-side
// coalescing path only looks at the packet's fields.
func deliverData(nw *Network, h *Host, f *Flow, seq int64, payload int, ecn bool, sentAt sim.Time) {
	p := nw.shards[0].getPacket()
	p.Kind = Data
	p.Flow = f
	p.Src = int32(f.Spec.Src)
	p.Dst = int32(f.Spec.Dst)
	p.Seq = seq
	p.side.Payload = int32(payload)
	p.Wire = int32(payload + nw.HeaderBytes)
	p.side.SentAt = sentAt
	p.ECN = ecn
	h.receiveData(p)
}

// TestAckCoalesceMergesQueuedAck pins the unit-level contract: with the
// uplink transmitter held busy, a second delivery folds into the queued
// ACK — cumulative position advanced, timestamp replaced, ECE OR-ed in,
// no second control packet — and the handle clears the moment the ACK is
// popped for the wire.
func TestAckCoalesceMergesQueuedAck(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	nw.AckCoalesce = true
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	// Start far in the future so the sender side stays quiet while the
	// receiver path is driven by hand.
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 1 << 30, Start: sim.Second}, algo)
	h1 := nw.Hosts()[1]
	h1.port.busy = true // ACKs must queue, not cut through

	deliverData(nw, h1, f, 0, 1000, false, 10*usec)
	if h1.port.q.Len() != 1 {
		t.Fatalf("queue len = %d after first delivery, want 1 (the ACK)", h1.port.q.Len())
	}
	pa := f.pendingAck
	if pa == nil || pa.Kind != Ack || pa.side.AckSeq != 1000 {
		t.Fatalf("pendingAck not registered for the queued ACK: %+v", pa)
	}

	deliverData(nw, h1, f, 1000, 1000, true, 20*usec)
	if h1.port.q.Len() != 1 {
		t.Fatalf("queue len = %d after second delivery, want 1 (coalesced)", h1.port.q.Len())
	}
	if f.pendingAck != pa {
		t.Fatal("coalescing replaced the pending ACK instead of updating it")
	}
	if pa.side.AckSeq != 2000 {
		t.Fatalf("AckSeq = %d, want 2000 (cumulative position advanced)", pa.side.AckSeq)
	}
	if pa.side.SentAt != 20*usec {
		t.Fatalf("SentAt = %v, want the newest sample 20us", pa.side.SentAt)
	}
	if !pa.ECE {
		t.Fatal("ECN mark on the merged delivery did not OR into ECE")
	}
	st := nw.Stats()
	if st.AcksSent != 1 || st.AcksCoalesced != 1 {
		t.Fatalf("acksSent=%d acksCoalesced=%d, want 1/1", st.AcksSent, st.AcksCoalesced)
	}
	if st.AcksSent+st.AcksCoalesced != st.DataDelivered+st.DataOutOfSeq {
		t.Fatalf("ack conservation broke: %+v", st)
	}

	// Release the transmitter: popping the ACK for serialization must
	// clear the handle so the receiver never mutates an in-flight packet.
	h1.port.busy = false
	h1.port.kick()
	if f.pendingAck != nil {
		t.Fatal("pendingAck not cleared when the ACK left the queue")
	}
	_ = eng
}

// TestAckCoalesceOffIsInert: with the flag off (the default), the same
// busy-uplink scenario queues one ACK per delivery and never registers a
// pending handle — the paper-faithful per-packet model.
func TestAckCoalesceOffIsInert(t *testing.T) {
	_, nw, _ := star(t, 2, 1)
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 1 << 30, Start: sim.Second}, algo)
	h1 := nw.Hosts()[1]
	h1.port.busy = true

	deliverData(nw, h1, f, 0, 1000, false, 10*usec)
	deliverData(nw, h1, f, 1000, 1000, false, 20*usec)
	if h1.port.q.Len() != 2 {
		t.Fatalf("queue len = %d, want 2 (one ACK per packet with coalescing off)", h1.port.q.Len())
	}
	if f.pendingAck != nil {
		t.Fatal("pendingAck set with AckCoalesce off")
	}
	st := nw.Stats()
	if st.AcksSent != 2 || st.AcksCoalesced != 0 {
		t.Fatalf("acksSent=%d acksCoalesced=%d, want 2/0", st.AcksSent, st.AcksCoalesced)
	}
}

// TestAckCoalesceBidirectionalConservation runs data both directions over
// one pair of hosts so each uplink carries data and ACKs at once — the
// contention that actually makes ACKs queue (a pure one-way receiver's
// uplink is essentially idle and every ACK cuts through). All flows must
// complete exactly, and every delivery must be covered by a generated or
// coalesced acknowledgement.
func TestAckCoalesceBidirectionalConservation(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	nw.AckCoalesce = true
	const size = 500_000
	for i, pair := range [][2]int{{0, 1}, {1, 0}} {
		algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 200_000, RateBps: gbps100}}
		nw.AddFlow(FlowSpec{ID: i + 1, Src: pair[0], Dst: pair[1], Size: size, Start: 0}, algo)
	}
	eng.Run()
	if !nw.AllFinished() {
		t.Fatal("flows did not finish with ACK coalescing on")
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.AcksCoalesced == 0 {
		t.Fatal("bidirectional contention never coalesced an ACK; test exercised nothing")
	}
	if st.AcksSent+st.AcksCoalesced != st.DataDelivered+st.DataOutOfSeq {
		t.Fatalf("ack conservation broke: acksSent=%d + coalesced=%d != delivered=%d + outOfSeq=%d",
			st.AcksSent, st.AcksCoalesced, st.DataDelivered, st.DataOutOfSeq)
	}
	for _, f := range nw.Flows() {
		if f.Delivered() != size || f.Acked() != size {
			t.Fatalf("flow %d: delivered=%d acked=%d, want %d", f.Spec.ID, f.Delivered(), f.Acked(), size)
		}
	}
}

// TestAckCoalesceLossyDeterministic: random data and ACK loss with
// go-back-N recovery, coalescing on, bidirectional traffic. Both same-seed
// runs must finish exactly, agree bit-for-bit, and actually coalesce.
func TestAckCoalesceLossyDeterministic(t *testing.T) {
	run := func() ([]sim.Time, NetworkStats) {
		eng, nw, _ := star(t, 2, 7)
		nw.AckCoalesce = true
		nw.LossRecovery = true
		nw.DropDataProb = 0.01
		nw.DropAckProb = 0.01
		for i, pair := range [][2]int{{0, 1}, {1, 0}} {
			algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 200_000, RateBps: gbps100}}
			nw.AddFlow(FlowSpec{ID: i + 1, Src: pair[0], Dst: pair[1], Size: 200_000, Start: 0}, algo)
		}
		eng.Run()
		if !nw.AllFinished() {
			t.Fatal("flows did not recover under loss with coalescing on")
		}
		if err := nw.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		var fct []sim.Time
		for _, f := range nw.Flows() {
			fct = append(fct, f.FinishedAt)
		}
		return fct, nw.Stats()
	}
	fctA, stA := run()
	fctB, stB := run()
	if stA.WireDrops == 0 {
		t.Fatal("1% loss never dropped; recovery path unexercised")
	}
	if stA.AcksCoalesced == 0 {
		t.Fatal("lossy bidirectional run never coalesced")
	}
	if stA.AcksSent+stA.AcksCoalesced != stA.DataDelivered+stA.DataOutOfSeq {
		t.Fatalf("ack conservation broke under loss: %+v", stA)
	}
	if stA != stB {
		t.Fatalf("coalesced lossy run not deterministic:\n%+v\n%+v", stA, stB)
	}
	for i := range fctA {
		if fctA[i] != fctB[i] {
			t.Fatalf("flow %d finished %v vs %v across identical seeds", i, fctA[i], fctB[i])
		}
	}
}

// TestAckCoalesceSteadyStateZeroAlloc pins the coalesced hot path at zero
// allocations: once the pool and the pending ACK are warm, folding a
// delivery into the queued ACK must not allocate — the whole point of
// updating in place rather than building another control event.
func TestAckCoalesceSteadyStateZeroAlloc(t *testing.T) {
	_, nw, _ := star(t, 2, 1)
	nw.AckCoalesce = true
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 1 << 40, Start: sim.Second}, algo)
	h1 := nw.Hosts()[1]
	h1.port.busy = true // the ACK stays queued, so every delivery coalesces

	// Warm up: first delivery builds the pending ACK, a few more cycle the
	// pooled data packet through the coalesce path.
	for i := 0; i < 4; i++ {
		deliverData(nw, h1, f, f.delivered, 1000, false, 10*usec)
	}
	if f.pendingAck == nil {
		t.Fatal("warm-up did not leave a pending ACK")
	}
	before := nw.Stats()
	allocs := testing.AllocsPerRun(1000, func() {
		deliverData(nw, h1, f, f.delivered, 1000, false, 10*usec)
	})
	if allocs != 0 {
		t.Fatalf("coalesced steady state allocates %.1f per delivery, want 0", allocs)
	}
	after := nw.Stats()
	if after.AcksCoalesced <= before.AcksCoalesced {
		t.Fatal("measured loop did not take the coalesce path")
	}
	if after.PoolAllocs != before.PoolAllocs {
		t.Fatalf("pool grew during steady state: %d -> %d", before.PoolAllocs, after.PoolAllocs)
	}
}
