package net

import (
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// TestInitialRTOClamped pins the initial-RTO derivation across the three
// regimes of 4*baseRTT relative to [RTOMin, RTOMax]. The high-delay case
// is the regression for the missing RTOMax clamp: on a 10 ms WAN-edge
// link 4*baseRTT is ~80 ms, and only post-backoff doubling was capped, so
// a first loss waited 8x longer than any later one.
func TestInitialRTOClamped(t *testing.T) {
	cases := []struct {
		name  string
		delay sim.Time
		want  func(nw *Network, f *Flow) sim.Time
	}{
		{"below-min", 1 * usec, func(nw *Network, f *Flow) sim.Time { return nw.RTOMin }},
		{"in-range", 100 * usec, func(nw *Network, f *Flow) sim.Time { return 4 * f.baseRTT }},
		{"above-max", 10 * sim.Millisecond, func(nw *Network, f *Flow) sim.Time { return nw.RTOMax }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			nw := New(eng, 1)
			h0, h1 := nw.AddHost(), nw.AddHost()
			nw.Connect(h0, h1, gbps100, tc.delay)
			algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
			f := nw.AddFlow(FlowSpec{ID: 1, Src: h0.NodeID(), Dst: h1.NodeID(),
				Size: 1000}, algo)
			if want := tc.want(nw, f); f.rtoBase != want || f.rto != want {
				t.Fatalf("delay %v: rtoBase=%v rto=%v, want %v (baseRTT=%v RTOMin=%v RTOMax=%v)",
					tc.delay, f.rtoBase, f.rto, want, f.baseRTT, nw.RTOMin, nw.RTOMax)
			}
		})
	}

	// Sanity-check the above-max case really is above: the clamp test is
	// vacuous if 4*baseRTT were inside the band.
	eng := sim.NewEngine()
	nw := New(eng, 1)
	h0, h1 := nw.AddHost(), nw.AddHost()
	nw.Connect(h0, h1, gbps100, 10*sim.Millisecond)
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: h0.NodeID(), Dst: h1.NodeID(), Size: 1000}, algo)
	if 4*f.baseRTT <= nw.RTOMax {
		t.Fatalf("precondition: 4*baseRTT=%v should exceed RTOMax=%v", 4*f.baseRTT, nw.RTOMax)
	}
}

// TestRTORecoveryOnHighDelayPath drops one mid-flow data packet on a path
// whose 4*baseRTT exceeds RTOMax and checks the flow still completes —
// i.e. the clamped timeout actually fires and go-back-N refills the gap
// within a horizon that the unclamped ~80 ms timeout would bust less
// comfortably.
func TestRTORecoveryOnHighDelayPath(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 1)
	nw.LossRecovery = true
	dropped := false
	nw.DropFilter = func(kind Kind, flowID int, seq int64) bool {
		if kind == Data && seq == 5000 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	h0, h1 := nw.AddHost(), nw.AddHost()
	nw.Connect(h0, h1, gbps100, 10*sim.Millisecond)
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: h0.NodeID(), Dst: h1.NodeID(),
		Size: 20_000}, algo)

	deadline := 200 * sim.Millisecond
	for eng.Step() && eng.Now() < deadline {
	}
	if !f.finished {
		t.Fatalf("flow not finished by %v after one drop (rto=%v)", deadline, f.rto)
	}
	if !dropped {
		t.Fatal("drop filter never matched; test exercised nothing")
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// The recovery must have used the clamped timeout: a single RTO fire
	// at ~80 ms plus the ~20 ms baseRTT redelivery would land near 100 ms;
	// with the 10 ms clamp the finish time stays well under 60 ms.
	if fct := f.FCT(); fct > 60*sim.Millisecond {
		t.Fatalf("FCT %v suggests the unclamped RTO fired (want < 60 ms)", fct)
	}
}

// TestRTOBackoffNoOverflow is the regression test for unbounded backoff
// with RTOMax unset: f.rto used to double unconditionally, so ~37
// consecutive timeouts (from a 100 us base, in picoseconds) wrapped it
// negative and the next deadline was scheduled in the past. A permanently
// down link forces timeouts indefinitely; the backoff must plateau at
// rtoBackoffCeiling with deadlines strictly in the future throughout.
func TestRTOBackoffNoOverflow(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 1)
	nw.LossRecovery = true
	nw.RTOMax = 0 // explicitly unset: only the ceiling bounds the doubling
	h0, h1 := nw.AddHost(), nw.AddHost()
	nw.Connect(h0, h1, gbps100, usec)
	h0.Port().SetLinkDown(true) // never comes back: every retransmission is lost
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: h0.NodeID(), Dst: h1.NodeID(),
		Size: 10_000}, algo)

	const wantTimeouts = 80 // well past the ~37 that used to overflow
	prevDeadline := sim.Time(0)
	for eng.Step() && f.Timeouts < wantTimeouts {
		if f.rto <= 0 {
			t.Fatalf("rto wrapped to %v after %d timeouts", f.rto, f.Timeouts)
		}
		if f.rto > rtoBackoffCeiling {
			t.Fatalf("rto %v exceeds ceiling %v", f.rto, sim.Time(rtoBackoffCeiling))
		}
		if f.rtoDeadline < prevDeadline {
			t.Fatalf("rto deadline moved backwards: %v -> %v after %d timeouts",
				prevDeadline, f.rtoDeadline, f.Timeouts)
		}
		prevDeadline = f.rtoDeadline
		if f.rtoDeadline < eng.Now() {
			t.Fatalf("rto deadline %v in the past (now %v) after %d timeouts",
				f.rtoDeadline, eng.Now(), f.Timeouts)
		}
	}
	if f.Timeouts < wantTimeouts {
		t.Fatalf("engine drained after %d timeouts, want %d (RTO chain broke)",
			f.Timeouts, wantTimeouts)
	}
	if f.rto != rtoBackoffCeiling {
		t.Fatalf("rto = %v after %d timeouts, want plateau at ceiling %v",
			f.rto, f.Timeouts, sim.Time(rtoBackoffCeiling))
	}
}
