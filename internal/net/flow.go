package net

import (
	"faircc/internal/cc"
	"faircc/internal/sim"
)

// FlowSpec describes a flow to inject: Size payload bytes from host Src to
// host Dst starting at Start. IDs must be unique per network.
type FlowSpec struct {
	ID    int
	Src   int
	Dst   int
	Size  int64
	Start sim.Time
}

// Flow is the runtime state of one flow: the sender side (pacing, window,
// congestion control) and the receiver side (delivery accounting, CNP
// policy). Flows are created with Network.AddFlow.
type Flow struct {
	Spec FlowSpec

	net *Network
	// sh/eng are the source host's execution shard and its engine: the
	// whole sender side (start, pacing, congestion control, RTO, ACK
	// processing) runs there. The receiver-side fields below are touched
	// only on the destination host's shard; sender and receiver fields
	// never share an 8-byte word, so sharded runs are race-free without
	// any per-field synchronization.
	sh   *shard
	eng  *sim.Engine
	host *Host // source host
	algo cc.Algorithm
	ctl  cc.Control

	sent     int64 // payload bytes sent (next sequence to transmit)
	acked    int64 // payload bytes acknowledged
	inflight int64
	maxSent  int64 // high-water mark of sent; go-back-N rewinds sent below it
	nextSend sim.Time
	// pending/pendingAt track the outstanding pacing wakeup. The handle is
	// generation-stamped, so cancelling it after it fired is harmless.
	pending   sim.EventID
	pendingAt sim.Time
	wake      func() // onWake bound once: the pacing-wakeup event body
	// trainArmed/trainAt track an elided pacing wakeup (Network.
	// MacroEvents): instead of an engine event, the uplink's drain event
	// runs onWake when it fires at trainAt. Invariant: trainArmed iff
	// host.port.trainFlow == f. At most one flow per port can be armed —
	// arming requires the flow's own packet to be the one in the
	// transmitter.
	trainArmed bool
	trainAt    sim.Time

	// Loss recovery (armed only when Network.LossRecovery is set). The
	// timer is lazy: progress just pushes rtoDeadline forward, and the
	// scheduled event re-arms itself when it fires early, so ACK
	// processing never cancels engine events.
	rtoBase     sim.Time // initial timeout: max(RTOMin, 4*baseRTT)
	rto         sim.Time // current timeout (doubles on fire; capped at RTOMax when set, always at rtoBackoffCeiling)
	rtoDeadline sim.Time
	rtoArmed    bool
	rtoWake     func() // onRTO bound once: the timeout event body

	// Retransmits counts data packets this flow re-sent; Timeouts counts
	// RTO fires that triggered go-back-N recovery.
	Retransmits int64
	Timeouts    int64

	started  bool
	finished bool
	// StartedAt and FinishedAt are valid once started/finished;
	// DeliveredAt is when the last payload byte reached the receiver
	// (FinishedAt additionally waits for the final ACK).
	StartedAt   sim.Time
	FinishedAt  sim.Time
	DeliveredAt sim.Time

	hops     int
	baseRTT  sim.Time
	propSum  sim.Time // one-way propagation along the path
	invBwSum float64  // sum over forward links of 1/bandwidth (s/bit)
	minBw    float64  // bottleneck link bandwidth on the path

	// Flat forwarding path, pre-resolved by Network.pathInfo: the egress
	// port each switch hop would pick for this flow's data (fwdPath) and
	// ACKs (revPath). Honored by Switch.Receive only while pathEpoch
	// matches Network.routeEpoch — any AddRoute after the flow was created
	// silently reverts it to per-hop route lookups.
	fwdPath   []*Port
	revPath   []*Port
	pathEpoch uint64

	// gateFree recycles the liveness gates scheduleCC wraps around
	// algorithm timers, so periodic timers (DCQCN's alpha/rate) stop
	// allocating once each chain owns a gate.
	gateFree []*ccGate

	// gapWire/gapRate/gapDur memoize the pacing gap: the controlled rate
	// only changes on ACKs and nearly every packet is full-MTU, so whole
	// windows reuse one TransmitTime result.
	gapWire int
	gapRate float64
	gapDur  sim.Time

	// Receiver side.
	delivered int64
	lastCNP   sim.Time
	// pendingAck is the flow's ACK still waiting in the destination
	// host's uplink queue, when Network.AckCoalesce is on and one exists.
	// While the handle is set Host.receiveData folds new acknowledgements
	// into that packet in place instead of enqueuing another; Port.kick
	// clears it the moment the ACK is popped for serialization, after
	// which the packet is on the wire and must not be touched. Like
	// delivered/lastCNP this field is only accessed on the destination
	// host's shard.
	pendingAck *Packet

	// deliveredMark supports goodput sampling (metrics take deltas).
	deliveredMark int64
}

// Algorithm returns the flow's congestion-control instance.
func (f *Flow) Algorithm() cc.Algorithm { return f.algo }

// Finished reports whether all payload bytes have been acknowledged.
func (f *Flow) Finished() bool { return f.finished }

// Started reports whether the flow has begun sending.
func (f *Flow) Started() bool { return f.started }

// Active reports whether the flow has started and not finished.
func (f *Flow) Active() bool { return f.started && !f.finished }

// Delivered returns payload bytes received at the destination.
func (f *Flow) Delivered() int64 { return f.delivered }

// Acked returns payload bytes acknowledged at the sender.
func (f *Flow) Acked() int64 { return f.acked }

// Control returns the current congestion-control output.
func (f *Flow) Control() cc.Control { return f.ctl }

// BaseRTT returns the flow's unloaded round-trip time (propagation plus
// MTU serialization on the forward path and ACK serialization back).
func (f *Flow) BaseRTT() sim.Time { return f.baseRTT }

// Hops returns the number of switches on the flow's path.
func (f *Flow) Hops() int { return f.hops }

// FCT returns the flow completion time measured to last-byte delivery at
// the receiver, valid once finished.
func (f *Flow) FCT() sim.Time { return f.DeliveredAt - f.Spec.Start }

// IdealFCT returns the theoretical minimum completion time on an unloaded
// path (the paper's FCT-slowdown denominator: propagation plus
// serialization): the pipeline fill for the first packet — at its actual
// wire size, which matters for sub-MTU flows — plus the remaining wire
// bytes at the bottleneck bandwidth.
func (f *Flow) IdealFCT() sim.Time {
	nPkts := (f.Spec.Size + int64(f.net.MTU) - 1) / int64(f.net.MTU)
	wire := f.Spec.Size + nPkts*int64(f.net.HeaderBytes)
	first := int64(f.net.MTU + f.net.HeaderBytes)
	if wire < first {
		first = wire
	}
	fill := f.propSum + sim.Time(float64(first)*8*1e12*f.invBwSum)
	return fill + sim.Time(float64(wire-first)*8*1e12/f.minBw)
}

// Slowdown returns achieved FCT divided by IdealFCT, valid once finished.
func (f *Flow) Slowdown() float64 {
	return float64(f.FCT()) / float64(f.IdealFCT())
}

// TakeDeliveredDelta returns payload bytes delivered since the previous
// call (used by goodput/fairness samplers).
func (f *Flow) TakeDeliveredDelta() int64 {
	d := f.delivered - f.deliveredMark
	f.deliveredMark = f.delivered
	return d
}

// start initializes congestion control and begins sending.
func (f *Flow) start() {
	f.started = true
	f.StartedAt = f.eng.Now()
	// Bind the pacing-wakeup callback once (the same pattern as the
	// packet arrive closure and the port txDone callback): every pacing
	// timer the flow ever schedules reuses this one func value, so
	// steady-state scheduling never allocates.
	f.wake = f.onWake
	f.rtoWake = f.onRTO
	f.ctl = f.algo.Init(f.env())
	f.trySend()
}

// onWake is the pacing-timer event body. It runs via the pre-bound f.wake.
func (f *Flow) onWake() {
	f.pending = sim.EventID{}
	f.trySend()
}

// env builds the cc.Env for this flow's algorithm. The callbacks are
// method values and the shard's shared Now binding — per-flow one-time
// cost, with no per-call closure construction afterwards.
func (f *Flow) env() cc.Env {
	return cc.Env{
		LineRateBps: f.host.port.bw,
		BaseRTT:     f.baseRTT,
		MTU:         f.net.MTU,
		Hops:        f.hops,
		Rand:        f.sh.rand,
		Now:         f.sh.nowFn,
		Schedule:    f.scheduleCC,
		SetControl:  f.setControl,
	}
}

// setControl is the cc.Env.SetControl body: timer-driven rate updates
// land here (pre-bound once in env).
func (f *Flow) setControl(c cc.Control) {
	if !f.finished {
		f.ctl = c
		f.trySend()
	}
}

// ccGate gates one scheduled algorithm timer on flow liveness. Gates are
// recycled through Flow.gateFree the moment they fire — before fn runs,
// so a timer that immediately re-schedules itself (DCQCN's alpha and rate
// chains) reuses the same gate forever. run is pre-bound into bound at
// construction; after warm-up a timer tick schedules with zero
// allocations, where the old per-call double closure allocated two
// funcvals per tick.
type ccGate struct {
	f     *Flow
	fn    func()
	bound func() // run, bound once
}

func (g *ccGate) run() {
	f, fn := g.f, g.fn
	g.fn = nil
	f.gateFree = append(f.gateFree, g)
	if !f.finished {
		fn()
	}
}

// scheduleCC is the cc.Env.Schedule body: it runs fn after d unless the
// flow has finished by then. Timers scheduled after the flow finished are
// dropped outright.
func (f *Flow) scheduleCC(d sim.Time, fn func()) {
	if f.finished {
		return
	}
	var g *ccGate
	if m := len(f.gateFree); m > 0 {
		g = f.gateFree[m-1]
		f.gateFree = f.gateFree[:m-1]
	} else {
		g = &ccGate{f: f}
		g.bound = g.run
	}
	g.fn = fn
	f.eng.After(d, g.bound)
}

// trySend releases as many packets as the window and pacer currently
// allow, then schedules a wakeup at the pacing horizon if more payload
// remains and the window is open. It is idempotent: redundant calls are
// harmless.
func (f *Flow) trySend() {
	if f.finished {
		return
	}
	now := f.eng.Now()
	// justSent tracks the packet the previous loop iteration transmitted,
	// the anchor for macro-event train arming (compared by pointer only:
	// a tail-dropped packet is back in the pool and must not be followed).
	var justSent *Packet
	for f.sent < f.Spec.Size {
		if float64(f.inflight) >= f.ctl.WindowBytes {
			return // window closed; an ACK will reopen it
		}
		if now < f.nextSend {
			if f.trainArmed {
				if f.trainAt == f.nextSend {
					return // the armed drain already doubles as this wakeup
				}
				// The pacing horizon moved under an armed train (an RTO
				// rewind advanced nextSend): fall back to a real wakeup,
				// exactly where the unfused path would cancel-and-reschedule.
				f.disarmTrain()
			} else if f.net.MacroEvents && justSent != nil {
				if pt := f.host.port; pt.txPkt == justSent &&
					f.nextSend == now+pt.serialize(int(justSent.Wire)) {
					// Line-rate train: the packet we just cut-through-sent
					// finishes serializing exactly at the pacing horizon, and
					// its drain was the last event scheduled — the wakeup
					// would sit at the same timestamp on the adjacent
					// tie-break sequence, so the drain can run it instead of
					// the engine (see Port.drain). No event is scheduled.
					pt.trainFlow = f
					f.trainArmed = true
					f.trainAt = f.nextSend
					f.sh.wakesElided++
					return
				}
			}
			f.schedule(f.nextSend)
			return
		}
		payload := f.Spec.Size - f.sent
		if payload > int64(f.net.MTU) {
			payload = int64(f.net.MTU)
		}
		p := f.sh.getPacket()
		p.Kind = Data
		p.Flow = f
		p.Src = int32(f.Spec.Src)
		p.Dst = int32(f.Spec.Dst)
		p.Seq = f.sent
		p.side.Payload = int32(payload)
		p.Wire = int32(int(payload) + f.net.HeaderBytes)
		p.side.SentAt = now
		// Stamp the flat path while the Flow is hot in cache; switch hops
		// then forward without touching it (see Packet.path).
		p.path, p.pathEpoch = f.fwdPath, f.pathEpoch
		if p.Seq < f.maxSent {
			f.Retransmits++
			f.sh.retransmits++
		}
		f.sent += payload
		if f.sent > f.maxSent {
			f.maxSent = f.sent
		}
		f.inflight += payload
		f.sh.dataSent++
		if h := f.net.Hooks.OnSend; h != nil {
			h(f, p.Seq, int(payload))
		}
		// Pace the full wire size at the controlled rate.
		gap := f.paceGap(int(p.Wire))
		if f.nextSend < now {
			f.nextSend = now
		}
		f.nextSend += gap
		if f.net.LossRecovery {
			f.rtoDeadline = now + f.rto
			f.armRTO()
		}
		f.host.port.send(p)
		justSent = p
	}
}

// disarmTrain dissolves an armed macro-event train back to ordinary
// scheduling. Safe only while trainArmed (the invariant guarantees the
// uplink's trainFlow is this flow).
func (f *Flow) disarmTrain() {
	f.trainArmed = false
	f.host.port.trainFlow = nil
}

// paceGap returns TransmitTime(wire, f.ctl.RateBps) through the flow's
// one-entry memo. Wire sizes are never zero, so the zero value cannot
// alias a real entry.
func (f *Flow) paceGap(wire int) sim.Time {
	if wire == f.gapWire && f.ctl.RateBps == f.gapRate {
		return f.gapDur
	}
	d := sim.TransmitTime(wire, f.ctl.RateBps)
	f.gapWire, f.gapRate, f.gapDur = wire, f.ctl.RateBps, d
	return d
}

// armRTO ensures a timeout event is scheduled. It is a no-op when one is
// already outstanding: the lazy timer re-checks rtoDeadline when it fires.
func (f *Flow) armRTO() {
	if f.rtoArmed || f.finished {
		return
	}
	f.rtoArmed = true
	f.eng.At(f.rtoDeadline, f.rtoWake)
}

// onRTO is the retransmission-timeout event body (pre-bound in f.rtoWake).
// If progress moved the deadline since this event was scheduled, it
// re-arms at the new deadline; otherwise the outstanding window is
// declared lost and go-back-N resends from the last cumulative ACK.
func (f *Flow) onRTO() {
	f.rtoArmed = false
	if f.finished || f.inflight <= 0 {
		return
	}
	now := f.eng.Now()
	if now < f.rtoDeadline {
		f.armRTO()
		return
	}
	f.Timeouts++
	f.sh.rtoFires++
	// Exponential backoff with a hard ceiling. The ceiling applies even
	// with RTOMax unset: unbounded doubling overflows sim.Time after ~50
	// consecutive timeouts (picoseconds in an int64), turning the next
	// deadline negative — an event scheduled in the past. Check the
	// overflow wrap (<= 0) before comparing against the ceiling: a
	// wrapped-negative rto would pass a plain "> ceiling" test.
	f.rto *= 2
	if f.rto <= 0 || f.rto > rtoBackoffCeiling {
		f.rto = rtoBackoffCeiling
	}
	if max := f.net.RTOMax; max > 0 && f.rto > max {
		f.rto = max
	}
	// Everything past the last cumulative ACK is presumed lost: rewind
	// the send cursor and clear the pacing backlog so recovery starts
	// immediately rather than at the stale pacing horizon.
	f.sent = f.acked
	f.inflight = 0
	f.nextSend = now
	f.rtoDeadline = now + f.rto
	f.trySend()
}

// rtoBackoffCeiling bounds exponential RTO backoff when Network.RTOMax is
// unset. One minute of simulated time is far beyond any useful timeout and
// leaves ~17 more doublings before sim.Time (picoseconds, int64) overflows.
const rtoBackoffCeiling = 60 * sim.Second

func (f *Flow) schedule(at sim.Time) {
	if f.pending.Valid() {
		if f.pendingAt == at {
			return
		}
		f.eng.Cancel(f.pending)
	}
	f.pending = f.eng.At(at, f.wake)
	f.pendingAt = at
}

// onAck processes a cumulative acknowledgement at the sender. Under loss
// the per-flow-FIFO assumption no longer holds: the receiver re-advertises
// its cumulative position for every out-of-sequence arrival, and ACKs for
// data sent before a go-back-N rewind can land after it, so stale and
// duplicate ACKs are normal here rather than impossible.
func (f *Flow) onAck(p *Packet) {
	newly := p.side.AckSeq - f.acked
	if newly <= 0 {
		f.sh.dupAcks++
		return // duplicate or stale cumulative ACK; RTO drives recovery
	}
	f.acked = p.side.AckSeq
	f.inflight -= newly
	if f.inflight < 0 {
		// An ACK covering data resent after a spurious timeout: the
		// original and the retransmit were both counted as sent once but
		// the rewind zeroed inflight in between.
		f.inflight = 0
	}
	if f.acked > f.sent {
		// The rewind presumed data lost that was in fact in flight; skip
		// the send cursor past what the receiver now confirms.
		f.sent = f.acked
	}
	now := f.eng.Now()
	if f.acked >= f.Spec.Size {
		f.finish(now)
		return
	}
	if f.net.LossRecovery {
		// Forward progress: reset backoff and push the timeout out.
		f.rto = f.rtoBase
		f.rtoDeadline = now + f.rto
		f.armRTO()
	}
	f.ctl = f.algo.OnAck(cc.Feedback{
		Now:        now,
		RTT:        now - p.side.SentAt,
		SentAt:     p.side.SentAt,
		AckedBytes: f.acked,
		SentBytes:  f.sent,
		NewlyAcked: int(newly),
		ECE:        p.ECE,
		Hops:       p.side.Hops,
	})
	if h := f.net.Hooks.OnControl; h != nil {
		h(f, f.ctl)
	}
	f.trySend()
}

func (f *Flow) finish(now sim.Time) {
	f.finished = true
	f.FinishedAt = now
	f.net.unfinished.Add(-1)
	if f.pending.Valid() {
		f.eng.Cancel(f.pending)
		f.pending = sim.EventID{}
	}
	if f.trainArmed {
		// A final ACK can land while the previous packet is still
		// serializing with a train armed; the unfused path would cancel
		// the wakeup here, so the drain must not run it either.
		f.disarmTrain()
	}
	if f.net.OnFlowFinish != nil {
		f.net.OnFlowFinish(f)
	}
}
