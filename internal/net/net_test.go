package net

import (
	"math"
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// fixedAlgo is a congestion-control stub holding rate and window constant.
type fixedAlgo struct {
	ctl      cc.Control
	acks     int
	eceCount int
	last     cc.Feedback
}

func (a *fixedAlgo) Name() string           { return "fixed" }
func (a *fixedAlgo) Init(cc.Env) cc.Control { return a.ctl }
func (a *fixedAlgo) OnAck(fb cc.Feedback) cc.Control {
	a.acks++
	if fb.ECE {
		a.eceCount++
	}
	a.last = fb
	return a.ctl
}

const (
	gbps100 = 100e9
	usec    = sim.Microsecond
)

// star builds n hosts on one switch, 100G links, 1us propagation.
func star(t *testing.T, nHosts int, seed int64) (*sim.Engine, *Network, *Switch) {
	t.Helper()
	eng := sim.NewEngine()
	nw := New(eng, seed)
	hosts := make([]*Host, nHosts)
	for i := range hosts {
		hosts[i] = nw.AddHost() // ids 0..nHosts-1
	}
	sw := nw.AddSwitch()
	for _, h := range hosts {
		swPort, _ := nw.Connect(sw, h, gbps100, 1*usec)
		sw.AddRoute(h.NodeID(), swPort)
	}
	return eng, nw, sw
}

func TestSingleFlowTiming(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 1000, Start: 0}, algo)
	eng.Run()
	if !f.Finished() {
		t.Fatal("flow did not finish")
	}
	// One 1048 B data packet: host serialization 83.84ns + 1us prop +
	// switch serialization 83.84ns + 1us prop; ACK (64 B): 5.12ns + 1us +
	// 5.12ns + 1us. Total 4177.92 ns.
	ser := sim.TransmitTime(1048, gbps100)
	ackSer := sim.TransmitTime(64, gbps100)
	want := 2*ser + 2*ackSer + 4*usec
	if f.FinishedAt != want {
		t.Fatalf("FCT = %v, want %v", f.FinishedAt, want)
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPacketFlowDelivery(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	const size = 1_000_000
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: size, Start: 0}, algo)
	eng.Run()
	if f.Delivered() != size || f.Acked() != size {
		t.Fatalf("delivered=%d acked=%d, want %d", f.Delivered(), f.Acked(), size)
	}
	// 1 MB at ~100G (with 4.8% header overhead) takes ~83.84us plus the
	// path delay; sanity-check within 10%.
	got := f.FCT().Seconds()
	ideal := float64(size+48*1000) * 8 / gbps100
	if got < ideal || got > ideal*1.1+5e-6 {
		t.Fatalf("FCT = %v s, want ~%v s", got, ideal)
	}
	// One ACK per packet reaches the algorithm, except the final one,
	// which completes the flow instead of feeding congestion control.
	if algo.acks != size/1000-1 {
		t.Fatalf("acks = %d, want %d (one per packet, minus the final)", algo.acks, size/1000-1)
	}
}

func TestLastPacketPartial(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 2500, Start: 0}, algo)
	eng.Run()
	if f.Delivered() != 2500 {
		t.Fatalf("delivered = %d, want 2500 (2 full + 1 partial packet)", f.Delivered())
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	// Window of 2 packets: at most 2000 payload bytes in flight.
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 2000, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 100_000, Start: 0}, algo)
	maxInflight := int64(0)
	var watch func()
	watch = func() {
		if f.inflight > maxInflight {
			maxInflight = f.inflight
		}
		if !f.finished {
			eng.After(100*sim.Nanosecond, watch)
		}
	}
	eng.At(0, watch)
	eng.Run()
	if maxInflight > 2000 {
		t.Fatalf("inflight reached %d, window is 2000", maxInflight)
	}
	if !f.Finished() {
		t.Fatal("flow did not finish")
	}
}

func TestPacingLimitsRate(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	// Pace at 10G with an open window: 1 MB should take ~10x longer than
	// at line rate.
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: 10e9}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 1_000_000, Start: 0}, algo)
	eng.Run()
	ideal := float64(1_000_000+48*1000) * 8 / 10e9
	got := f.FCT().Seconds()
	if math.Abs(got-ideal) > ideal*0.05 {
		t.Fatalf("paced FCT = %v s, want ~%v s", got, ideal)
	}
}

func TestQueueBuildsAtBottleneck(t *testing.T) {
	eng, nw, sw := star(t, 3, 1)
	// Two line-rate senders into one receiver: the receiver's switch port
	// queue must grow to roughly the overload times duration.
	a1 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	a2 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	nw.AddFlow(FlowSpec{ID: 1, Src: 1, Dst: 0, Size: 500_000, Start: 0}, a1)
	nw.AddFlow(FlowSpec{ID: 2, Src: 2, Dst: 0, Size: 500_000, Start: 0}, a2)
	dstPort := sw.Ports()[0] // port toward host 0
	peak := int64(0)
	var watch func()
	watch = func() {
		if q := dstPort.QueueBytes(); q > peak {
			peak = q
		}
		if !nw.AllFinished() {
			eng.After(500*sim.Nanosecond, watch)
		}
	}
	eng.At(0, watch)
	eng.Run()
	// 2x overload for the time to send 500KB at 100G each: queue peaks
	// near 500KB (one flow's worth).
	if peak < 300_000 || peak > 600_000 {
		t.Fatalf("bottleneck queue peak = %d, want ~500KB", peak)
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestINTTelemetryStamped(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 50_000, Start: 0}, algo)
	eng.Run()
	fb := algo.last
	if len(fb.Hops) != 1 {
		t.Fatalf("INT stack depth = %d, want 1 (single switch)", len(fb.Hops))
	}
	h := fb.Hops[0]
	if h.RateBps != gbps100 {
		t.Fatalf("INT rate = %v, want 100G", h.RateBps)
	}
	if h.TxBytes == 0 || h.TS == 0 {
		t.Fatalf("INT counters not stamped: %+v", h)
	}
}

func TestRTTMeasuredAgainstBase(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1000, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 10_000, Start: 0}, algo)
	eng.Run()
	// Window of one packet: no self-queueing, so every measured RTT must
	// equal the base RTT exactly.
	if algo.last.RTT != f.BaseRTT() {
		t.Fatalf("RTT = %v, want base %v", algo.last.RTT, f.BaseRTT())
	}
}

func TestPathInfoStar(t *testing.T) {
	_, nw, _ := star(t, 2, 1)
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 1000, Start: 0}, algo)
	if f.Hops() != 1 {
		t.Fatalf("hops = %d, want 1", f.Hops())
	}
	want := 4*usec + 2*sim.TransmitTime(1048, gbps100) + 2*sim.TransmitTime(64, gbps100)
	if f.BaseRTT() != want {
		t.Fatalf("baseRTT = %v, want %v", f.BaseRTT(), want)
	}
}

func TestECNMarking(t *testing.T) {
	eng, nw, sw := star(t, 3, 1)
	sw.Ports()[0].SetRED(REDConfig{KMinBytes: 10_000, KMaxBytes: 40_000, PMax: 0.2})
	a1 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	a2 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	nw.AddFlow(FlowSpec{ID: 1, Src: 1, Dst: 0, Size: 500_000, Start: 0}, a1)
	nw.AddFlow(FlowSpec{ID: 2, Src: 2, Dst: 0, Size: 500_000, Start: 0}, a2)
	eng.Run()
	ece := a1.eceCount + a2.eceCount
	if ece == 0 {
		t.Fatal("RED never marked despite a 2x overload past KMax")
	}
	// The queue spends most of the run far above KMax, where marking is
	// certain, so the majority of ACKs must carry ECE; but the ramp-up
	// below KMin must leave some unmarked.
	total := a1.acks + a2.acks
	if ece < total/3 || ece >= total {
		t.Fatalf("ece=%d of %d acks; want a majority but not all", ece, total)
	}
}

func TestCNPIntervalRateLimitsECE(t *testing.T) {
	run := func(interval sim.Time) int {
		eng := sim.NewEngine()
		nw := New(eng, 1)
		nw.CNPInterval = interval
		hosts := make([]*Host, 3)
		for i := range hosts {
			hosts[i] = nw.AddHost()
		}
		sw := nw.AddSwitch()
		for _, h := range hosts {
			swPort, _ := nw.Connect(sw, h, gbps100, 1*usec)
			sw.AddRoute(h.NodeID(), swPort)
		}
		// Mark every packet above a tiny threshold.
		sw.Ports()[0].SetRED(REDConfig{KMinBytes: 1, KMaxBytes: 2, PMax: 1})
		a1 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
		a2 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
		nw.AddFlow(FlowSpec{ID: 1, Src: 1, Dst: 0, Size: 300_000, Start: 0}, a1)
		nw.AddFlow(FlowSpec{ID: 2, Src: 2, Dst: 0, Size: 300_000, Start: 0}, a2)
		eng.Run()
		return a1.eceCount + a2.eceCount
	}
	every := run(0)
	limited := run(20 * usec)
	if limited >= every {
		t.Fatalf("CNP interval did not reduce ECE count: %d vs %d", limited, every)
	}
	if limited == 0 {
		t.Fatal("no CNPs at all with interval set")
	}
}

func TestPFCPausesUpstream(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 1)
	nw.PFCPauseBytes = 50_000
	nw.PFCResumeBytes = 25_000
	// Dumbbell: h0 -- sw1 -- sw2 -- h1 with a 10G bottleneck between the
	// switches so sw2's ingress from sw1... actually the queue builds at
	// sw1's egress toward sw2; PFC should pause h0's uplink.
	h0 := nw.AddHost()
	h1 := nw.AddHost()
	sw1 := nw.AddSwitch()
	sw2 := nw.AddSwitch()
	s1h, _ := nw.Connect(sw1, h0, gbps100, 1*usec)
	s1s2, s2s1 := nw.Connect(sw1, sw2, 10e9, 1*usec)
	s2h, _ := nw.Connect(sw2, h1, gbps100, 1*usec)
	sw1.AddRoute(h0.NodeID(), s1h)
	sw1.AddRoute(h1.NodeID(), s1s2)
	sw2.AddRoute(h0.NodeID(), s2s1)
	sw2.AddRoute(h1.NodeID(), s2h)

	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: h0.NodeID(), Dst: h1.NodeID(), Size: 2_000_000, Start: 0}, algo)

	peak := int64(0)
	sawPause := false
	var watch func()
	watch = func() {
		if q := s1s2.QueueBytes(); q > peak {
			peak = q
		}
		if h0.port.pausedBy {
			sawPause = true
		}
		if !nw.AllFinished() {
			eng.After(1*usec, watch)
		}
	}
	eng.At(0, watch)
	eng.Run()
	if !sawPause {
		t.Fatal("PFC never paused the host uplink")
	}
	// With PFC the switch buffer stays bounded near the pause threshold
	// (plus one BDP of in-flight slack), far below the 2 MB the flow
	// would otherwise dump at a 10:1 speed mismatch.
	if peak > 200_000 {
		t.Fatalf("sw1->sw2 queue peaked at %d bytes despite PFC", peak)
	}
	if !f.Finished() {
		t.Fatal("flow did not finish under PFC")
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	counts := make(map[int]int)
	for flow := 0; flow < 1000; flow++ {
		counts[ecmpHash(flow, 7, 4)]++
	}
	for i := 0; i < 4; i++ {
		if counts[i] < 150 {
			t.Fatalf("ECMP member %d got %d of 1000 flows; want roughly even: %v",
				i, counts[i], counts)
		}
	}
	// Deterministic.
	if ecmpHash(42, 7, 4) != ecmpHash(42, 7, 4) {
		t.Fatal("ecmpHash not deterministic")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []sim.Time {
		eng, nw, sw := star(t, 4, 99)
		sw.Ports()[0].SetRED(REDConfig{KMinBytes: 10_000, KMaxBytes: 100_000, PMax: 0.2})
		for i := 1; i <= 3; i++ {
			algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 100_000, RateBps: gbps100}}
			nw.AddFlow(FlowSpec{ID: i, Src: i, Dst: 0, Size: 300_000,
				Start: sim.Time(i) * 5 * usec}, algo)
		}
		eng.Run()
		var fct []sim.Time
		for _, f := range nw.Flows() {
			fct = append(fct, f.FinishedAt)
		}
		return fct
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic: flow %d finished %v vs %v", i, a[i], b[i])
		}
	}
}

func TestQueueRing(t *testing.T) {
	var q queue
	ps := make([]*Packet, 100)
	for i := range ps {
		ps[i] = &Packet{Wire: int32(i + 1)}
	}
	// Interleaved push/pop across growth boundaries preserves FIFO.
	next := 0
	for i := 0; i < 100; i++ {
		q.Push(ps[i])
		if i%3 == 2 {
			got := q.Pop()
			if got != ps[next] {
				t.Fatalf("FIFO violated at %d", i)
			}
			next++
		}
	}
	for q.Len() > 0 {
		if got := q.Pop(); got != ps[next] {
			t.Fatalf("FIFO violated while draining")
		}
		next++
	}
	if q.Bytes() != 0 {
		t.Fatalf("bytes = %d after drain, want 0", q.Bytes())
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty returned a packet")
	}
}

func TestQueuePushFront(t *testing.T) {
	var q queue
	a, b, c := &Packet{Wire: 1}, &Packet{Wire: 2}, &Packet{Wire: 3}
	q.Push(a)
	q.Push(b)
	q.PushFront(c)
	if got := q.Pop(); got != c {
		t.Fatal("PushFront packet not at head")
	}
	if q.Pop() != a || q.Pop() != b {
		t.Fatal("FIFO order broken after PushFront")
	}
}

func TestQueuePeak(t *testing.T) {
	var q queue
	q.Push(&Packet{Wire: 100})
	q.Push(&Packet{Wire: 100})
	q.Pop()
	if q.Peak() != 200 {
		t.Fatalf("peak = %d, want 200", q.Peak())
	}
	q.PeakReset()
	if q.Peak() != 100 {
		t.Fatalf("peak after reset = %d, want current 100", q.Peak())
	}
}

func TestAddFlowValidation(t *testing.T) {
	_, nw, _ := star(t, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size flow must panic")
		}
	}()
	nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 0}, &fixedAlgo{})
}
