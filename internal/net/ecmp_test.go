package net

import (
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// leafSpine builds a two-tier Clos: nTors ToRs with hostsPerTor hosts
// each, fully meshed to nSpines spines. ToRs reach remote hosts through an
// ECMP group over every uplink; spines reach each host through the one
// downlink to its ToR.
func leafSpine(t *testing.T, nTors, hostsPerTor, nSpines int) (*sim.Engine, *Network, []*Host, []*Switch, []*Switch) {
	t.Helper()
	eng := sim.NewEngine()
	nw := New(eng, 1)
	tors := make([]*Switch, nTors)
	spines := make([]*Switch, nSpines)
	var hosts []*Host
	hostPorts := make(map[int]*Port) // host id -> its ToR's downlink
	for i := range tors {
		tors[i] = nw.AddSwitch()
	}
	for i := range spines {
		spines[i] = nw.AddSwitch()
	}
	uplinks := make([][]*Port, nTors)     // tor -> spine-facing ports
	downlinks := make([][]*Port, nSpines) // spine -> tor-facing ports, by tor
	for ti, tor := range tors {
		for _, sp := range spines {
			up, down := nw.Connect(tor, sp, gbps100, usec)
			uplinks[ti] = append(uplinks[ti], up)
			downlinks[ti] = append(downlinks[ti], down)
		}
	}
	for ti, tor := range tors {
		for h := 0; h < hostsPerTor; h++ {
			host := nw.AddHost()
			hosts = append(hosts, host)
			tp, _ := nw.Connect(tor, host, gbps100, usec)
			hostPorts[host.NodeID()] = tp
			tor.AddRoute(host.NodeID(), tp)
			for si := range spines {
				spines[si].AddRoute(host.NodeID(), downlinks[ti][si])
			}
		}
	}
	// Remote-host ECMP groups, installed after every host exists.
	for ti, tor := range tors {
		for _, host := range hosts {
			if hostPorts[host.NodeID()].owner == tor {
				continue
			}
			_ = ti
			tor.AddRoute(host.NodeID(), uplinks[ti]...)
		}
	}
	return eng, nw, hosts, tors, spines
}

// TestECMPHashUniformity bounds the per-port deviation of the flow hash:
// over many flow ids each group member must receive close to its fair
// share, or paper-scale fat-trees would systematically overload links.
func TestECMPHashUniformity(t *testing.T) {
	const flows = 100_000
	for _, n := range []int{2, 4, 8, 16} {
		for _, swID := range []int{0, 7, 129} {
			counts := make([]int, n)
			for id := 0; id < flows; id++ {
				j := ecmpHash(id, swID, n)
				if j < 0 || j >= n {
					t.Fatalf("ecmpHash(%d,%d,%d) = %d out of range", id, swID, n, j)
				}
				counts[j]++
			}
			mean := float64(flows) / float64(n)
			for j, c := range counts {
				dev := (float64(c) - mean) / mean
				if dev < -0.05 || dev > 0.05 {
					t.Fatalf("n=%d sw=%d port %d: count %d deviates %.1f%% from mean %.0f",
						n, swID, j, c, dev*100, mean)
				}
			}
		}
	}
}

// TestECMPHashLayerDecorrelation checks that consecutive switch layers make
// independent choices for the same flow: if layer choices were correlated,
// a fat-tree's spine layer would see only a fraction of its paths used.
func TestECMPHashLayerDecorrelation(t *testing.T) {
	const flows = 80_000
	const n = 4
	joint := make([]int, n*n)
	for id := 0; id < flows; id++ {
		a := ecmpHash(id, 3, n)
		b := ecmpHash(id, 11, n)
		joint[a*n+b]++
	}
	mean := float64(flows) / float64(n*n)
	for k, c := range joint {
		dev := (float64(c) - mean) / mean
		if dev < -0.10 || dev > 0.10 {
			t.Fatalf("combo (%d,%d): count %d deviates %.1f%% from mean %.0f",
				k/n, k%n, c, dev*100, mean)
		}
	}
}

// walkRoute replays the per-hop reference lookup from src toward dst and
// returns the egress port chosen at every switch.
func walkRoute(t *testing.T, from *Host, dst, flowID int) []*Port {
	t.Helper()
	var path []*Port
	port := from.port
	for steps := 0; ; steps++ {
		if steps > 64 {
			t.Fatalf("routing loop toward host %d", dst)
		}
		switch node := port.peer.owner.(type) {
		case *Host:
			if node.id != dst {
				t.Fatalf("walk reached host %d, want %d", node.id, dst)
			}
			return path
		case *Switch:
			out := node.lookupRoute(dst, flowID)
			if out == nil {
				t.Fatalf("switch %d: no route to host %d", node.id, dst)
			}
			path = append(path, out)
			port = out
		}
	}
}

// TestFlatPathMatchesRoute is the regression tying the two forwarding
// implementations together: the path pre-resolved at AddFlow (and stamped
// onto every packet) must be bit-identical to what the per-hop reference
// lookup would choose, for data and for ACKs, across many flow ids.
func TestFlatPathMatchesRoute(t *testing.T) {
	eng, nw, hosts, _, _ := leafSpine(t, 4, 4, 4)
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	var flows []*Flow
	for id := 1; id <= 200; id++ {
		src := hosts[id%len(hosts)]
		dst := hosts[(id*7+5)%len(hosts)]
		if src == dst {
			continue
		}
		flows = append(flows, nw.AddFlow(FlowSpec{
			ID: id, Src: src.NodeID(), Dst: dst.NodeID(), Size: 4000,
		}, algo))
	}
	for _, f := range flows {
		if f.pathEpoch != nw.routeEpoch {
			t.Fatalf("flow %d: pathEpoch %d != routeEpoch %d (flat path not armed)",
				f.Spec.ID, f.pathEpoch, nw.routeEpoch)
		}
		src, dst := nw.hostByID(f.Spec.Src), nw.hostByID(f.Spec.Dst)
		wantFwd := walkRoute(t, src, f.Spec.Dst, f.Spec.ID)
		wantRev := walkRoute(t, dst, f.Spec.Src, f.Spec.ID)
		if len(f.fwdPath) != len(wantFwd) {
			t.Fatalf("flow %d: fwdPath len %d, want %d", f.Spec.ID, len(f.fwdPath), len(wantFwd))
		}
		for i := range wantFwd {
			if f.fwdPath[i] != wantFwd[i] {
				t.Fatalf("flow %d: fwdPath[%d] differs from reference route()", f.Spec.ID, i)
			}
		}
		if len(f.revPath) != len(wantRev) {
			t.Fatalf("flow %d: revPath len %d, want %d", f.Spec.ID, len(f.revPath), len(wantRev))
		}
		for i := range wantRev {
			if f.revPath[i] != wantRev[i] {
				t.Fatalf("flow %d: revPath[%d] differs from reference route()", f.Spec.ID, i)
			}
		}
	}
	// The paths must also deliver: run the traffic to completion.
	eng.Run()
	for _, f := range flows {
		if !f.Finished() {
			t.Fatalf("flow %d did not finish over its flat path", f.Spec.ID)
		}
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFlatPathStaleEpochFallsBack: a route installed after AddFlow bumps
// the epoch, so stamped paths go stale and forwarding must fall back to
// per-hop lookups rather than trusting a pre-change path.
func TestFlatPathStaleEpochFallsBack(t *testing.T) {
	eng, nw, hosts, tors, _ := leafSpine(t, 2, 2, 2)
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{
		ID: 1, Src: hosts[0].NodeID(), Dst: hosts[2].NodeID(), Size: 20_000,
	}, algo)
	// Re-install an existing route: contents identical, epoch bumped.
	tors[0].AddRoute(hosts[0].NodeID(), hosts[0].port.peer)
	if f.pathEpoch == nw.routeEpoch {
		t.Fatal("epoch bump not visible to the flow")
	}
	eng.Run()
	if !f.Finished() {
		t.Fatal("flow with stale path epoch did not finish")
	}
}

func TestHostByID(t *testing.T) {
	_, nw, hosts, tors, _ := leafSpine(t, 2, 2, 2)
	for _, h := range hosts {
		if got := nw.hostByID(h.NodeID()); got != h {
			t.Fatalf("hostByID(%d) returned wrong host", h.NodeID())
		}
	}
	for _, bad := range []int{-1, tors[0].NodeID(), 1 << 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("hostByID(%d) did not panic", bad)
				}
			}()
			nw.hostByID(bad)
		}()
	}
}

func TestProbePath(t *testing.T) {
	_, nw, hosts, _, _ := leafSpine(t, 2, 2, 2)
	src, dst := hosts[0], hosts[3]
	hops, baseRTT, minBw, err := nw.ProbePath(FlowSpec{ID: 9, Src: src.NodeID(), Dst: dst.NodeID()})
	if err != nil {
		t.Fatalf("ProbePath: %v", err)
	}
	if hops != 3 { // tor - spine - tor
		t.Fatalf("hops = %d, want 3", hops)
	}
	if baseRTT <= 0 || minBw != gbps100 {
		t.Fatalf("baseRTT=%v minBw=%v", baseRTT, minBw)
	}

	// Unknown source host: an error, not a panic.
	if _, _, _, err := nw.ProbePath(FlowSpec{ID: 9, Src: 1 << 20, Dst: dst.NodeID()}); err == nil {
		t.Fatal("ProbePath with unknown src did not error")
	}
	// Unroutable destination (a switch id): an error, not a panic.
	if _, _, _, err := nw.ProbePath(FlowSpec{ID: 9, Src: src.NodeID(), Dst: 1 << 20}); err == nil {
		t.Fatal("ProbePath with unroutable dst did not error")
	}

	// Probing reuses the network-owned scratch flow: steady state
	// allocates nothing.
	spec := FlowSpec{ID: 9, Src: src.NodeID(), Dst: dst.NodeID()}
	nw.ProbePath(spec) // warm the path scratch
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, _, err := nw.ProbePath(spec); err != nil {
			t.Fatalf("ProbePath: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ProbePath allocates %v objects per probe, want 0", allocs)
	}
}
