package net

import (
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// chain builds h0 - sw0 - sw1 - ... - sw(n-1) - h1 with the given
// per-link bandwidths (len n+1: host uplink, inter-switch links, host
// downlink).
func chain(t *testing.T, bws []float64) (*sim.Engine, *Network, []*Switch) {
	t.Helper()
	eng := sim.NewEngine()
	nw := New(eng, 1)
	h0, h1 := nw.AddHost(), nw.AddHost()
	n := len(bws) - 1
	sws := make([]*Switch, n)
	for i := range sws {
		sws[i] = nw.AddSwitch()
	}
	first, _ := nw.Connect(sws[0], h0, bws[0], usec)
	sws[0].AddRoute(h0.NodeID(), first)
	for i := 0; i < n-1; i++ {
		up, down := nw.Connect(sws[i], sws[i+1], bws[i+1], usec)
		sws[i].AddRoute(h1.NodeID(), up)
		sws[i+1].AddRoute(h0.NodeID(), down)
	}
	last, _ := nw.Connect(sws[n-1], h1, bws[n], usec)
	sws[n-1].AddRoute(h1.NodeID(), last)
	if n == 1 {
		// Single switch: routes to both hosts already set above.
		_ = first
	}
	return eng, nw, sws
}

func TestMultiHopINTStack(t *testing.T) {
	eng, nw, _ := chain(t, []float64{gbps100, 400e9, 400e9, gbps100})
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 50_000}, algo)
	eng.Run()
	hops := algo.last.Hops
	if len(hops) != 3 {
		t.Fatalf("INT stack depth = %d, want 3 switches", len(hops))
	}
	// Hop order must be path order: first hop is the 100G... the first
	// switch egress toward the next is 400G, then 400G, then the last
	// switch egress toward the host at 100G.
	wantRates := []float64{400e9, 400e9, gbps100}
	for i, h := range hops {
		if h.RateBps != wantRates[i] {
			t.Fatalf("hop %d rate = %v, want %v", i, h.RateBps, wantRates[i])
		}
		if h.TxBytes == 0 {
			t.Fatalf("hop %d txBytes not stamped", i)
		}
	}
}

func TestBottleneckMidPath(t *testing.T) {
	// 100G hosts, 10G middle link: the queue must form at the switch
	// whose egress is the 10G link, and the flow's ideal FCT must use
	// the 10G bottleneck.
	eng, nw, sws := chain(t, []float64{gbps100, 10e9, gbps100})
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 1_000_000}, algo)

	var bottleneck *Port
	for _, p := range sws[0].Ports() {
		if p.Bandwidth() == 10e9 {
			bottleneck = p
		}
	}
	peak := int64(0)
	var watch func()
	watch = func() {
		if q := bottleneck.QueueBytes(); q > peak {
			peak = q
		}
		if !nw.AllFinished() {
			eng.After(usec, watch)
		}
	}
	eng.At(0, watch)
	eng.Run()
	if peak < 500_000 {
		t.Fatalf("bottleneck queue peaked at %d, want most of the 1MB flow", peak)
	}
	ideal := f.IdealFCT().Seconds()
	atTenG := float64(1_000_000+48*1000) * 8 / 10e9
	if ideal < atTenG {
		t.Fatalf("ideal FCT %v below the 10G serialization bound %v", ideal, atTenG)
	}
	// Achieved ~ ideal because nothing else competes.
	if f.Slowdown() > 1.05 {
		t.Fatalf("uncontended slowdown through bottleneck = %v", f.Slowdown())
	}
}

func TestPFCCascadesUpstream(t *testing.T) {
	// Three-switch chain with a slow final link: PFC pressure must
	// propagate hop by hop back to the sender, keeping every switch
	// queue bounded near the pause threshold.
	eng := sim.NewEngine()
	nw := New(eng, 1)
	nw.PFCPauseBytes = 40_000
	nw.PFCResumeBytes = 20_000
	h0, h1 := nw.AddHost(), nw.AddHost()
	sw0, sw1, sw2 := nw.AddSwitch(), nw.AddSwitch(), nw.AddSwitch()
	p0, _ := nw.Connect(sw0, h0, gbps100, usec)
	up01, down10 := nw.Connect(sw0, sw1, gbps100, usec)
	up12, down21 := nw.Connect(sw1, sw2, gbps100, usec)
	p2, _ := nw.Connect(sw2, h1, 5e9, usec) // slow egress
	sw0.AddRoute(h0.NodeID(), p0)
	sw0.AddRoute(h1.NodeID(), up01)
	sw1.AddRoute(h0.NodeID(), down10)
	sw1.AddRoute(h1.NodeID(), up12)
	sw2.AddRoute(h0.NodeID(), down21)
	sw2.AddRoute(h1.NodeID(), p2)

	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: h0.NodeID(), Dst: h1.NodeID(), Size: 1_000_000}, algo)

	peak := map[string]int64{}
	track := func(name string, p *Port) {
		if q := p.QueueBytes(); q > peak[name] {
			peak[name] = q
		}
	}
	var watch func()
	watch = func() {
		track("sw2->h1", p2)
		track("sw1->sw2", up12)
		track("sw0->sw1", up01)
		if !nw.AllFinished() {
			eng.After(usec, watch)
		}
	}
	eng.At(0, watch)
	eng.Run()
	if !f.Finished() {
		t.Fatal("flow did not finish under cascading PFC")
	}
	// Without PFC the slow egress would absorb nearly the whole 1MB.
	// With it, every switch holds roughly pause-threshold + one
	// in-flight BDP.
	for name, q := range peak {
		if q > 150_000 {
			t.Fatalf("%s queue peaked at %d despite PFC cascade", name, q)
		}
	}
	if peak["sw1->sw2"] < 20_000 || peak["sw0->sw1"] < 20_000 {
		t.Fatalf("backpressure did not propagate upstream: %v", peak)
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestBidirectionalFlows(t *testing.T) {
	// Flows in both directions between the same pair share links with
	// their reverse-path ACK traffic; both must finish and conserve.
	eng, nw, _ := star(t, 2, 3)
	a1 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	a2 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	f1 := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 1_000_000}, a1)
	f2 := nw.AddFlow(FlowSpec{ID: 2, Src: 1, Dst: 0, Size: 1_000_000}, a2)
	eng.Run()
	if !f1.Finished() || !f2.Finished() {
		t.Fatal("bidirectional flows did not finish")
	}
	// ACK overhead steals a little bandwidth, but each direction is
	// otherwise uncontended: slowdowns near 1.
	if f1.Slowdown() > 1.1 || f2.Slowdown() > 1.1 {
		t.Fatalf("bidirectional slowdowns %v / %v, want ~1", f1.Slowdown(), f2.Slowdown())
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestManyFlowsSameSourceSharePacing(t *testing.T) {
	// Four flows from one host to four receivers each pace at line rate;
	// the shared NIC serializes them so each gets ~1/4 goodput.
	eng, nw, _ := star(t, 5, 1)
	var flows []*Flow
	for i := 1; i <= 4; i++ {
		algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
		flows = append(flows, nw.AddFlow(FlowSpec{ID: i, Src: 0, Dst: i, Size: 500_000}, algo))
	}
	eng.Run()
	for _, f := range flows {
		if !f.Finished() {
			t.Fatal("flow did not finish")
		}
		if f.Slowdown() < 3 || f.Slowdown() > 5 {
			t.Fatalf("flow %d slowdown = %v, want ~4 (quarter of the NIC)",
				f.Spec.ID, f.Slowdown())
		}
	}
}

func TestWindowShrinkMidFlight(t *testing.T) {
	// An algorithm that collapses its window after 50 ACKs: the sender
	// must stop releasing packets until inflight drains below the new
	// window, and still finish.
	eng, nw, _ := star(t, 2, 1)
	algo := &shrinkAlgo{}
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 500_000}, algo)
	eng.Run()
	if !f.Finished() {
		t.Fatal("flow did not finish after window shrink")
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

type shrinkAlgo struct{ acks int }

func (a *shrinkAlgo) Name() string { return "shrink" }
func (a *shrinkAlgo) Init(cc.Env) cc.Control {
	return cc.Control{WindowBytes: 100_000, RateBps: gbps100}
}
func (a *shrinkAlgo) OnAck(cc.Feedback) cc.Control {
	a.acks++
	if a.acks > 50 {
		return cc.Control{WindowBytes: 2_000, RateBps: gbps100}
	}
	return cc.Control{WindowBytes: 100_000, RateBps: gbps100}
}
