package net

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// Network assembles hosts, switches, links and flows over a sim.Engine.
// Construction order: create nodes, Connect them, add switch routes,
// optionally Shard for parallel execution, then AddFlow. The network is
// deterministic for a fixed (seed, shard count): unsharded it is
// single-threaded; sharded it runs one goroutine per shard under
// sim.Parallel with all mutable execution state partitioned (see shard).
type Network struct {
	Eng  *sim.Engine
	seed int64

	// MTU is the payload bytes per full data packet (1000, as in the
	// paper's fluid model and the HPCC artifact).
	MTU int
	// HeaderBytes is added to every data packet on the wire.
	HeaderBytes int
	// AckBytes is the wire size of an acknowledgement.
	AckBytes int

	// PFCPauseBytes enables priority flow control when positive: an
	// ingress port that has at least this many bytes buffered in the node
	// pauses its upstream sender. Zero (the default) disables PFC;
	// queues are unbounded and the network is lossless by construction.
	PFCPauseBytes int64
	// PFCResumeBytes is the occupancy at which a paused upstream resumes.
	PFCResumeBytes int64

	// CNPInterval rate-limits congestion echoes per flow at the receiver
	// (DCQCN's CNP timer). Zero echoes every ECN-marked packet.
	CNPInterval sim.Time

	// AckCoalesce enables receiver-side ACK coalescing: when a data packet
	// arrives while an earlier ACK for the same flow is still sitting
	// un-serialized in the destination host's uplink queue, the receiver
	// updates that queued ACK in place — advancing its cumulative AckSeq,
	// replacing the echoed telemetry and timestamp with the newest sample,
	// and OR-ing in the ECE bit under the CNP policy — instead of
	// generating another control packet. This removes the serialization,
	// per-hop forwarding, and sender-processing events of every merged ACK
	// at the cost of coarser per-ACK feedback for the congestion-control
	// algorithms (see DESIGN.md, "Receiver ACK coalescing"). Off by
	// default: per-packet ACKs are the paper's (ns-3/HPCC-artifact) model
	// and keep recorded goldens bit-identical.
	AckCoalesce bool

	// MacroEvents coarsens the per-packet event cadence on uncontended
	// sender uplinks: when a flow pacing at exactly line rate has just
	// cut-through-transmitted a packet and its next send lands precisely
	// when that packet finishes serializing, the pacing wakeup is not
	// scheduled as its own engine event — the port's drain event runs the
	// wakeup body instead (see Port.trainFlow). A back-to-back packet
	// train then rides a single chain of drain events with zero pacing
	// events, dissolving back to real wakeups the moment the aggregate
	// assumption breaks (competing traffic, PFC pause, a tail drop, an
	// RTO rewind, flow completion). The elision is exact — the elided
	// wakeup would have been the very next event in the ladder (same
	// timestamp, adjacent tie-break sequence), so execution order and all
	// results are bit-identical with the flag off; only engine event
	// counts differ (see DESIGN.md, "Macro events"). Off by default so
	// recorded manifests keep their historical event counts.
	MacroEvents bool

	// BufferBytes, when positive, caps every egress queue: a packet whose
	// wire bytes would push the queue past the limit is tail-dropped
	// (PFC control frames are exempt — dropping them would deadlock the
	// fabric). Zero keeps the historical unbounded-queue behavior.
	// Per-port overrides via Port.SetBuffer take precedence.
	BufferBytes int64

	// LossRecovery arms the sender-side recovery path: per-flow RTO with
	// exponential backoff and go-back-N resend from the last cumulative
	// ACK. It must be on for any run that can drop packets (finite
	// buffers, fault injection, link flaps), and stays off by default so
	// lossless runs schedule no extra events and remain bit-identical
	// with earlier versions.
	LossRecovery bool
	// RTOMin / RTOMax bound the retransmission timeout. A flow's initial
	// RTO is 4*baseRTT clamped into [RTOMin, RTOMax]; backoff doubles it
	// up to RTOMax. New fills in defaults (100µs / 10ms).
	RTOMin sim.Time
	RTOMax sim.Time

	// DropDataProb / DropAckProb inject random wire loss: each data/ACK
	// packet completing serialization on any link is dropped with the
	// given probability. Draws come from faultRand, a PRNG separate from
	// the main stream, so enabling faults does not perturb ECN or
	// congestion-control randomness for the same seed.
	DropDataProb float64
	DropAckProb  float64
	// DropFilter, when set, is consulted per packet after the random
	// draws (data/ACK only; seq is Seq for data, AckSeq for ACKs).
	// Deterministic targeted-loss tests use it to kill exact packets.
	DropFilter func(kind Kind, flowID int, seq int64) bool

	// OnFlowFinish, when set, is invoked as each flow completes. On a
	// sharded network it fires on the finishing flow's worker goroutine,
	// so callbacks used with Shard(k > 1) must be concurrency-safe
	// (experiment harnesses collect flow records after the run instead).
	OnFlowFinish func(*Flow)

	// Hooks are optional per-event observers (all nil by default; a nil
	// hook costs one branch on the hot path). internal/trace attaches
	// recorders here. The same sharding caveat as OnFlowFinish applies.
	Hooks Hooks

	hosts      []*Host
	hostByNode []*Host // node id -> host (nil for switch ids); O(1) hostByID
	switches   []*Switch
	flows      []*Flow
	nextID     int
	// unfinished counts flows added and not yet finished (AllFinished is
	// O(1)). Atomic because sharded runs decrement it from worker
	// goroutines and read it at epoch barriers; on amd64 the uncontended
	// load/add cost is indistinguishable from the plain int it replaced.
	unfinished atomic.Int64

	// Execution shards: shards[0] always exists and wraps Eng (the
	// sequential simulator is the one-shard special case); Shard(k > 1)
	// appends the rest, builds mail, and derives the parallel lookahead:
	// window is the global minimum cross-shard link delay, winPair the
	// per-(src,dst) minimum (flat k*k, the matrix sim.Parallel widens
	// per-shard horizons with).
	shards  []*shard
	mail    *sim.Mailboxes
	window  sim.Time
	winPair []sim.Time

	// routeEpoch versions the forwarding state: AddRoute bumps it, and a
	// flow's pre-resolved flat path is honored only while its pathEpoch
	// matches (see Switch.Receive). It starts at 1 so the zero Flow never
	// accidentally matches.
	routeEpoch uint64

	// probeFlow is reused by ProbePath so probing allocates nothing and
	// never touches the packet pool.
	probeFlow Flow
}

// DropCause says why a packet was dropped.
type DropCause uint8

const (
	// DropTail is a tail drop at a full finite egress buffer.
	DropTail DropCause = iota
	// DropWire is random in-transit loss from fault injection.
	DropWire
	// DropLinkDown is loss on a link that is administratively down.
	DropLinkDown
)

func (c DropCause) String() string {
	switch c {
	case DropTail:
		return "tail"
	case DropWire:
		return "wire"
	case DropLinkDown:
		return "linkdown"
	}
	return "unknown"
}

// Hooks are optional observation points for tracing and debugging.
type Hooks struct {
	// OnSend fires when a data packet leaves a sender (before queueing).
	OnSend func(f *Flow, seq int64, payload int)
	// OnDeliver fires when a data packet's payload reaches the receiver.
	OnDeliver func(f *Flow, seq int64, payload int)
	// OnControl fires after congestion control updates a flow's control.
	OnControl func(f *Flow, ctl cc.Control)
	// OnDrop fires when a packet is lost (tail drop, wire fault, or link
	// down). f is nil for PFC control frames; seq is Seq for data and
	// AckSeq for ACKs.
	OnDrop func(f *Flow, kind Kind, seq int64, cause DropCause)
}

// New returns an empty network over eng with the given PRNG seed.
func New(eng *sim.Engine, seed int64) *Network {
	n := &Network{
		Eng:         eng,
		seed:        seed,
		MTU:         1000,
		HeaderBytes: 48,
		AckBytes:    64,
		RTOMin:      100 * sim.Microsecond,
		RTOMax:      10 * sim.Millisecond,
		routeEpoch:  1,
	}
	n.shards = []*shard{newShard(n, 0, eng)}
	return n
}

// Rand returns the network's deterministic PRNG (shard 0's stream, the
// only one on an unsharded network).
func (n *Network) Rand() *rand.Rand { return n.shards[0].rand }

// AddHost creates a host. Host ids are assigned in creation order and are
// the ids used in FlowSpec and routing.
func (n *Network) AddHost() *Host {
	h := &Host{net: n, sh: n.shards[0], id: n.nextID}
	n.nextID++
	n.hosts = append(n.hosts, h)
	for len(n.hostByNode) < h.id {
		n.hostByNode = append(n.hostByNode, nil)
	}
	n.hostByNode = append(n.hostByNode, h)
	return h
}

// AddSwitch creates a switch.
func (n *Network) AddSwitch() *Switch {
	s := &Switch{net: n, sh: n.shards[0], id: n.nextID}
	n.nextID++
	n.switches = append(n.switches, s)
	return s
}

// Hosts returns all hosts in id order.
func (n *Network) Hosts() []*Host { return n.hosts }

// Switches returns all switches in creation order.
func (n *Network) Switches() []*Switch { return n.switches }

// Flows returns all flows in AddFlow order.
func (n *Network) Flows() []*Flow { return n.flows }

// Connect links a and b with a full-duplex link of the given bandwidth and
// propagation delay, returning (a's port, b's port).
func (n *Network) Connect(a, b Node, bps float64, delay sim.Time) (*Port, *Port) {
	// All nodes live on shard 0 at construction time; Shard rebinds.
	sh := n.shards[0]
	pa := &Port{net: n, sh: sh, eng: sh.eng, owner: a, bw: bps, delay: delay}
	pb := &Port{net: n, sh: sh, eng: sh.eng, owner: b, bw: bps, delay: delay}
	pa.peer, pb.peer = pb, pa
	pa.txDone = pa.drain
	pb.txDone = pb.drain
	if sw, ok := a.(*Switch); ok {
		pa.stampINT = true
		pa.ownSw = sw
		sw.ports = append(sw.ports, pa)
	}
	if sw, ok := b.(*Switch); ok {
		pb.stampINT = true
		pb.ownSw = sw
		sw.ports = append(sw.ports, pb)
	}
	if h, ok := a.(*Host); ok {
		if h.port != nil {
			panic(fmt.Sprintf("net: host %d connected twice", h.id))
		}
		pa.ownHost = h
		h.port = pa
	}
	if h, ok := b.(*Host); ok {
		if h.port != nil {
			panic(fmt.Sprintf("net: host %d connected twice", h.id))
		}
		pb.ownHost = h
		h.port = pb
	}
	return pa, pb
}

// AddFlow registers a flow and schedules its start. The algorithm instance
// must be exclusive to this flow.
func (n *Network) AddFlow(spec FlowSpec, algo cc.Algorithm) *Flow {
	if spec.Size <= 0 {
		panic("net: flow size must be positive")
	}
	src := n.hostByID(spec.Src)
	// The flow's sender side executes on the source host's shard: its
	// start event, pacing timers, RTO and ACK processing all run there.
	f := &Flow{Spec: spec, net: n, sh: src.sh, eng: src.sh.eng, host: src, algo: algo}
	if err := n.pathInfo(f); err != nil {
		panic("net: " + err.Error())
	}
	f.rtoBase = 4 * f.baseRTT
	if f.rtoBase < n.RTOMin {
		f.rtoBase = n.RTOMin
	}
	if n.RTOMax > 0 && f.rtoBase > n.RTOMax {
		// On long-delay paths (a 10 ms WAN-edge hop makes 4*baseRTT ~80 ms)
		// the initial timeout must respect the same ceiling the backoff
		// doubling does, or first-loss recovery waits 8x longer than any
		// later one.
		f.rtoBase = n.RTOMax
	}
	f.rto = f.rtoBase
	n.flows = append(n.flows, f)
	n.unfinished.Add(1)
	f.eng.At(spec.Start, f.start)
	return f
}

// hostByID returns the host with the given node id in O(1); unknown ids
// are programming errors and panic (AddFlow's contract).
func (n *Network) hostByID(id int) *Host {
	if h := n.findHost(id); h != nil {
		return h
	}
	panic(fmt.Sprintf("net: no host with id %d", id))
}

// findHost is hostByID without the panic: nil for ids that are not hosts.
func (n *Network) findHost(id int) *Host {
	if id < 0 || id >= len(n.hostByNode) {
		return nil
	}
	return n.hostByNode[id]
}

// pathInfo walks the route the flow's data packets will take (using the
// same ECMP choices) and fills in the flow's path-derived constants: the
// switch hop count; the unloaded RTT (per-link propagation plus MTU-packet
// serialization forward, propagation plus ACK serialization back); the
// one-way pipeline-fill delay; and the bottleneck bandwidth. It also
// pre-resolves the flat forwarding path — the egress port route() would
// pick at each switch, forward for data and reverse for ACKs — which
// Switch.Receive uses instead of per-hop lookups while no route changes.
// The walk resolves routes by (dst, flow id) directly, so it allocates
// nothing and never touches the packet pool.
func (n *Network) pathInfo(f *Flow) error {
	if f.host == nil {
		return fmt.Errorf("no host with id %d", f.Spec.Src)
	}
	if f.host.port == nil {
		return fmt.Errorf("host %d is not connected", f.Spec.Src)
	}
	port := f.host.port
	f.minBw = port.bw
	f.fwdPath = f.fwdPath[:0]
	var dst *Host
	for steps := 0; dst == nil; steps++ {
		if steps > 64 {
			return fmt.Errorf("routing loop from host %d toward host %d", f.Spec.Src, f.Spec.Dst)
		}
		if port.bw < f.minBw {
			f.minBw = port.bw
		}
		f.propSum += port.delay
		f.invBwSum += 1 / port.bw
		fwd := port.delay + sim.TransmitTime(n.MTU+n.HeaderBytes, port.bw)
		f.baseRTT += fwd + port.delay + sim.TransmitTime(n.AckBytes, port.bw)
		switch node := port.peer.owner.(type) {
		case *Host:
			if node.id != f.Spec.Dst {
				return fmt.Errorf("route for flow %d reached host %d, want %d",
					f.Spec.ID, node.id, f.Spec.Dst)
			}
			dst = node
		case *Switch:
			f.hops++
			out := node.lookupRoute(f.Spec.Dst, f.Spec.ID)
			if out == nil {
				return fmt.Errorf("switch %d has no route to host %d", node.id, f.Spec.Dst)
			}
			f.fwdPath = append(f.fwdPath, out)
			port = out
		}
	}
	// Reverse walk for the ACK path. Failure here is not an error: a
	// topology can legally route ACKs through state installed later, so the
	// flow just keeps pathEpoch 0 and forwards via per-hop lookups.
	if dst.port == nil {
		return nil
	}
	f.revPath = f.revPath[:0]
	for port, steps := dst.port, 0; ; steps++ {
		if steps > 64 {
			return nil
		}
		switch node := port.peer.owner.(type) {
		case *Host:
			if node != f.host {
				return nil
			}
			f.pathEpoch = n.routeEpoch
			return nil
		case *Switch:
			out := node.lookupRoute(f.Spec.Src, f.Spec.ID)
			if out == nil {
				return nil
			}
			f.revPath = append(f.revPath, out)
			port = out
		}
	}
}

// ProbePath computes path constants (switch hops, unloaded RTT, bottleneck
// bandwidth) for a hypothetical flow without adding it — useful for sizing
// protocol parameters such as VAI's min-BDP token threshold. Unlike
// AddFlow it reports problems with the spec (unknown or disconnected host,
// missing route) as an error rather than panicking, and reuses a
// network-owned probe flow so probing allocates nothing.
func (n *Network) ProbePath(spec FlowSpec) (hops int, baseRTT sim.Time, minBw float64, err error) {
	f := &n.probeFlow
	fwd, rev := f.fwdPath, f.revPath // keep the walk scratch across probes
	*f = Flow{Spec: spec, net: n, host: n.findHost(spec.Src), fwdPath: fwd, revPath: rev}
	if err := n.pathInfo(f); err != nil {
		return 0, 0, 0, fmt.Errorf("net: probe %w", err)
	}
	return f.hops, f.baseRTT, f.minBw, nil
}

// AllFinished reports whether every flow has completed. It is O(1) — a
// live counter maintained by AddFlow and Flow.finish — because experiment
// loops consult it before every engine step: with the previous O(flows)
// scan it was over half the CPU time of a datacenter-scale run (52% of a
// fig10-medium profile at ~10k flows). On a sharded run it doubles as the
// parallel stop condition, evaluated at epoch barriers.
func (n *Network) AllFinished() bool { return n.unfinished.Load() == 0 }

// CheckConservation verifies the end-to-end conservation invariants after
// a run: every finished flow delivered and acknowledged exactly its size,
// and no flow has negative in-flight bytes. The invariants hold in lossy
// mode too — go-back-N refills every gap before a flow can finish — so
// experiment harnesses check this unconditionally. It returns an error
// describing the first violation.
func (n *Network) CheckConservation() error {
	for _, f := range n.flows {
		if f.inflight < 0 {
			return fmt.Errorf("flow %d: negative inflight %d", f.Spec.ID, f.inflight)
		}
		if f.finished && (f.delivered != f.Spec.Size || f.acked < f.Spec.Size) {
			return fmt.Errorf("flow %d: finished with delivered=%d acked=%d size=%d",
				f.Spec.ID, f.delivered, f.acked, f.Spec.Size)
		}
		if f.delivered > f.Spec.Size {
			return fmt.Errorf("flow %d: delivered %d exceeds size %d",
				f.Spec.ID, f.delivered, f.Spec.Size)
		}
	}
	return nil
}
