package net

import (
	"fmt"
	"math/rand"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// Network assembles hosts, switches, links and flows over a sim.Engine.
// Construction order: create nodes, Connect them, add switch routes, then
// AddFlow. The network is single-threaded and deterministic for a fixed
// seed.
type Network struct {
	Eng  *sim.Engine
	rand *rand.Rand

	// MTU is the payload bytes per full data packet (1000, as in the
	// paper's fluid model and the HPCC artifact).
	MTU int
	// HeaderBytes is added to every data packet on the wire.
	HeaderBytes int
	// AckBytes is the wire size of an acknowledgement.
	AckBytes int

	// PFCPauseBytes enables priority flow control when positive: an
	// ingress port that has at least this many bytes buffered in the node
	// pauses its upstream sender. Zero (the default) disables PFC;
	// queues are unbounded and the network is lossless by construction.
	PFCPauseBytes int64
	// PFCResumeBytes is the occupancy at which a paused upstream resumes.
	PFCResumeBytes int64

	// CNPInterval rate-limits congestion echoes per flow at the receiver
	// (DCQCN's CNP timer). Zero echoes every ECN-marked packet.
	CNPInterval sim.Time

	// OnFlowFinish, when set, is invoked as each flow completes.
	OnFlowFinish func(*Flow)

	// Hooks are optional per-event observers (all nil by default; a nil
	// hook costs one branch on the hot path). internal/trace attaches
	// recorders here.
	Hooks Hooks

	hosts    []*Host
	switches []*Switch
	flows    []*Flow
	pool     []*Packet
	nextID   int
}

// Hooks are optional observation points for tracing and debugging.
type Hooks struct {
	// OnSend fires when a data packet leaves a sender (before queueing).
	OnSend func(f *Flow, seq int64, payload int)
	// OnDeliver fires when a data packet's payload reaches the receiver.
	OnDeliver func(f *Flow, seq int64, payload int)
	// OnControl fires after congestion control updates a flow's control.
	OnControl func(f *Flow, ctl cc.Control)
}

// New returns an empty network over eng with the given PRNG seed.
func New(eng *sim.Engine, seed int64) *Network {
	return &Network{
		Eng:         eng,
		rand:        rand.New(rand.NewSource(seed)),
		MTU:         1000,
		HeaderBytes: 48,
		AckBytes:    64,
	}
}

// Rand returns the network's deterministic PRNG.
func (n *Network) Rand() *rand.Rand { return n.rand }

// AddHost creates a host. Host ids are assigned in creation order and are
// the ids used in FlowSpec and routing.
func (n *Network) AddHost() *Host {
	h := &Host{net: n, id: n.nextID}
	n.nextID++
	n.hosts = append(n.hosts, h)
	return h
}

// AddSwitch creates a switch.
func (n *Network) AddSwitch() *Switch {
	s := &Switch{net: n, id: n.nextID, routes: make(map[int][]*Port)}
	n.nextID++
	n.switches = append(n.switches, s)
	return s
}

// Hosts returns all hosts in id order.
func (n *Network) Hosts() []*Host { return n.hosts }

// Switches returns all switches in creation order.
func (n *Network) Switches() []*Switch { return n.switches }

// Flows returns all flows in AddFlow order.
func (n *Network) Flows() []*Flow { return n.flows }

// Connect links a and b with a full-duplex link of the given bandwidth and
// propagation delay, returning (a's port, b's port).
func (n *Network) Connect(a, b Node, bps float64, delay sim.Time) (*Port, *Port) {
	pa := &Port{net: n, owner: a, bw: bps, delay: delay}
	pb := &Port{net: n, owner: b, bw: bps, delay: delay}
	pa.peer, pb.peer = pb, pa
	pa.txDone = func() { pa.finishTx(pa.txPkt) }
	pb.txDone = func() { pb.finishTx(pb.txPkt) }
	if sw, ok := a.(*Switch); ok {
		pa.stampINT = true
		sw.ports = append(sw.ports, pa)
	}
	if sw, ok := b.(*Switch); ok {
		pb.stampINT = true
		sw.ports = append(sw.ports, pb)
	}
	if h, ok := a.(*Host); ok {
		if h.port != nil {
			panic(fmt.Sprintf("net: host %d connected twice", h.id))
		}
		h.port = pa
	}
	if h, ok := b.(*Host); ok {
		if h.port != nil {
			panic(fmt.Sprintf("net: host %d connected twice", h.id))
		}
		h.port = pb
	}
	return pa, pb
}

// AddFlow registers a flow and schedules its start. The algorithm instance
// must be exclusive to this flow.
func (n *Network) AddFlow(spec FlowSpec, algo cc.Algorithm) *Flow {
	if spec.Size <= 0 {
		panic("net: flow size must be positive")
	}
	src := n.hostByID(spec.Src)
	f := &Flow{Spec: spec, net: n, host: src, algo: algo}
	n.pathInfo(f)
	n.flows = append(n.flows, f)
	n.Eng.At(spec.Start, f.start)
	return f
}

func (n *Network) hostByID(id int) *Host {
	for _, h := range n.hosts {
		if h.id == id {
			return h
		}
	}
	panic(fmt.Sprintf("net: no host with id %d", id))
}

// pathInfo walks the route the flow's data packets will take (using the
// same ECMP choices) and fills in the flow's path-derived constants: the
// switch hop count; the unloaded RTT (per-link propagation plus MTU-packet
// serialization forward, propagation plus ACK serialization back); the
// one-way pipeline-fill delay; and the bottleneck bandwidth.
func (n *Network) pathInfo(f *Flow) {
	if f.host.port == nil {
		panic(fmt.Sprintf("net: host %d is not connected", f.Spec.Src))
	}
	probe := &Packet{Kind: Data, Flow: f, Src: f.Spec.Src, Dst: f.Spec.Dst}
	port := f.host.port
	f.minBw = port.bw
	for steps := 0; ; steps++ {
		if steps > 64 {
			panic("net: routing loop")
		}
		if port.bw < f.minBw {
			f.minBw = port.bw
		}
		f.propSum += port.delay
		f.invBwSum += 1 / port.bw
		fwd := port.delay + sim.TransmitTime(n.MTU+n.HeaderBytes, port.bw)
		f.baseRTT += fwd + port.delay + sim.TransmitTime(n.AckBytes, port.bw)
		next := port.peer.owner
		switch node := next.(type) {
		case *Host:
			if node.id != f.Spec.Dst {
				panic(fmt.Sprintf("net: route for flow %d reached host %d, want %d",
					f.Spec.ID, node.id, f.Spec.Dst))
			}
			return
		case *Switch:
			f.hops++
			port = node.route(probe)
		}
	}
}

// ProbePath computes path constants (switch hops, unloaded RTT, bottleneck
// bandwidth) for a hypothetical flow without adding it — useful for sizing
// protocol parameters such as VAI's min-BDP token threshold.
func (n *Network) ProbePath(spec FlowSpec) (hops int, baseRTT sim.Time, minBw float64) {
	f := &Flow{Spec: spec, net: n, host: n.hostByID(spec.Src)}
	n.pathInfo(f)
	return f.hops, f.baseRTT, f.minBw
}

// getPacket returns a pooled packet with its arrival closure bound.
func (n *Network) getPacket() *Packet {
	if m := len(n.pool); m > 0 {
		p := n.pool[m-1]
		n.pool = n.pool[:m-1]
		return p
	}
	p := &Packet{}
	p.arrive = func() { p.dest.owner.Receive(p, p.dest) }
	return p
}

// putPacket recycles a packet.
func (n *Network) putPacket(p *Packet) {
	p.reset()
	if len(n.pool) < 1<<16 {
		n.pool = append(n.pool, p)
	}
}

// AllFinished reports whether every flow has completed.
func (n *Network) AllFinished() bool {
	for _, f := range n.flows {
		if !f.finished {
			return false
		}
	}
	return true
}

// CheckConservation verifies the lossless invariants after a run: every
// finished flow delivered and acknowledged exactly its size, and no flow
// has negative in-flight bytes. It returns an error describing the first
// violation.
func (n *Network) CheckConservation() error {
	for _, f := range n.flows {
		if f.inflight < 0 {
			return fmt.Errorf("flow %d: negative inflight %d", f.Spec.ID, f.inflight)
		}
		if f.finished && (f.delivered != f.Spec.Size || f.acked < f.Spec.Size) {
			return fmt.Errorf("flow %d: finished with delivered=%d acked=%d size=%d",
				f.Spec.ID, f.delivered, f.acked, f.Spec.Size)
		}
		if f.delivered > f.Spec.Size {
			return fmt.Errorf("flow %d: delivered %d exceeds size %d",
				f.Spec.ID, f.delivered, f.Spec.Size)
		}
	}
	return nil
}
