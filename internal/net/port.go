package net

import (
	"fmt"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// Node is a network element that can receive packets: a Host or a Switch.
type Node interface {
	// Receive is invoked when a packet fully arrives on one of the node's
	// ports.
	Receive(p *Packet, in *Port)
	// NodeID returns the node's network-unique id.
	NodeID() int
}

// Port is one direction-pair endpoint of a link: it owns the egress queue
// and transmitter toward its peer, and is the identity under which
// arriving packets are reported to its owner. Ports are created by
// Network.Connect.
type Port struct {
	net   *Network
	owner Node
	peer  *Port

	// sh/eng are the execution shard the port's owner lives on and that
	// shard's engine (always shard 0 until Network.Shard rebinds). Every
	// event the port schedules — serialization completion, local
	// propagation arrival — goes to eng; pool, PRNG and counter traffic
	// goes to sh. xmail, nil for intra-shard links, is the mailbox this
	// port hands packets into when its peer lives on a different shard.
	sh    *shard
	eng   *sim.Engine
	xmail *sim.Outbox

	// Concrete views of owner, exactly one non-nil. Packet arrival is the
	// single hottest call in the simulator; dispatching through these
	// instead of the Node interface turns it into a direct (inlinable)
	// call guarded by one nil check.
	ownHost *Host
	ownSw   *Switch
	bw      float64  // link bandwidth, bps
	delay   sim.Time // propagation delay

	q        queue
	busy     bool
	pausedBy bool // peer sent PFC Pause: hold data (control still flows)
	// downDepth counts overlapping link-down windows: the transmit
	// direction is down while it is positive, and packets completing
	// serialization then are lost. A depth (rather than a bool) makes
	// overlapping ScheduleFlap windows compose: the link comes back up
	// only when the last open window closes, not when the first one ends.
	downDepth int
	txBytes   int64
	stampINT  bool       // owner is a switch: stamp telemetry on data dequeue
	red       *REDConfig // ECN marking at enqueue when set
	bufBytes  int64      // egress buffer override; 0 falls back to Network.BufferBytes

	// PFC ingress-side accounting (switch owners only): bytes currently
	// buffered in this node that arrived through this port.
	ingressBytes int64
	pauseSent    bool

	// serWire/serTime memoize TransmitTime for the last wire size sent:
	// a port sees essentially one size (full data packets one way, ACKs
	// the other), so this trades the float conversion chain for an
	// integer compare on nearly every transmission. Wire sizes are never
	// zero, so the zero value can't alias a real entry.
	serWire int
	serTime sim.Time

	// txPkt and txDone implement allocation-free serialization events.
	// Invariant: the port transmits one packet at a time (kick sets busy
	// before scheduling, drain clears it after), so the single method
	// value bound in Network.Connect serves every transmission and the
	// in-flight packet rides in txPkt rather than in a per-event closure.
	// Every high-frequency timer site follows this pattern — port drain
	// here, propagation arrival via Packet.arrive, pacing wakeups via
	// Flow.wake — so steady-state scheduling never allocates.
	txPkt  *Packet
	txDone func()

	// trainFlow, when non-nil, is a flow whose next pacing wakeup was
	// elided under Network.MacroEvents: it falls due exactly when the
	// current transmission drains, so drain runs the wakeup body right
	// after finishTx instead of the engine dispatching a separate event.
	// Set only while the flow's own packet is in the transmitter (which
	// makes the owner unique); cleared by drain, by Flow.disarmTrain when
	// the pacing horizon moves, and by Flow.finish.
	trainFlow *Flow

	// pausesSent counts PFC Pause frames emitted by this ingress (a
	// head-of-line-blocking indicator).
	pausesSent int64
}

// PausesSent returns how many PFC Pause frames this port has sent
// upstream.
func (pt *Port) PausesSent() int64 { return pt.pausesSent }

// REDConfig is instantaneous-queue RED/ECN marking: packets are marked
// with probability PMax * (q-KMin)/(KMax-KMin) between the thresholds
// (reaching exactly PMax at KMax) and always above KMax, as DCQCN
// configures switches. The occupancy q includes the arriving packet.
// KMax == KMin is a step function: mark with PMax above the threshold.
type REDConfig struct {
	KMinBytes int64
	KMaxBytes int64
	PMax      float64
}

// Owner returns the node the port belongs to.
func (pt *Port) Owner() Node { return pt.owner }

// Peer returns the port at the other end of the link.
func (pt *Port) Peer() *Port { return pt.peer }

// Bandwidth returns the link bandwidth in bits per second.
func (pt *Port) Bandwidth() float64 { return pt.bw }

// QueueBytes returns the egress queue occupancy in bytes.
func (pt *Port) QueueBytes() int64 { return pt.q.Bytes() }

// QueuePeak returns the egress queue's byte high-water mark since the last
// ResetQueuePeak.
func (pt *Port) QueuePeak() int64 { return pt.q.Peak() }

// ResetQueuePeak resets the high-water mark to the current occupancy.
func (pt *Port) ResetQueuePeak() { pt.q.PeakReset() }

// TxBytes returns cumulative bytes transmitted on the port.
func (pt *Port) TxBytes() int64 { return pt.txBytes }

// SetRED enables ECN marking on the egress queue. It panics on a config
// that cannot express a marking probability: negative KMin, KMax below
// KMin, or PMax outside (0, 1]. KMax == KMin is a valid step function
// (mark with PMax at and above the threshold).
func (pt *Port) SetRED(cfg REDConfig) {
	if cfg.KMinBytes < 0 || cfg.KMaxBytes < cfg.KMinBytes {
		panic(fmt.Sprintf("net: invalid RED thresholds KMin=%d KMax=%d", cfg.KMinBytes, cfg.KMaxBytes))
	}
	if cfg.PMax <= 0 || cfg.PMax > 1 {
		panic(fmt.Sprintf("net: invalid RED PMax=%g (want 0 < PMax <= 1)", cfg.PMax))
	}
	pt.red = &cfg
}

// SetBuffer caps this egress queue at the given wire bytes, overriding
// Network.BufferBytes. Zero restores the network-wide setting.
func (pt *Port) SetBuffer(bytes int64) { pt.bufBytes = bytes }

// bufferLimit returns the effective egress buffer cap (0 = unbounded).
func (pt *Port) bufferLimit() int64 {
	if pt.bufBytes > 0 {
		return pt.bufBytes
	}
	return pt.net.BufferBytes
}

// send enqueues a packet for transmission toward the peer, tail-dropping
// it when a finite egress buffer is full. PFC control frames are exempt
// from the cap: they are 64 bytes, jump the queue anyway, and dropping
// one would wedge the pause protocol.
//
// It reports whether the packet ended up waiting in the egress queue:
// false when it was tail-dropped or went straight to the transmitter
// (cut-through). Only a true return leaves the packet reachable for
// in-place mutation (receiver ACK coalescing keys on this).
func (pt *Port) send(p *Packet) bool {
	if lim := pt.bufferLimit(); lim > 0 && p.Kind != Pause && p.Kind != Resume &&
		pt.q.Bytes()+int64(p.Wire) > lim {
		pt.sh.drop(p, DropTail)
		return false
	}
	if pt.red != nil && p.Kind == Data {
		pt.markECN(p)
	}
	// Cut-through: with an idle transmitter and an empty queue the packet
	// starts serializing immediately, skipping the FIFO. This is exactly
	// what Push+kick would do (pop the sole entry and transmit it), minus
	// the two ring operations per uncongested hop. send only carries data
	// and ACKs (control frames go through sendControl), so a PFC-paused
	// port always takes the queueing path.
	if !pt.busy && !pt.pausedBy && pt.q.Len() == 0 {
		pt.busy = true
		pt.txPkt = p
		pt.eng.After(pt.serialize(int(p.Wire)), pt.txDone)
		return false
	}
	pt.q.Push(p)
	pt.kick()
	// The packet is still queued: kick either found the transmitter busy,
	// found the port paused with a data/ACK head, or popped an *earlier*
	// packet (the only way kick would transmit p itself — idle, unpaused,
	// p alone in the queue — is exactly the cut-through case above).
	return true
}

// sendControl enqueues a PFC control frame ahead of any queued data,
// coalescing against a control frame that is still queued so Pause and
// Resume can never reorder on the wire.
//
// A queued-but-not-yet-transmitting control frame is always at the queue
// head: control frames are the only PushFront users and kick pops them
// even while paused, so nothing can get in front of one. Pause and
// Resume strictly alternate per port (pauseSent gates both directions),
// so a queued frame of the opposite kind annihilates with the new one —
// the peer never saw the first frame, and delivering neither leaves it in
// the correct current state. Without this, a Resume PushFronted while a
// Pause was queued behind a busy transmitter overtook it on the wire and
// the peer processed Pause last: paused forever, with pauseSent already
// false so no Resume would ever follow.
func (pt *Port) sendControl(p *Packet) {
	if pt.q.Len() > 0 {
		if head := pt.q.buf[pt.q.head]; head.Kind == Pause || head.Kind == Resume {
			if head.Kind == p.Kind {
				// Duplicate (defensive: alternation should prevent it);
				// the queued frame already says this.
				pt.sh.putPacket(p)
				return
			}
			pt.q.Pop()
			pt.sh.putPacket(head)
			pt.sh.putPacket(p)
			return
		}
	}
	pt.q.PushFront(p)
	pt.kick()
}

func (pt *Port) markECN(p *Packet) {
	// Instantaneous queue including the arriving packet itself, as a real
	// switch (and the DCQCN model) sees it at enqueue time. Sampling
	// before Push meant the first packet into an empty queue could never
	// be marked regardless of thresholds.
	q := pt.q.Bytes() + int64(p.Wire)
	r := pt.red
	if q <= r.KMinBytes {
		return
	}
	prob := 1.0
	switch {
	case r.KMaxBytes == r.KMinBytes:
		// Step config: a single threshold marks with PMax, not the +Inf
		// the ramp formula used to divide its way into.
		prob = r.PMax
	case q <= r.KMaxBytes:
		prob = r.PMax * float64(q-r.KMinBytes) / float64(r.KMaxBytes-r.KMinBytes)
	}
	if pt.sh.rand.Float64() < prob {
		p.ECN = true
		pt.sh.ecnMarks++
	}
}

// kick starts the transmitter if it is idle and transmission is allowed.
func (pt *Port) kick() {
	if pt.busy || pt.q.Len() == 0 {
		return
	}
	if pt.pausedBy {
		// PFC pause stops data; control frames (always at the front)
		// still flow.
		if k := pt.q.buf[pt.q.head].Kind; k != Pause && k != Resume {
			return
		}
	}
	p := pt.q.Pop()
	if p.Kind == Ack && p.Flow != nil && p.Flow.pendingAck == p {
		// The ACK is leaving the queue for the wire: from here on the
		// receiver must not mutate it in place (see Host.receiveData).
		p.Flow.pendingAck = nil
	}
	pt.busy = true
	pt.txPkt = p
	pt.eng.After(pt.serialize(int(p.Wire)), pt.txDone)
}

// serialize returns TransmitTime(wire, pt.bw) through the one-entry memo.
func (pt *Port) serialize(wire int) sim.Time {
	if wire == pt.serWire {
		return pt.serTime
	}
	d := sim.TransmitTime(wire, pt.bw)
	pt.serWire, pt.serTime = wire, d
	return d
}

// drain is the serialization-done event body; it runs via the pre-bound
// txDone method value (see the txPkt/txDone invariant above). When a
// macro-event train is armed it also runs the elided pacing wakeup: in
// the unfused execution that wakeup is the very next event — same
// timestamp, adjacent tie-break sequence, so nothing can order between
// the two — which is what makes the fusion bit-identical.
func (pt *Port) drain() {
	pt.finishTx(pt.txPkt)
	if tf := pt.trainFlow; tf != nil {
		pt.trainFlow = nil
		tf.trainArmed = false
		tf.onWake()
	}
}

// finishTx completes serialization: stamps telemetry, releases PFC ingress
// accounting, schedules arrival at the peer, and starts the next packet.
// When the peer lives on another shard the arrival goes through the
// mailbox instead of the local engine: it executes on the peer's shard
// after the epoch barrier, at the exact same simulated time — propagation
// delay is the lookahead that makes the barrier window safe.
func (pt *Port) finishTx(p *Packet) {
	pt.txPkt = nil
	pt.txBytes += int64(p.Wire)
	if p.Kind == Data && pt.stampINT {
		p.side.Hops = append(p.side.Hops, cc.Telemetry{
			QueueBytes: pt.q.Bytes(),
			TxBytes:    pt.txBytes,
			TS:         pt.eng.Now(),
			RateBps:    pt.bw,
		})
	}
	if p.ingress != nil {
		p.ingress.creditIngress(int64(p.Wire))
		p.ingress = nil
	}
	if pt.downDepth > 0 || pt.sh.dropInTransit(p) {
		cause := DropWire
		if pt.downDepth > 0 {
			cause = DropLinkDown
		}
		pt.sh.drop(p, cause)
		pt.busy = false
		pt.kick()
		return
	}
	p.dest = pt.peer
	if pt.xmail == nil {
		pt.eng.After(pt.delay, p.arrive)
	} else {
		pt.xmail.Send(pt.eng.Now()+pt.delay, p.arrive)
	}
	pt.busy = false
	pt.kick()
}

// LinkDown reports whether the port's transmit direction is down (at
// least one down window is open).
func (pt *Port) LinkDown() bool { return pt.downDepth > 0 }

// SetLinkDown opens (down=true) or closes (down=false) one link-down
// window on the port's transmit direction; packets that finish
// serialization while any window is open are lost. Windows nest: each
// SetLinkDown(true) must be matched by one SetLinkDown(false), and the
// link is up only when every window has closed — so overlapping
// ScheduleFlap windows keep the link down through their full union. A
// surplus SetLinkDown(false) on an up link is a no-op. The transmitter
// keeps draining either way, so a down window behaves like a span of
// pure loss rather than a stalled queue; packets already propagating
// when the link goes down still arrive.
func (pt *Port) SetLinkDown(down bool) {
	if down {
		pt.downDepth++
		return
	}
	if pt.downDepth > 0 {
		pt.downDepth--
	}
	if pt.downDepth == 0 {
		pt.kick()
	}
}

// ScheduleFlap schedules a link-down window [at, at+duration) on the
// port's transmit direction. Windows nest (see SetLinkDown), so
// overlapping flaps lose packets through their full union. Flows
// crossing the window need Network.LossRecovery to survive it.
// Schedule flaps after Network.Shard: the events must land on the shard
// engine the port ends up bound to.
func (pt *Port) ScheduleFlap(at sim.Time, duration sim.Time) {
	pt.eng.At(at, func() { pt.SetLinkDown(true) })
	pt.eng.At(at+duration, func() { pt.SetLinkDown(false) })
}

// chargeIngress attributes wire bytes buffered in the owner to this
// ingress port and sends a PFC Pause upstream when the threshold is
// crossed.
func (pt *Port) chargeIngress(bytes int64) {
	pt.ingressBytes += bytes
	if th := pt.net.PFCPauseBytes; th > 0 && !pt.pauseSent && pt.ingressBytes >= th {
		pt.pauseSent = true
		pt.pausesSent++
		pt.sendPFC(Pause)
	}
}

// creditIngress releases buffered bytes and sends Resume when occupancy
// falls below the resume threshold.
func (pt *Port) creditIngress(bytes int64) {
	pt.ingressBytes -= bytes
	if pt.pauseSent && pt.ingressBytes <= pt.net.PFCResumeBytes {
		pt.pauseSent = false
		pt.sendPFC(Resume)
	}
}

func (pt *Port) sendPFC(kind Kind) {
	p := pt.sh.getPacket()
	p.Kind = kind
	p.Wire = pfcFrameBytes
	pt.sendControl(p)
}

const pfcFrameBytes = 64
