package net

import (
	"faircc/internal/cc"
	"faircc/internal/sim"
)

// Node is a network element that can receive packets: a Host or a Switch.
type Node interface {
	// Receive is invoked when a packet fully arrives on one of the node's
	// ports.
	Receive(p *Packet, in *Port)
	// NodeID returns the node's network-unique id.
	NodeID() int
}

// Port is one direction-pair endpoint of a link: it owns the egress queue
// and transmitter toward its peer, and is the identity under which
// arriving packets are reported to its owner. Ports are created by
// Network.Connect.
type Port struct {
	net   *Network
	owner Node
	peer  *Port
	bw    float64  // link bandwidth, bps
	delay sim.Time // propagation delay

	q        queue
	busy     bool
	pausedBy bool // peer sent PFC Pause: hold data (control still flows)
	txBytes  int64
	stampINT bool       // owner is a switch: stamp telemetry on data dequeue
	red      *REDConfig // ECN marking at enqueue when set

	// PFC ingress-side accounting (switch owners only): bytes currently
	// buffered in this node that arrived through this port.
	ingressBytes int64
	pauseSent    bool

	// txPkt and txDone implement allocation-free serialization events.
	// Invariant: the port transmits one packet at a time (kick sets busy
	// before scheduling, drain clears it after), so the single method
	// value bound in Network.Connect serves every transmission and the
	// in-flight packet rides in txPkt rather than in a per-event closure.
	// Every high-frequency timer site follows this pattern — port drain
	// here, propagation arrival via Packet.arrive, pacing wakeups via
	// Flow.wake — so steady-state scheduling never allocates.
	txPkt  *Packet
	txDone func()

	// pausesSent counts PFC Pause frames emitted by this ingress (a
	// head-of-line-blocking indicator).
	pausesSent int64
}

// PausesSent returns how many PFC Pause frames this port has sent
// upstream.
func (pt *Port) PausesSent() int64 { return pt.pausesSent }

// REDConfig is instantaneous-queue RED/ECN marking: packets are marked
// with probability PMax * (q-KMin)/(KMax-KMin) between the thresholds and
// always above KMax, as DCQCN configures switches.
type REDConfig struct {
	KMinBytes int64
	KMaxBytes int64
	PMax      float64
}

// Owner returns the node the port belongs to.
func (pt *Port) Owner() Node { return pt.owner }

// Peer returns the port at the other end of the link.
func (pt *Port) Peer() *Port { return pt.peer }

// Bandwidth returns the link bandwidth in bits per second.
func (pt *Port) Bandwidth() float64 { return pt.bw }

// QueueBytes returns the egress queue occupancy in bytes.
func (pt *Port) QueueBytes() int64 { return pt.q.Bytes() }

// QueuePeak returns the egress queue's byte high-water mark since the last
// ResetQueuePeak.
func (pt *Port) QueuePeak() int64 { return pt.q.Peak() }

// ResetQueuePeak resets the high-water mark to the current occupancy.
func (pt *Port) ResetQueuePeak() { pt.q.PeakReset() }

// TxBytes returns cumulative bytes transmitted on the port.
func (pt *Port) TxBytes() int64 { return pt.txBytes }

// SetRED enables ECN marking on the egress queue.
func (pt *Port) SetRED(cfg REDConfig) { pt.red = &cfg }

// send enqueues a packet for transmission toward the peer.
func (pt *Port) send(p *Packet) {
	if pt.red != nil && p.Kind == Data {
		pt.markECN(p)
	}
	pt.q.Push(p)
	pt.kick()
}

// sendControl enqueues a PFC control frame ahead of any queued data.
func (pt *Port) sendControl(p *Packet) {
	pt.q.PushFront(p)
	pt.kick()
}

func (pt *Port) markECN(p *Packet) {
	q := pt.q.Bytes()
	r := pt.red
	if q <= r.KMinBytes {
		return
	}
	prob := 1.0
	if q < r.KMaxBytes {
		prob = r.PMax * float64(q-r.KMinBytes) / float64(r.KMaxBytes-r.KMinBytes)
	}
	if pt.net.rand.Float64() < prob {
		p.ECN = true
		pt.net.ecnMarks++
	}
}

// kick starts the transmitter if it is idle and transmission is allowed.
func (pt *Port) kick() {
	if pt.busy || pt.q.Len() == 0 {
		return
	}
	if pt.pausedBy {
		// PFC pause stops data; control frames (always at the front)
		// still flow.
		if k := pt.q.buf[pt.q.head].Kind; k != Pause && k != Resume {
			return
		}
	}
	p := pt.q.Pop()
	pt.busy = true
	pt.txPkt = p
	ser := sim.TransmitTime(p.Wire, pt.bw)
	pt.net.Eng.After(ser, pt.txDone)
}

// drain is the serialization-done event body; it runs via the pre-bound
// txDone method value (see the txPkt/txDone invariant above).
func (pt *Port) drain() { pt.finishTx(pt.txPkt) }

// finishTx completes serialization: stamps telemetry, releases PFC ingress
// accounting, schedules arrival at the peer, and starts the next packet.
func (pt *Port) finishTx(p *Packet) {
	pt.txPkt = nil
	pt.txBytes += int64(p.Wire)
	if p.Kind == Data && pt.stampINT {
		p.Hops = append(p.Hops, cc.Telemetry{
			QueueBytes: pt.q.Bytes(),
			TxBytes:    pt.txBytes,
			TS:         pt.net.Eng.Now(),
			RateBps:    pt.bw,
		})
	}
	if p.ingress != nil {
		p.ingress.creditIngress(int64(p.Wire))
		p.ingress = nil
	}
	p.dest = pt.peer
	pt.net.Eng.After(pt.delay, p.arrive)
	pt.busy = false
	pt.kick()
}

// chargeIngress attributes wire bytes buffered in the owner to this
// ingress port and sends a PFC Pause upstream when the threshold is
// crossed.
func (pt *Port) chargeIngress(bytes int64) {
	pt.ingressBytes += bytes
	if th := pt.net.PFCPauseBytes; th > 0 && !pt.pauseSent && pt.ingressBytes >= th {
		pt.pauseSent = true
		pt.pausesSent++
		pt.sendPFC(Pause)
	}
}

// creditIngress releases buffered bytes and sends Resume when occupancy
// falls below the resume threshold.
func (pt *Port) creditIngress(bytes int64) {
	pt.ingressBytes -= bytes
	if pt.pauseSent && pt.ingressBytes <= pt.net.PFCResumeBytes {
		pt.pauseSent = false
		pt.sendPFC(Resume)
	}
}

func (pt *Port) sendPFC(kind Kind) {
	p := pt.net.getPacket()
	p.Kind = kind
	p.Wire = pfcFrameBytes
	pt.sendControl(p)
}

const pfcFrameBytes = 64
