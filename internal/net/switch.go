package net

import "fmt"

// Switch is an output-queued switch: an arriving packet is routed by
// destination host id to an egress port (ECMP-hashed when several are
// configured) and joins that port's FIFO queue. Data packets receive INT
// telemetry when they depart an egress port.
//
// Forwarding state is a dense array indexed by destination host id rather
// than a map: a route lookup on the per-packet hot path is one bounds
// check and one load. Most packets do not even take that path — flows
// whose route set has not changed since AddFlow carry a pre-resolved port
// sequence (see Flow.fwdPath) that Receive indexes by hop count.
type Switch struct {
	net   *Network
	sh    *shard // execution shard (shard 0 until Network.Shard rebinds)
	id    int
	ports []*Port

	// fwd[dst] is the sole egress port toward dst (the single-port fast
	// path); nil when dst has an ECMP group (groups[dst], always >= 2
	// candidates) or no route at all.
	fwd    []*Port
	groups [][]*Port
}

// NodeID implements Node.
func (s *Switch) NodeID() int { return s.id }

// Ports returns the switch's ports in attachment order.
func (s *Switch) Ports() []*Port { return s.ports }

// AddRoute registers egress ports for a destination host. Multiple ports
// (across one or several calls) form an ECMP group selected by flow hash,
// so every flow keeps a single path and in-order delivery. Candidate order
// is the order ports were added.
//
// Adding a route invalidates the pre-resolved flat paths of flows that
// already exist (they fall back to per-hop lookups); install routes before
// adding flows, as the Network construction order requires.
func (s *Switch) AddRoute(dstHost int, ports ...*Port) {
	if len(ports) == 0 {
		return
	}
	for _, p := range ports {
		if p.owner != s {
			panic("net: AddRoute with a port not owned by this switch")
		}
	}
	if dstHost < 0 {
		panic(fmt.Sprintf("net: AddRoute with negative host id %d", dstHost))
	}
	for len(s.fwd) <= dstHost {
		s.fwd = append(s.fwd, nil)
		s.groups = append(s.groups, nil)
	}
	switch {
	case s.fwd[dstHost] == nil && s.groups[dstHost] == nil && len(ports) == 1:
		s.fwd[dstHost] = ports[0]
	case s.fwd[dstHost] == nil && s.groups[dstHost] == nil:
		// First install of a multi-port group: alias the caller's slice,
		// clipped so a later append for this dst cannot scribble on it.
		// Topology builders reuse one uplink slice for every destination
		// behind it, so this keeps route installation O(hosts) in memory.
		s.groups[dstHost] = ports[:len(ports):len(ports)]
	default:
		g := s.groups[dstHost]
		if g == nil {
			g = append(make([]*Port, 0, 1+len(ports)), s.fwd[dstHost])
			s.fwd[dstHost] = nil
		}
		s.groups[dstHost] = append(g, ports...)
	}
	s.net.routeEpoch++
}

// RouteCandidates returns the ECMP candidate ports toward dst in install
// order (a single-element slice for single-port routes, nil when the
// switch has no route). The slice is the switch's own state; callers must
// not modify it.
func (s *Switch) RouteCandidates(dst int) []*Port {
	if dst < 0 || dst >= len(s.fwd) {
		return nil
	}
	if p := s.fwd[dst]; p != nil {
		return []*Port{p}
	}
	return s.groups[dst]
}

// Receive implements Node.
func (s *Switch) Receive(p *Packet, in *Port) {
	switch p.Kind {
	case Pause:
		in.pausedBy = true
		s.sh.putPacket(p)
		return
	case Resume:
		in.pausedBy = false
		s.sh.putPacket(p)
		in.kick()
		return
	}
	// Flat-path fast path: the flow resolved its ECMP choices once at
	// AddFlow and the sender stamped them onto the packet, so as long as
	// no route changed since the packet left its sender (routeEpoch
	// matches) forwarding is a single indexed load that touches nothing
	// but the packet's first cache line. The pre-computed sequence is
	// exactly what route() would return at every hop.
	var out *Port
	if p.pathEpoch == s.net.routeEpoch {
		if h := int(p.hop); h < len(p.path) {
			out = p.path[h]
			p.hop++
		}
	}
	if out == nil {
		out = s.route(p)
	}
	if s.net.PFCPauseBytes > 0 {
		p.ingress = in
		in.chargeIngress(int64(p.Wire))
	}
	out.send(p)
}

// route resolves a packet's egress port from the dense forwarding table:
// single-port destinations are one load; ECMP groups hash the flow id.
func (s *Switch) route(p *Packet) *Port {
	out := s.lookupRoute(int(p.Dst), p.Flow.Spec.ID)
	if out == nil {
		panic(fmt.Sprintf("net: switch %d has no route to host %d", s.id, p.Dst))
	}
	return out
}

// lookupRoute is route by (dst, flowID), returning nil when the switch has
// no route to dst (path probing turns that into an error; the packet hot
// path panics).
func (s *Switch) lookupRoute(dst, flowID int) *Port {
	if dst < 0 || dst >= len(s.fwd) {
		return nil
	}
	if out := s.fwd[dst]; out != nil {
		return out
	}
	g := s.groups[dst]
	if g == nil {
		return nil
	}
	return g[ecmpHash(flowID, s.id, len(g))]
}

// ecmpHash picks a deterministic per-flow member of an ECMP group. It
// mixes the switch id so consecutive switch layers do not make correlated
// choices.
func ecmpHash(flowID, switchID, n int) int {
	x := uint64(flowID)*0x9e3779b97f4a7c15 ^ uint64(switchID)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return int(x % uint64(n))
}
