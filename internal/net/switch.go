package net

import "fmt"

// Switch is an output-queued switch: an arriving packet is routed by
// destination host id to an egress port (ECMP-hashed when several are
// configured) and joins that port's FIFO queue. Data packets receive INT
// telemetry when they depart an egress port.
type Switch struct {
	net    *Network
	id     int
	ports  []*Port
	routes map[int][]*Port // destination host id -> candidate egress ports
}

// NodeID implements Node.
func (s *Switch) NodeID() int { return s.id }

// Ports returns the switch's ports in attachment order.
func (s *Switch) Ports() []*Port { return s.ports }

// AddRoute registers egress ports for a destination host. Multiple ports
// form an ECMP group selected by flow hash (so every flow keeps a single
// path and in-order delivery).
func (s *Switch) AddRoute(dstHost int, ports ...*Port) {
	for _, p := range ports {
		if p.owner != s {
			panic("net: AddRoute with a port not owned by this switch")
		}
	}
	s.routes[dstHost] = append(s.routes[dstHost], ports...)
}

// Receive implements Node.
func (s *Switch) Receive(p *Packet, in *Port) {
	switch p.Kind {
	case Pause:
		in.pausedBy = true
		s.net.putPacket(p)
		return
	case Resume:
		in.pausedBy = false
		s.net.putPacket(p)
		in.kick()
		return
	}
	out := s.route(p)
	if s.net.PFCPauseBytes > 0 {
		p.ingress = in
		in.chargeIngress(int64(p.Wire))
	}
	out.send(p)
}

func (s *Switch) route(p *Packet) *Port {
	cands := s.routes[p.Dst]
	switch len(cands) {
	case 0:
		panic(fmt.Sprintf("net: switch %d has no route to host %d", s.id, p.Dst))
	case 1:
		return cands[0]
	}
	return cands[ecmpHash(p.Flow.Spec.ID, s.id, len(cands))]
}

// ecmpHash picks a deterministic per-flow member of an ECMP group. It
// mixes the switch id so consecutive switch layers do not make correlated
// choices.
func ecmpHash(flowID, switchID, n int) int {
	x := uint64(flowID)*0x9e3779b97f4a7c15 ^ uint64(switchID)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return int(x % uint64(n))
}
