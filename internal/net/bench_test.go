package net

import (
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// benchFabric builds a 4x4x4 leaf-spine carrying 128 cross-fabric flows —
// enough ECMP spread and queue contention to exercise the forwarding fast
// path, small enough to rebuild per benchmark iteration.
func benchFabric(tb testing.TB, flowBytes int64) (*sim.Engine, *Network) {
	tb.Helper()
	eng := sim.NewEngine()
	nw := New(eng, 1)
	tors := make([]*Switch, 4)
	spines := make([]*Switch, 4)
	for i := range tors {
		tors[i] = nw.AddSwitch()
	}
	for i := range spines {
		spines[i] = nw.AddSwitch()
	}
	uplinks := make([][]*Port, len(tors))
	downlinks := make([][]*Port, len(tors)) // [tor][spine]
	for ti, tor := range tors {
		for _, sp := range spines {
			up, down := nw.Connect(tor, sp, gbps100, usec)
			uplinks[ti] = append(uplinks[ti], up)
			downlinks[ti] = append(downlinks[ti], down)
		}
	}
	var hosts []*Host
	for ti, tor := range tors {
		for h := 0; h < 4; h++ {
			host := nw.AddHost()
			hosts = append(hosts, host)
			tp, _ := nw.Connect(tor, host, gbps100, usec)
			tor.AddRoute(host.NodeID(), tp)
			for si := range spines {
				spines[si].AddRoute(host.NodeID(), downlinks[ti][si])
			}
		}
	}
	for ti, tor := range tors {
		for hi, host := range hosts {
			if hi/4 != ti {
				tor.AddRoute(host.NodeID(), uplinks[ti]...)
			}
		}
	}
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 150_000, RateBps: gbps100}}
	id := 1
	for _, src := range hosts {
		for k := 1; k <= 8; k++ {
			dst := hosts[(src.NodeID()*3+k*5)%len(hosts)]
			if dst == src {
				continue
			}
			nw.AddFlow(FlowSpec{
				ID: id, Src: src.NodeID(), Dst: dst.NodeID(), Size: flowBytes,
			}, algo)
			id++
		}
	}
	return eng, nw
}

// BenchmarkFabricForwarding is the net-layer throughput key tracked by
// `cmd/ci -bench-compare`: events/sec through the full per-packet pipeline
// (flat-path switching, port serialization, host ACK turnaround) on a
// leaf-spine fabric. allocs/op catches any hot-path allocation creep.
func BenchmarkFabricForwarding(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		eng, nw := benchFabric(b, 150_000)
		eng.Run()
		if !nw.AllFinished() {
			b.Fatal("flows did not finish")
		}
		events += eng.Steps()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkSteadyStateStep measures the per-event cost in an established
// simulation (pools warm, paths resolved): the number the tentpole's
// fast-path work targets.
func BenchmarkSteadyStateStep(b *testing.B) {
	eng, nw := benchFabric(b, 2_000_000)
	// Warm up: pools filled, flat paths armed, queues busy.
	for i := 0; i < 50_000; i++ {
		if !eng.Step() {
			b.Fatal("simulation drained during warmup")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.Step() {
			b.StopTimer()
			// Rare at realistic b.N, but restartable: rebuild and refill.
			eng, nw = benchFabric(b, 2_000_000)
			for j := 0; j < 50_000; j++ {
				eng.Step()
			}
			b.StartTimer()
		}
	}
	_ = nw
}

// TestSteadyStateStepDoesNotAllocate pins the tentpole's allocation story:
// once pools are warm, the per-event hot path allocates nothing — packet
// pool misses and event-slot arena growth both stay exactly flat, and
// total allocations (including scheduler bucket recycling) stay far below
// one per thousand events.
func TestSteadyStateStepDoesNotAllocate(t *testing.T) {
	eng, nw := benchFabric(t, 2_000_000)
	for i := 0; i < 500_000; i++ {
		if !eng.Step() {
			t.Fatal("simulation drained during warmup")
		}
	}
	poolAllocs := nw.Stats().PoolAllocs
	slotAllocs := eng.Stats().EventAllocs
	allocs := testing.AllocsPerRun(5, func() {
		for i := 0; i < 50_000; i++ {
			if !eng.Step() {
				t.Fatal("simulation drained mid-measurement")
			}
		}
	})
	if d := nw.Stats().PoolAllocs - poolAllocs; d != 0 {
		t.Fatalf("steady state allocated %d fresh packets, want 0", d)
	}
	if d := eng.Stats().EventAllocs - slotAllocs; d != 0 {
		t.Fatalf("steady state allocated %d fresh event slots, want 0", d)
	}
	if allocs > 50 {
		t.Fatalf("steady-state stepping allocates %.1f objects per 50k events, want ~0", allocs)
	}
}
