package net

import (
	"testing"

	"faircc/internal/cc"
)

func TestNetworkStats(t *testing.T) {
	eng, nw, sw := star(t, 3, 1)
	a1 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	a2 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	nw.AddFlow(FlowSpec{ID: 1, Src: 1, Dst: 0, Size: 100_000}, a1)
	nw.AddFlow(FlowSpec{ID: 2, Src: 2, Dst: 0, Size: 100_000}, a2)

	st := nw.Stats()
	if st.Hosts != 3 || st.Switches != 1 || st.FlowsTotal != 2 {
		t.Fatalf("initial stats wrong: %+v", st)
	}
	if st.FlowsActive != 0 || st.FlowsFinished != 0 {
		t.Fatalf("flows counted before start: %+v", st)
	}

	eng.Run()
	st = nw.Stats()
	if st.FlowsFinished != 2 || st.FlowsActive != 0 {
		t.Fatalf("final flow counts wrong: %+v", st)
	}
	if st.PayloadSent != 200_000 || st.PayloadAcked != 200_000 {
		t.Fatalf("payload accounting wrong: %+v", st)
	}
	// The switch transmitted all data (plus headers) toward host 0 and
	// all ACKs back: more than the payload, less than 2x.
	wire := int64(200_000 + 200*48)
	if st.FabricTxBytes < wire || st.FabricTxBytes > wire+100*200 {
		t.Fatalf("fabric tx = %d, want wire data %d plus ACKs", st.FabricTxBytes, wire)
	}
	// Two line-rate senders into one port must have left a queue peak.
	if st.MaxQueuePeak < 50_000 {
		t.Fatalf("max queue peak = %d, want a substantial incast peak", st.MaxQueuePeak)
	}
	if st.QueuedBytes != 0 {
		t.Fatalf("queued bytes after drain = %d, want 0", st.QueuedBytes)
	}

	// Peak resets give a fresh window.
	nw.ResetQueuePeaks()
	if got := nw.Stats().MaxQueuePeak; got != 0 {
		t.Fatalf("peak after reset = %d, want 0", got)
	}

	ss := sw.Stats()
	if ss.Ports != 3 || ss.TxBytes != st.FabricTxBytes {
		t.Fatalf("switch stats inconsistent: %+v vs network %+v", ss, st)
	}
	if ss.BusiestPortTx < wire {
		t.Fatalf("busiest port tx = %d, want >= %d (the incast port)", ss.BusiestPortTx, wire)
	}
	ps := sw.Ports()[0].Stats()
	if ps.Bandwidth != gbps100 || ps.TxBytes == 0 {
		t.Fatalf("port stats wrong: %+v", ps)
	}
}

// The run-level packet counters: every data packet a finished run sent was
// delivered and acknowledged, and the packet pool actually recycles.
func TestPacketCounters(t *testing.T) {
	eng, nw, _ := star(t, 3, 1)
	a1 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	a2 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	nw.AddFlow(FlowSpec{ID: 1, Src: 1, Dst: 0, Size: 100_000}, a1)
	nw.AddFlow(FlowSpec{ID: 2, Src: 2, Dst: 0, Size: 100_000}, a2)
	eng.Run()

	st := nw.Stats()
	if st.DataSent == 0 {
		t.Fatal("no data packets counted")
	}
	// Lossless fabric, fully drained: every data packet arrived and was
	// acked one-for-one.
	if st.DataDelivered != st.DataSent {
		t.Fatalf("delivered %d != sent %d on a drained lossless run", st.DataDelivered, st.DataSent)
	}
	if st.AcksSent != st.DataDelivered {
		t.Fatalf("acks %d != deliveries %d", st.AcksSent, st.DataDelivered)
	}
	if st.PoolGets < st.DataSent {
		t.Fatalf("pool gets %d < data packets %d; sends bypassed the pool", st.PoolGets, st.DataSent)
	}
	if st.PoolAllocs > st.PoolGets {
		t.Fatalf("pool allocs %d > gets %d", st.PoolAllocs, st.PoolGets)
	}
	// 200 KB in 1000-byte packets cycles far more packets than can be live
	// at once, so the pool must have reused some.
	if r := st.PoolReuseRate(); r <= 0 || r >= 1 {
		t.Fatalf("pool reuse rate = %v, want in (0,1)", r)
	}
	if st.ECNMarks != 0 {
		t.Fatalf("ECN marks = %d with no RED config", st.ECNMarks)
	}
}

func TestPFCPauseCounter(t *testing.T) {
	eng, nw, _ := star(t, 3, 1)
	nw.PFCPauseBytes = 20_000
	nw.PFCResumeBytes = 10_000
	a1 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	a2 := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	nw.AddFlow(FlowSpec{ID: 1, Src: 1, Dst: 0, Size: 500_000}, a1)
	nw.AddFlow(FlowSpec{ID: 2, Src: 2, Dst: 0, Size: 500_000}, a2)
	eng.Run()
	st := nw.Stats()
	if st.PFCPauses == 0 {
		t.Fatal("2x overload past a 20KB threshold must emit pauses")
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Without PFC the counter stays zero.
	eng2, nw2, _ := star(t, 3, 1)
	nw2.AddFlow(FlowSpec{ID: 1, Src: 1, Dst: 0, Size: 100_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
	eng2.Run()
	if nw2.Stats().PFCPauses != 0 {
		t.Fatal("pauses counted with PFC disabled")
	}
}
