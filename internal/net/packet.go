// Package net implements the packet-level network model of the simulator:
// links with serialization and propagation delay, output-queued switches
// with FIFO egress queues, In-band Network Telemetry stamping, RED/ECN
// marking, optional PFC (priority flow control) for losslessness under
// finite buffers, and hosts running paced, windowed, per-packet-ACKed
// RDMA-style flows driven by a cc.Algorithm.
//
// The model corresponds to the ns-3 + HPCC-artifact setup the paper uses:
// every mechanism the evaluated protocols observe (queue growth,
// serialization, INT, ECN, per-packet ACKs) is modeled explicitly; packet
// payloads are not.
package net

import (
	"faircc/internal/cc"
	"faircc/internal/sim"
)

// Kind discriminates packet types.
type Kind uint8

const (
	// Data carries flow payload and collects INT telemetry hop by hop.
	Data Kind = iota
	// Ack acknowledges one data packet, echoing its telemetry, send
	// timestamp, and (when the receiver's CNP policy fires) an ECE mark.
	Ack
	// Pause and Resume are PFC control frames; they preempt data and are
	// never queued behind it.
	Pause
	Resume
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Pause:
		return "pause"
	case Resume:
		return "resume"
	}
	return "unknown"
}

// Packet is a simulated packet's hot core: the fixed-size state the
// forwarding path (switch dispatch, egress queues, transmitters,
// propagation) touches per hop, packed into 96 bytes — two cache lines —
// so a hop never pulls endpoint-only state into cache. Everything the
// endpoints (and INT stamping) need beyond that lives in the packet's
// side table (see packetSide); the two are co-allocated slab-by-slab and
// paired for the packet's whole pooled lifetime. Packets are pooled by
// the Network; user code must not retain them after handing them off.
type Packet struct {
	Kind Kind
	// hop counts the switches this packet has traversed; it is the cursor
	// into path. Pool-reset to zero before every send.
	hop uint8
	ECN bool // congestion-experienced mark set by RED
	ECE bool // ack: congestion echo (CNP); rides in hot padding for free
	// Wire is the total on-wire bytes (payload + header). int32: wire
	// sizes are bounded by MTU + header, and the narrower field keeps the
	// hot core inside two cache lines.
	Wire int32

	// path and pathEpoch are the flow's pre-resolved flat path (forward
	// for data, reverse for ACKs), stamped onto the packet at send time —
	// where the Flow struct is already in cache — so switch hops forward
	// with a single indexed load and never touch the Flow. The epoch
	// snapshot means a packet launched before a route change completes its
	// journey on the path it started with, exactly like a real switch
	// draining in-flight traffic; packets sent after the change fall back
	// to per-hop lookups (see Switch.Receive).
	path      []*Port
	pathEpoch uint64

	// dest and arrive implement allocation-free arrival events: arrive is
	// a closure over the packet built once per pooled Packet; dest is set
	// before each propagation hop. Invariant: a packet is in flight on at
	// most one link at a time, so the single closure (plus the dest field
	// as its argument slot) serves every hop — the same pre-bound-callback
	// pattern as Port.txDone and Flow.wake, which keeps the engine's
	// scheduling hot path allocation-free.
	dest   *Port
	arrive func()

	Flow *Flow
	Src  int32 // source host id (for routing)
	Dst  int32 // destination host id (for routing)
	Seq  int64

	ingress *Port // switch-internal: arrival port for PFC accounting

	// side is the packet's cold half, bound at slab allocation and kept
	// across pool recycling.
	side *packetSide
}

// packetSide is the cold half of a packet: state only the endpoints read
// or write (plus INT stamping at switch egress), split out of the hot
// core so per-hop forwarding, queueing, and transmission never touch it.
type packetSide struct {
	SentAt  sim.Time // data: when it left the sender; ack: echo of the same
	AckSeq  int64    // ack: cumulative payload bytes received
	Payload int32    // payload bytes (0 for control)
	Hops    []cc.Telemetry
}

// reset clears a pooled packet for reuse, keeping the side-table binding
// (with its grown Hops backing array) and the bound arrival closure.
func (p *Packet) reset() {
	s := p.side
	*s = packetSide{Hops: s.Hops[:0]}
	arrive := p.arrive
	*p = Packet{arrive: arrive, side: s}
}
