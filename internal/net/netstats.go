package net

// PortStats is a snapshot of one port's counters.
type PortStats struct {
	Bandwidth  float64
	TxBytes    int64
	QueueBytes int64
	QueuePeak  int64 // since the last ResetQueuePeak
}

// Stats snapshots a port.
func (pt *Port) Stats() PortStats {
	return PortStats{
		Bandwidth:  pt.bw,
		TxBytes:    pt.txBytes,
		QueueBytes: pt.q.Bytes(),
		QueuePeak:  pt.q.Peak(),
	}
}

// SwitchStats aggregates a switch's ports.
type SwitchStats struct {
	Ports         int
	TxBytes       int64
	QueuedBytes   int64
	MaxQueuePeak  int64
	BusiestPortTx int64
}

// Stats snapshots a switch.
func (s *Switch) Stats() SwitchStats {
	st := SwitchStats{Ports: len(s.ports)}
	for _, p := range s.ports {
		st.TxBytes += p.txBytes
		st.QueuedBytes += p.q.Bytes()
		if pk := p.q.Peak(); pk > st.MaxQueuePeak {
			st.MaxQueuePeak = pk
		}
		if p.txBytes > st.BusiestPortTx {
			st.BusiestPortTx = p.txBytes
		}
	}
	return st
}

// NetworkStats aggregates the whole network at a point in time.
type NetworkStats struct {
	Hosts, Switches int
	FlowsTotal      int
	FlowsActive     int
	FlowsFinished   int
	PayloadSent     int64 // payload bytes sent by all flows
	PayloadAcked    int64
	FabricTxBytes   int64 // wire bytes transmitted by all switch ports
	MaxQueuePeak    int64 // deepest egress queue seen on any switch port
	QueuedBytes     int64 // bytes currently sitting in switch queues
	PFCPauses       int64 // total PFC Pause frames emitted (0 unless PFC on)
}

// Stats snapshots the network. Peaks cover the period since the last
// ResetQueuePeaks (or the start of the simulation).
func (n *Network) Stats() NetworkStats {
	st := NetworkStats{
		Hosts:      len(n.hosts),
		Switches:   len(n.switches),
		FlowsTotal: len(n.flows),
	}
	for _, f := range n.flows {
		if f.Active() {
			st.FlowsActive++
		}
		if f.finished {
			st.FlowsFinished++
		}
		st.PayloadSent += f.sent
		st.PayloadAcked += f.acked
	}
	for _, s := range n.switches {
		ss := s.Stats()
		st.FabricTxBytes += ss.TxBytes
		st.QueuedBytes += ss.QueuedBytes
		if ss.MaxQueuePeak > st.MaxQueuePeak {
			st.MaxQueuePeak = ss.MaxQueuePeak
		}
		for _, p := range s.ports {
			st.PFCPauses += p.pausesSent
		}
	}
	return st
}

// ResetQueuePeaks clears all switch ports' queue high-water marks, so the
// next Stats reports peaks for a fresh measurement window.
func (n *Network) ResetQueuePeaks() {
	for _, s := range n.switches {
		for _, p := range s.ports {
			p.q.PeakReset()
		}
	}
}
