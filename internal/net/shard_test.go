package net

import (
	"strings"
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// shardChain rebuilds the multihop chain topology and splits it across
// two shards between switch sA and sA+1 (node ids: h0=0, h1=1, switches
// 2..). It returns the network ready for AddFlow.
func shardChain(t *testing.T, bws []float64, cut int) (*Network, []*Switch) {
	t.Helper()
	_, nw, sws := chain(t, bws)
	n := len(sws)
	assign := make([]int, 2+n)
	assign[1] = 1 // h1 hangs off the last switch
	for i := range sws {
		if i > cut {
			assign[2+i] = 1
		}
	}
	nw.Shard(assign, 2)
	return nw, sws
}

// TestShardCrossTrafficMatchesSequential runs the same deterministic
// (PRNG-free) two-flow workload on a 3-switch chain sequentially and cut
// across two shards, and requires bit-identical completion times: with no
// random draws and no same-timestamp cross-flow ties, the mailbox handoff
// must reproduce the sequential event order exactly.
func TestShardCrossTrafficMatchesSequential(t *testing.T) {
	bws := []float64{gbps100, 40e9, 40e9, gbps100}
	type result struct{ fwd, rev sim.Time }
	run := func(shards bool, cut int) result {
		t.Helper()
		var nw *Network
		var eng *sim.Engine
		if shards {
			nw, _ = shardChain(t, bws, cut)
		} else {
			eng, nw, _ = chain(t, bws)
		}
		algo := func() *fixedAlgo {
			return &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
		}
		fwd := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 300_000}, algo())
		rev := nw.AddFlow(FlowSpec{ID: 2, Src: 1, Dst: 0, Size: 200_000, Start: 5 * usec}, algo())
		if shards {
			if err := nw.NewParallel().Run(); err != nil {
				t.Fatal(err)
			}
		} else {
			eng.Run()
		}
		if !fwd.Finished() || !rev.Finished() {
			t.Fatal("flows did not finish")
		}
		if err := nw.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		return result{fwd.FinishedAt, rev.FinishedAt}
	}
	seq := run(false, 0)
	for cut := 0; cut < 2; cut++ {
		par := run(true, cut)
		if par != seq {
			t.Fatalf("cut after switch %d: FCTs %+v, sequential %+v", cut, par, seq)
		}
	}
}

// TestShardWindowLookahead checks the parallel window is the minimum
// propagation delay over cross-shard links only — intra-shard links may
// be faster without shrinking the lookahead.
func TestShardWindowLookahead(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 1)
	h0, h1 := nw.AddHost(), nw.AddHost()
	s0, s1 := nw.AddSwitch(), nw.AddSwitch()
	p0, _ := nw.Connect(s0, h0, gbps100, 100*sim.Nanosecond) // intra-shard
	s0.AddRoute(h0.NodeID(), p0)
	up, down := nw.Connect(s0, s1, gbps100, 3*usec) // cross-shard
	s0.AddRoute(h1.NodeID(), up)
	s1.AddRoute(h0.NodeID(), down)
	p1, _ := nw.Connect(s1, h1, gbps100, 100*sim.Nanosecond) // intra-shard
	s1.AddRoute(h1.NodeID(), p1)

	if nw.Window() != 0 {
		t.Fatalf("unsharded window = %v, want 0", nw.Window())
	}
	nw.Shard([]int{0, 1, 0, 1}, 2)
	if nw.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", nw.Shards())
	}
	if nw.Window() != 3*usec {
		t.Fatalf("window = %v, want %v (the cross-shard link delay)", nw.Window(), 3*usec)
	}
	if got := len(nw.ShardEngines()); got != 2 {
		t.Fatalf("ShardEngines() has %d engines, want 2", got)
	}
	// Per-pair lookahead: the one cross-shard link bounds both directions.
	for _, dir := range [][2]int{{0, 1}, {1, 0}} {
		if got := nw.PairWindow(dir[0], dir[1]); got != 3*usec {
			t.Fatalf("PairWindow(%d,%d) = %v, want %v", dir[0], dir[1], got, 3*usec)
		}
	}
	for s := 0; s < 2; s++ {
		if got := nw.PairWindow(s, s); got != 0 {
			t.Fatalf("PairWindow(%d,%d) = %v, want 0 (no self link)", s, s, got)
		}
	}
}

// TestShardPairWindows checks the per-pair lookahead matrix on an
// asymmetric 3-shard chain: each pair reports its own direct-link delay,
// and unconnected pairs report zero (sim.Parallel derives their relay
// bound itself).
func TestShardPairWindows(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 1)
	h0, h1 := nw.AddHost(), nw.AddHost()
	s0, s1, s2 := nw.AddSwitch(), nw.AddSwitch(), nw.AddSwitch()
	p0, _ := nw.Connect(s0, h0, gbps100, 100*sim.Nanosecond)
	s0.AddRoute(h0.NodeID(), p0)
	up01, down01 := nw.Connect(s0, s1, gbps100, 2*usec) // shard 0 <-> 1
	up12, down12 := nw.Connect(s1, s2, gbps100, 5*usec) // shard 1 <-> 2
	s0.AddRoute(h1.NodeID(), up01)
	s1.AddRoute(h1.NodeID(), up12)
	s1.AddRoute(h0.NodeID(), down01)
	s2.AddRoute(h0.NodeID(), down12)
	p1, _ := nw.Connect(s2, h1, gbps100, 100*sim.Nanosecond)
	s2.AddRoute(h1.NodeID(), p1)

	//            h0 h1 s0 s1 s2
	nw.Shard([]int{0, 2, 0, 1, 2}, 3)
	want := map[[2]int]sim.Time{
		{0, 1}: 2 * usec, {1, 0}: 2 * usec,
		{1, 2}: 5 * usec, {2, 1}: 5 * usec,
		{0, 2}: 0, {2, 0}: 0, // no direct link
	}
	for pair, w := range want {
		if got := nw.PairWindow(pair[0], pair[1]); got != w {
			t.Fatalf("PairWindow(%d,%d) = %v, want %v", pair[0], pair[1], got, w)
		}
	}
	if nw.Window() != 2*usec {
		t.Fatalf("global window = %v, want %v", nw.Window(), 2*usec)
	}
}

// TestShardValidation checks every misuse Shard refuses: calling it too
// late (after flows or scheduled events), twice, or with a malformed
// assignment.
func TestShardValidation(t *testing.T) {
	build := func() (*sim.Engine, *Network) {
		eng := sim.NewEngine()
		nw := New(eng, 1)
		st := nw.AddSwitch()
		h := nw.AddHost()
		sp, _ := nw.Connect(st, h, gbps100, usec)
		st.AddRoute(h.NodeID(), sp)
		return eng, nw
	}
	mustPanic := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: expected panic", name)
				return
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, want) {
				t.Errorf("%s: panic %v, want substring %q", name, r, want)
			}
		}()
		fn()
	}

	mustPanic("after AddFlow", "before AddFlow", func() {
		_, nw := build()
		h2 := nw.AddHost()
		_ = h2
		nw.AddFlow(FlowSpec{ID: 1, Src: 1, Dst: 1, Size: 1}, &fixedAlgo{})
		nw.Shard([]int{0, 0, 0}, 1)
	})
	mustPanic("after scheduling", "before scheduling", func() {
		eng, nw := build()
		eng.At(0, func() {})
		nw.Shard([]int{0, 0}, 1)
	})
	mustPanic("k < 1", "< 1", func() {
		_, nw := build()
		nw.Shard([]int{0, 0}, 0)
	})
	mustPanic("short assignment", "covers", func() {
		_, nw := build()
		nw.Shard([]int{0}, 2)
	})
	mustPanic("out of range", "want [0,2)", func() {
		_, nw := build()
		nw.Shard([]int{0, 5}, 2)
	})
	mustPanic("double shard", "already sharded", func() {
		_, nw := build()
		nw.Shard([]int{0, 1}, 2)
		nw.Shard([]int{0, 1}, 2)
	})
	mustPanic("zero-delay cross link", "zero propagation delay", func() {
		eng := sim.NewEngine()
		nw := New(eng, 1)
		s0, s1 := nw.AddSwitch(), nw.AddSwitch()
		nw.Connect(s0, s1, gbps100, 0)
		nw.Shard([]int{0, 1}, 2)
	})

	// k == 1 is a no-op, not an error: the network stays sequential.
	_, nw := build()
	nw.Shard([]int{0, 0}, 1)
	if nw.Shards() != 1 {
		t.Fatalf("k=1 Shard left %d shards", nw.Shards())
	}
}
