package net

import (
	"math"
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

func TestIdealFCTSinglePacket(t *testing.T) {
	_, nw, _ := star(t, 2, 1)
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 1000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
	// One packet: ideal = pipeline fill only = 2 links of (prop + ser).
	want := 2 * (usec + sim.TransmitTime(1048, gbps100))
	if got := f.IdealFCT(); got != want {
		t.Fatalf("IdealFCT = %v, want %v", got, want)
	}
}

func TestIdealFCTLargeFlow(t *testing.T) {
	_, nw, _ := star(t, 2, 1)
	const size = 1_000_000
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: size},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
	// 1000 packets: fill + 999 packets' wire bytes at the bottleneck.
	fill := 2 * (usec + sim.TransmitTime(1048, gbps100))
	rest := sim.Time(float64(999*1048) * 8 * 1e12 / gbps100)
	want := fill + rest
	if got := f.IdealFCT(); got != want {
		t.Fatalf("IdealFCT = %v, want %v", got, want)
	}
}

func TestSlowdownUncontendedNearOne(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 2_000_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
	eng.Run()
	if s := f.Slowdown(); s < 1 || s > 1.01 {
		t.Fatalf("uncontended slowdown = %v, want within 1%% of ideal", s)
	}
}

func TestSlowdownReflectsContention(t *testing.T) {
	eng, nw, _ := star(t, 3, 1)
	a := nw.AddFlow(FlowSpec{ID: 1, Src: 1, Dst: 0, Size: 1_000_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
	b := nw.AddFlow(FlowSpec{ID: 2, Src: 2, Dst: 0, Size: 1_000_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
	eng.Run()
	// Two line-rate flows share one link: each gets ~half, so slowdowns
	// land near 2 (the later-arriving bytes of one flow drain after the
	// other finishes, so 1.5-2x covers both).
	for _, f := range []*Flow{a, b} {
		if s := f.Slowdown(); s < 1.4 || s > 2.2 {
			t.Fatalf("contended slowdown = %v, want ~1.5-2", s)
		}
	}
}

func TestDeliveredAtPrecedesFinishedAt(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	f := nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 50_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
	eng.Run()
	if f.DeliveredAt <= 0 || f.FinishedAt <= f.DeliveredAt {
		t.Fatalf("DeliveredAt %v must be set and precede FinishedAt %v",
			f.DeliveredAt, f.FinishedAt)
	}
	// The gap is the ACK's return path: ~2us propagation + ACK
	// serialization.
	gap := f.FinishedAt - f.DeliveredAt
	if gap < 2*usec || gap > 2*usec+sim.Microsecond {
		t.Fatalf("ack-path gap = %v, want just above 2us", gap)
	}
}

func TestPacketPoolReuse(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	nw.AddFlow(FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 1_000_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
	eng.Run()
	// 1000 data + 1000 acks flowed, but the pool bounds live packets to
	// the in-flight set; after the run everything is recycled.
	if len(nw.shards[0].pool) == 0 {
		t.Fatal("packet pool empty after run; recycling broken")
	}
	if len(nw.shards[0].pool) > 200 {
		t.Fatalf("pool grew to %d packets; expected bounded by in-flight window", len(nw.shards[0].pool))
	}
	// Recycled packets must be clean.
	for _, p := range nw.shards[0].pool {
		if p.Flow != nil || p.side.Payload != 0 || p.ECN || len(p.side.Hops) != 0 {
			t.Fatalf("dirty packet in pool: %+v", p)
		}
		if p.arrive == nil {
			t.Fatal("pooled packet lost its arrival closure")
		}
	}
}

func TestProbePathMatchesAddFlow(t *testing.T) {
	_, nw, _ := star(t, 3, 1)
	spec := FlowSpec{ID: 9, Src: 1, Dst: 2, Size: 1000}
	hops, baseRTT, minBw, err := nw.ProbePath(spec)
	if err != nil {
		t.Fatalf("ProbePath: %v", err)
	}
	f := nw.AddFlow(spec, &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
	if hops != f.Hops() || baseRTT != f.BaseRTT() {
		t.Fatalf("ProbePath (%d, %v) disagrees with AddFlow (%d, %v)",
			hops, baseRTT, f.Hops(), f.BaseRTT())
	}
	if minBw != gbps100 {
		t.Fatalf("minBw = %v, want 100G", minBw)
	}
}

func TestSlowdownMonotoneInContention(t *testing.T) {
	// More competing senders => larger slowdown for the measured flow.
	slow := func(contenders int) float64 {
		eng, nw, _ := star(t, contenders+2, 1)
		f := nw.AddFlow(FlowSpec{ID: 1, Src: 1, Dst: 0, Size: 500_000},
			&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
		for i := 0; i < contenders; i++ {
			nw.AddFlow(FlowSpec{ID: 10 + i, Src: 2 + i, Dst: 0, Size: 500_000},
				&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}})
		}
		eng.Run()
		return f.Slowdown()
	}
	s0, s2, s6 := slow(0), slow(2), slow(6)
	if !(s0 < s2 && s2 < s6) {
		t.Fatalf("slowdowns not monotone in contention: %v, %v, %v", s0, s2, s6)
	}
	if math.Abs(s0-1) > 0.01 {
		t.Fatalf("uncontended slowdown = %v, want ~1", s0)
	}
}
