package net

import (
	"testing"

	"faircc/internal/cc"
	"faircc/internal/sim"
)

// macroPair runs the same scenario with macro-event trains off and on and
// requires bit-identical outcomes: every flow's completion and delivery
// times and the full network counter snapshot (minus the elision counter
// itself) must match exactly. It returns the train-fused run's stats so
// scenarios can assert the condition they force actually occurred.
func macroPair(t *testing.T, nHosts int, seed int64, setup func(eng *sim.Engine, nw *Network, sw *Switch)) NetworkStats {
	t.Helper()
	run := func(macro bool) ([]sim.Time, NetworkStats) {
		eng, nw, sw := star(t, nHosts, seed)
		nw.MacroEvents = macro
		setup(eng, nw, sw)
		eng.Run()
		if !nw.AllFinished() {
			t.Fatalf("macro=%v: flows did not finish", macro)
		}
		if err := nw.CheckConservation(); err != nil {
			t.Fatalf("macro=%v: %v", macro, err)
		}
		var times []sim.Time
		for _, f := range nw.Flows() {
			times = append(times, f.FinishedAt, f.DeliveredAt)
		}
		return times, nw.Stats()
	}
	offT, offSt := run(false)
	onT, onSt := run(true)
	if offSt.EventsElided != 0 {
		t.Fatalf("elided %d events with the knob off", offSt.EventsElided)
	}
	for i := range offT {
		if offT[i] != onT[i] {
			t.Fatalf("flow time %d diverged: per-packet %v vs trains %v", i, offT[i], onT[i])
		}
	}
	scrubbed := onSt
	scrubbed.EventsElided = 0
	if offSt != scrubbed {
		t.Fatalf("counters diverged beyond the elision count:\nper-packet %+v\ntrains     %+v", offSt, onSt)
	}
	return onSt
}

// lineRateFlow adds a flow paced exactly at line rate with an open window —
// the cadence where every cut-through send's pacing wakeup lands at the
// drain instant and the train stays armed packet to packet.
func lineRateFlow(nw *Network, id, src, dst int, size int64, start sim.Time) *Flow {
	algo := &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: gbps100}}
	return nw.AddFlow(FlowSpec{ID: id, Src: src, Dst: dst, Size: size, Start: start}, algo)
}

// TestMacroTrainElidesAtLineRate pins the base case: an uncontended
// line-rate flow fuses nearly every pacing wakeup into the drain that
// precedes it, and the results are bit-identical to per-packet execution.
func TestMacroTrainElidesAtLineRate(t *testing.T) {
	st := macroPair(t, 2, 1, func(eng *sim.Engine, nw *Network, sw *Switch) {
		lineRateFlow(nw, 1, 0, 1, 500_000, 0)
	})
	// 500 KB / 1000-byte MTU is ~500 packets; all but the first send of
	// each burst ride the train.
	if st.EventsElided < 400 {
		t.Fatalf("elided %d wakeups, want the bulk of ~500 sends", st.EventsElided)
	}
}

// TestMacroTrainDissolvesUnderPFCPause: a 2:1 incast with PFC on pauses
// the senders' uplinks mid-train. A pause parks the transmitter, so the
// armed drain still fires and the fused wakeup must behave exactly like a
// scheduled one that finds the port paused.
func TestMacroTrainDissolvesUnderPFCPause(t *testing.T) {
	st := macroPair(t, 3, 2, func(eng *sim.Engine, nw *Network, sw *Switch) {
		nw.PFCPauseBytes = 20_000
		lineRateFlow(nw, 1, 0, 2, 300_000, 0)
		lineRateFlow(nw, 2, 1, 2, 300_000, 0)
	})
	if st.PFCPauses == 0 {
		t.Fatal("scenario never paused; PFC dissolution unexercised")
	}
	if st.EventsElided == 0 {
		t.Fatal("no train armed under the incast; dissolution unexercised")
	}
}

// TestMacroTrainDissolvesUnderTailDrop: a finite egress buffer tail-drops
// mid-incast and go-back-N rewinds senders. An RTO rewind moves nextSend
// under an armed train — the explicit disarm path — and a tail-dropped
// packet returns to the pool, which the pointer-compared train anchor must
// never follow.
func TestMacroTrainDissolvesUnderTailDrop(t *testing.T) {
	st := macroPair(t, 3, 3, func(eng *sim.Engine, nw *Network, sw *Switch) {
		nw.LossRecovery = true
		nw.BufferBytes = 20_000
		lineRateFlow(nw, 1, 0, 2, 300_000, 0)
		lineRateFlow(nw, 2, 1, 2, 300_000, 0)
	})
	if st.BufferDrops == 0 || st.Retransmits == 0 {
		t.Fatalf("scenario never dropped and recovered (drops=%d rtx=%d); dissolution unexercised",
			st.BufferDrops, st.Retransmits)
	}
	if st.EventsElided == 0 {
		t.Fatal("no train armed under the incast; dissolution unexercised")
	}
}

// TestMacroTrainDissolvesOnRouteEpochBump: a mid-run AddRoute bumps the
// network's route epoch, invalidating every in-flight packet's flat path.
// Trains armed across the bump must forward identically to per-packet
// execution (the packet in the transmitter re-resolves per hop).
func TestMacroTrainDissolvesOnRouteEpochBump(t *testing.T) {
	st := macroPair(t, 2, 4, func(eng *sim.Engine, nw *Network, sw *Switch) {
		lineRateFlow(nw, 1, 0, 1, 500_000, 0)
		// Re-adding the same egress port turns the destination's route into
		// a (degenerate) ECMP group: packets still take the same wire, but
		// the epoch bump forces every later send off the flat fast path.
		to1 := sw.RouteCandidates(1)[0]
		eng.At(20*usec, func() { sw.AddRoute(1, to1) })
	})
	if st.EventsElided == 0 {
		t.Fatal("no train armed across the epoch bump; dissolution unexercised")
	}
}

// TestMacroTrainDissolvesUnderLinkFlap: the sender's uplink goes down
// mid-train, losing in-flight packets until the flap ends. The armed drain
// fires into a dead link exactly as a scheduled wakeup would, and recovery
// re-arms trains afterwards.
func TestMacroTrainDissolvesUnderLinkFlap(t *testing.T) {
	st := macroPair(t, 2, 5, func(eng *sim.Engine, nw *Network, sw *Switch) {
		nw.LossRecovery = true
		lineRateFlow(nw, 1, 0, 1, 500_000, 0)
		nw.Hosts()[0].Port().ScheduleFlap(10*usec, 20*usec)
	})
	if st.WireDrops == 0 || st.RTOFires == 0 {
		t.Fatalf("flap never lost anything (wire=%d rto=%d); dissolution unexercised",
			st.WireDrops, st.RTOFires)
	}
	if st.EventsElided == 0 {
		t.Fatal("no train armed around the flap; dissolution unexercised")
	}
}

// TestMacroTrainSteadyStateZeroAlloc pins the armed-train hot path at zero
// allocations: arming stores two fields and a pointer, and the drain runs
// the wakeup body inline, so a line-rate train in steady state must not
// allocate at all.
func TestMacroTrainSteadyStateZeroAlloc(t *testing.T) {
	eng, nw, _ := star(t, 2, 1)
	nw.MacroEvents = true
	lineRateFlow(nw, 1, 0, 1, 1<<40, 0)
	for i := 0; i < 100_000; i++ {
		if !eng.Step() {
			t.Fatal("simulation drained during warmup")
		}
	}
	before := nw.Stats()
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 10_000; i++ {
			if !eng.Step() {
				t.Fatal("simulation drained mid-measurement")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("armed-train steady state allocates %.1f per 10k events, want 0", allocs)
	}
	after := nw.Stats()
	if after.EventsElided <= before.EventsElided {
		t.Fatal("measured loop never rode the train")
	}
	if after.PoolAllocs != before.PoolAllocs {
		t.Fatalf("pool grew during steady state: %d -> %d", before.PoolAllocs, after.PoolAllocs)
	}
}
