package net

// Host is an end host with a single network uplink. It sources flows
// (paced and windowed by their congestion-control algorithm) and, as a
// receiver, acknowledges every arriving data packet, echoing INT telemetry
// and the sender timestamp, and applying the network's CNP policy to ECN
// marks.
type Host struct {
	net  *Network
	sh   *shard // execution shard (shard 0 until Network.Shard rebinds)
	id   int
	port *Port
}

// NodeID implements Node.
func (h *Host) NodeID() int { return h.id }

// Port returns the host's uplink port (nil until connected).
func (h *Host) Port() *Port { return h.port }

// Receive implements Node.
func (h *Host) Receive(p *Packet, in *Port) {
	switch p.Kind {
	case Pause:
		in.pausedBy = true
		h.sh.putPacket(p)
		return
	case Resume:
		in.pausedBy = false
		h.sh.putPacket(p)
		in.kick()
		return
	case Data:
		h.receiveData(p)
	case Ack:
		f := p.Flow
		f.onAck(p)
		h.sh.putPacket(p)
	}
}

func (h *Host) receiveData(p *Packet) {
	f := p.Flow
	if int(p.Dst) != h.id {
		panic("net: data packet delivered to wrong host")
	}
	if p.Seq == f.delivered {
		f.delivered += int64(p.side.Payload)
		h.sh.dataDelivered++
		if f.delivered >= f.Spec.Size {
			f.DeliveredAt = h.sh.eng.Now()
		}
		if hook := h.net.Hooks.OnDeliver; hook != nil {
			hook(f, p.Seq, int(p.side.Payload))
		}
	} else {
		// Out of sequence: a gap means a drop upstream (go-back-N will
		// refill it), below the cursor is a retransmit overlap. Discard
		// the payload either way — the ACK below re-advertises the
		// cumulative position, which the sender treats as a dup. On
		// lossless paths delivery is FIFO, so this branch never runs and
		// lossless behavior is unchanged.
		h.sh.dataOutOfSeq++
	}

	if h.net.AckCoalesce {
		if pa := f.pendingAck; pa != nil {
			// An earlier ACK for this flow is still waiting in our uplink
			// queue (Port.kick clears the handle the instant it leaves for
			// the wire). Fold this acknowledgement into it in place:
			// advance the cumulative position, replace the echoed
			// telemetry and timestamp with the newest sample, and OR in
			// the congestion echo under the same CNP policy the
			// per-packet path applies. No new control event exists —
			// the merged ACK's serialization, per-hop forwarding, and
			// sender processing all disappear from the run.
			pa.side.AckSeq = f.delivered
			pa.side.SentAt = p.side.SentAt
			pa.side.Hops = append(pa.side.Hops[:0], p.side.Hops...)
			if p.ECN {
				now := h.sh.eng.Now()
				if h.net.CNPInterval == 0 || now-f.lastCNP >= h.net.CNPInterval {
					pa.ECE = true
					f.lastCNP = now
				}
			}
			h.sh.putPacket(p)
			h.sh.acksCoalesced++
			return
		}
	}

	ack := h.sh.getPacket()
	ack.Kind = Ack
	ack.Flow = f
	ack.Src = int32(h.id)
	ack.Dst = p.Src
	ack.Wire = int32(h.net.AckBytes)
	ack.side.AckSeq = f.delivered
	ack.side.SentAt = p.side.SentAt
	// Stamp the reverse flat path while the Flow is hot in cache; switch
	// hops then forward without touching it (see Packet.path).
	ack.path, ack.pathEpoch = f.revPath, f.pathEpoch
	// Echo the collected telemetry by copying into the ACK's own backing
	// array. The old backing-array swap traded slices between the data
	// packet and the ACK, which permanently demoted the data packet to the
	// ACK's (typically nil) backing — so every later reuse of that pooled
	// packet re-grew a Hops array from scratch, a steady-state allocation
	// per forwarding. A copy of at most a few Telemetry records lets both
	// packets keep their grown backing forever.
	ack.side.Hops = append(ack.side.Hops[:0], p.side.Hops...)
	if p.ECN {
		now := h.sh.eng.Now()
		if h.net.CNPInterval == 0 || now-f.lastCNP >= h.net.CNPInterval {
			ack.ECE = true
			f.lastCNP = now
		}
	}
	h.sh.putPacket(p)
	h.sh.acksSent++
	if h.port.send(ack) && h.net.AckCoalesce {
		// The ACK is waiting in the uplink queue: remember it so later
		// arrivals coalesce into it instead of queuing behind it. (A
		// cut-through or tail-dropped ACK returns false and is already out
		// of reach.)
		f.pendingAck = ack
	}
}
