package net

import (
	"fmt"
	"math/rand"

	"faircc/internal/sim"
)

// shard owns the per-run mutable execution state for one partition of the
// topology: its own engine (event queue and clock), PRNG streams, packet
// pool, and lifetime counters. A sequential network is simply one shard
// (shard 0, wrapping Network.Eng) — every node, port and flow is bound to
// it at construction, so the unsharded hot path is unchanged except for
// reading these fields through the shard pointer instead of the network.
//
// After Network.Shard(k > 1), each node's ports and flows are rebound to
// their partition's shard, and nothing a shard touches while executing is
// shared writable with another shard: engines, pools, PRNGs and counters
// are per-shard; flow sender state runs on the sender's shard and
// receiver state on the receiver's; the only cross-shard interaction is
// packet handoff through sim.Outbox at link-propagation boundaries.
// Network-level config fields (MTU, PFC thresholds, drop probabilities,
// routeEpoch, ...) are read-only during a run and safely shared.
type shard struct {
	net *Network
	id  int
	eng *sim.Engine

	rand      *rand.Rand
	faultRand *rand.Rand // fault-injection draws; isolated from rand
	nowFn     func() sim.Time

	pool []*Packet

	// Lifetime counters (summed across shards by Network.Stats). Pure
	// accounting: no code path branches on them, so they cannot perturb
	// simulation results.
	dataSent      int64
	dataDelivered int64
	acksSent      int64
	acksCoalesced int64 // acknowledgements folded into a queued ACK (AckCoalesce)
	wakesElided   int64 // pacing wakeups fused into port drains (MacroEvents)
	ecnMarks      int64
	poolGets      int64
	poolAllocs    int64
	dropsData     int64
	dropsAck      int64
	dropsBuffer   int64
	dropsWire     int64
	retransmits   int64
	rtoFires      int64
	dupAcks       int64
	dataOutOfSeq  int64
}

// shardSeedStride separates per-shard PRNG streams: shard i seeds with
// base + i*stride (an odd 64-bit constant, so strides never collide for
// realistic shard counts). Shard 0 seeds with exactly the base seed, which
// is what keeps single-shard runs bit-identical to the pre-sharding
// sequential simulator.
const shardSeedStride = int64(-0x61c8_8646_80b5_83eb) // 0x9e3779b97f4a7c15 as int64

func newShard(n *Network, id int, eng *sim.Engine) *shard {
	seed := n.seed + int64(id)*shardSeedStride
	return &shard{
		net:       n,
		id:        id,
		eng:       eng,
		rand:      rand.New(rand.NewSource(seed)),
		faultRand: rand.New(rand.NewSource(seed ^ 0x5dee_c0de)),
		nowFn:     eng.Now,
	}
}

// packetSlab is how many packets a pool miss allocates at once. Slab
// allocation lays the hot cores out contiguously (and the side tables in
// a parallel slab), so a burst that grows the pool leaves its packets
// cache-dense instead of scattered across the heap, and the allocator
// runs once per slab rather than once per packet. Packets still migrate
// between shard pools individually — the side binding is a pointer, so a
// packet recycled into another shard keeps its own side table.
const packetSlab = 64

// getPacket returns a pooled packet with its arrival closure bound.
// Packets migrate between shards with the traffic: a packet obtained from
// one shard's pool is recycled into the pool of whatever shard it finishes
// on. Ownership is unambiguous at every instant — exactly one shard holds
// the packet (it is either in a queue, in flight on that shard's engine,
// or in a mailbox between barrier phases).
func (sh *shard) getPacket() *Packet {
	sh.poolGets++
	if m := len(sh.pool); m > 0 {
		p := sh.pool[m-1]
		sh.pool = sh.pool[:m-1]
		return p
	}
	// Pool miss: carve a fresh slab. poolAllocs still counts misses (the
	// steady-state health signal), not packets.
	sh.poolAllocs++
	pkts := make([]Packet, packetSlab)
	sides := make([]packetSide, packetSlab)
	for i := range pkts {
		p := &pkts[i]
		p.side = &sides[i]
		p.arrive = func() {
			if d := p.dest; d.ownSw != nil {
				d.ownSw.Receive(p, d)
			} else if d.ownHost != nil {
				d.ownHost.Receive(p, d)
			} else {
				d.owner.Receive(p, d)
			}
		}
		if i > 0 {
			sh.pool = append(sh.pool, p)
		}
	}
	return &pkts[0]
}

// putPacket recycles a packet into this shard's pool. The pool is
// uncapped: its length is bounded by the peak number of simultaneously
// live packets (every pooled packet was allocated for a moment when that
// many were in flight), so an explicit cap only creates steady-state pool
// misses — which is exactly what the PoolAllocs counter flags.
func (sh *shard) putPacket(p *Packet) {
	p.reset()
	sh.pool = append(sh.pool, p)
}

// dropInTransit decides whether fault injection loses p on the wire. PFC
// control frames are never randomly dropped: modeling their loss without
// a PFC-level watchdog would just deadlock the fabric.
func (sh *shard) dropInTransit(p *Packet) bool {
	n := sh.net
	switch p.Kind {
	case Data:
		if n.DropDataProb > 0 && sh.faultRand.Float64() < n.DropDataProb {
			return true
		}
		if n.DropFilter != nil && n.DropFilter(Data, p.Flow.Spec.ID, p.Seq) {
			return true
		}
	case Ack:
		if n.DropAckProb > 0 && sh.faultRand.Float64() < n.DropAckProb {
			return true
		}
		if n.DropFilter != nil && n.DropFilter(Ack, p.Flow.Spec.ID, p.side.AckSeq) {
			return true
		}
	}
	return false
}

// drop accounts for a lost packet and recycles it. Any PFC ingress bytes
// the packet still holds are credited back, so a drop can never wedge the
// pause accounting (the ingress port is always on this shard: a packet
// only carries ingress attribution while inside one node).
func (sh *shard) drop(p *Packet, cause DropCause) {
	if p.ingress != nil {
		p.ingress.creditIngress(int64(p.Wire))
		p.ingress = nil
	}
	switch p.Kind {
	case Data:
		sh.dropsData++
	case Ack:
		sh.dropsAck++
	}
	if cause == DropTail {
		sh.dropsBuffer++
	} else {
		sh.dropsWire++
	}
	if h := sh.net.Hooks.OnDrop; h != nil {
		seq := p.Seq
		if p.Kind == Ack {
			seq = p.side.AckSeq
		}
		h(p.Flow, p.Kind, seq, cause)
	}
	sh.putPacket(p)
}

// Shard partitions the network for parallel execution: assignment maps
// every node id (hosts and switches alike) to a shard in [0, k). Each
// shard gets its own engine, packet pool and PRNG streams; ports whose
// peer lives on a different shard hand packets over through mailboxes
// instead of scheduling the arrival locally. The lookahead window is the
// minimum propagation delay over all cross-shard links.
//
// Shard must be called after the topology is built (nodes, links, routes)
// and before any flow is added or event scheduled — it rebinds execution
// state that flows and scheduled closures capture. k <= 1 is a no-op: the
// network stays exactly the sequential single-shard simulator.
//
// Determinism: a given (seed, topology, assignment, k) is bit-identical
// across repetitions — see sim.Parallel. Different k (or assignments)
// produce statistically equivalent but not identical runs: sharding
// re-partitions the PRNG streams and the tie order of same-timestamp
// events at shard boundaries.
func (n *Network) Shard(assignment []int, k int) {
	if len(n.flows) > 0 {
		panic("net: Shard must be called before AddFlow")
	}
	if n.Eng.Pending() != 0 {
		panic("net: Shard must be called before scheduling events")
	}
	if len(n.shards) > 1 {
		panic("net: network is already sharded")
	}
	if k < 1 {
		panic(fmt.Sprintf("net: shard count %d < 1", k))
	}
	if len(assignment) < n.nextID {
		panic(fmt.Sprintf("net: assignment covers %d nodes, network has %d", len(assignment), n.nextID))
	}
	if k == 1 {
		return
	}
	for id := 0; id < n.nextID; id++ {
		if s := assignment[id]; s < 0 || s >= k {
			panic(fmt.Sprintf("net: node %d assigned to shard %d, want [0,%d)", id, s, k))
		}
	}
	for i := 1; i < k; i++ {
		n.shards = append(n.shards, newShard(n, i, sim.NewEngine()))
	}
	n.mail = sim.NewMailboxes(k)
	n.winPair = make([]sim.Time, k*k)
	rebind := func(node Node, ports []*Port) {
		sh := n.shards[assignment[node.NodeID()]]
		for _, pt := range ports {
			pt.sh = sh
			pt.eng = sh.eng
		}
	}
	for _, h := range n.hosts {
		h.sh = n.shards[assignment[h.id]]
		if h.port != nil {
			rebind(h, []*Port{h.port})
		}
	}
	for _, s := range n.switches {
		s.sh = n.shards[assignment[s.id]]
		rebind(s, s.ports)
	}
	// Wire the cross-shard handoffs and derive the lookahead window.
	for _, h := range n.hosts {
		if h.port != nil {
			n.bindCrossShard(h.port)
		}
	}
	for _, s := range n.switches {
		for _, pt := range s.ports {
			n.bindCrossShard(pt)
		}
	}
}

// bindCrossShard points pt at its mailbox when its peer lives on another
// shard, and folds the link delay into the lookahead: both the global
// minimum (Window, kept for observability) and the per-(src,dst) pair
// matrix that sim.Parallel uses to widen each shard's horizon when the
// binding pair is idle.
func (n *Network) bindCrossShard(pt *Port) {
	src, dst := pt.sh.id, pt.peer.sh.id
	if src == dst {
		return
	}
	if pt.delay <= 0 {
		panic(fmt.Sprintf("net: cross-shard link %d->%d has zero propagation delay (no lookahead)",
			pt.owner.NodeID(), pt.peer.owner.NodeID()))
	}
	pt.xmail = n.mail.Outbox(src, dst)
	if n.window == 0 || pt.delay < n.window {
		n.window = pt.delay
	}
	if w := &n.winPair[src*len(n.shards)+dst]; *w == 0 || pt.delay < *w {
		*w = pt.delay
	}
}

// Shards returns the number of execution shards (1 unless Shard was
// called with k > 1).
func (n *Network) Shards() int { return len(n.shards) }

// Window returns the global parallel lookahead: the minimum propagation
// delay of any cross-shard link (0 when unsharded or when no link crosses
// shards). The runner itself uses the finer per-pair matrix, PairWindow.
func (n *Network) Window() sim.Time { return n.window }

// PairWindow returns the per-pair lookahead: the minimum propagation delay
// of any src->dst cross-shard link, or 0 when no link connects the pair
// directly (the pair then never bounds each other's horizon within one
// epoch; multi-hop influence is bounded hop by hop at the barriers).
func (n *Network) PairWindow(src, dst int) sim.Time {
	if n.winPair == nil {
		return 0
	}
	return n.winPair[src*len(n.shards)+dst]
}

// ShardEngines returns the per-shard engines in shard-id order. For an
// unsharded network this is just [Eng].
func (n *Network) ShardEngines() []*sim.Engine {
	engines := make([]*sim.Engine, len(n.shards))
	for i, sh := range n.shards {
		engines[i] = sh.eng
	}
	return engines
}

// NewParallel builds the barrier-synchronized runner for a sharded
// network, with AllFinished as the stop condition. Valid for a single
// shard too (one worker, no mailboxes), though the sequential
// Engine.Step loop is faster there.
func (n *Network) NewParallel() *sim.Parallel {
	return sim.NewParallel(n.ShardEngines(), n.mail, sim.ParallelConfig{
		Window:  n.window,
		Windows: n.winPair,
		Done:    n.AllFinished,
	})
}
