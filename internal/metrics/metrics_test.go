package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"faircc/internal/cc"
	"faircc/internal/net"
	"faircc/internal/sim"
	"faircc/internal/stats"
)

type fixedAlgo struct{ ctl cc.Control }

func (a *fixedAlgo) Name() string                 { return "fixed" }
func (a *fixedAlgo) Init(cc.Env) cc.Control       { return a.ctl }
func (a *fixedAlgo) OnAck(cc.Feedback) cc.Control { return a.ctl }

func rateAlgo(bps float64) cc.Algorithm {
	return &fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: bps}}
}

func buildStar(nHosts int) (*sim.Engine, *net.Network, *net.Switch) {
	eng := sim.NewEngine()
	nw := net.New(eng, 1)
	hosts := make([]*net.Host, nHosts)
	for i := range hosts {
		hosts[i] = nw.AddHost()
	}
	sw := nw.AddSwitch()
	for _, h := range hosts {
		sp, _ := nw.Connect(sw, h, 100e9, sim.Microsecond)
		sw.AddRoute(h.NodeID(), sp)
	}
	return eng, nw, sw
}

func TestSeriesTimeToReach(t *testing.T) {
	s := &Series{Points: []Point{
		{10, 0.5}, {20, 0.96}, {30, 0.8}, {40, 0.97}, {50, 0.99},
	}}
	if got := s.TimeToReach(0.95); got != 40 {
		t.Fatalf("TimeToReach = %v, want 40 (must settle, not just touch)", got)
	}
	if got := s.TimeToReach(0.999); got != -1 {
		t.Fatalf("TimeToReach unreachable = %v, want -1", got)
	}
	if s.Last() != 0.99 {
		t.Fatalf("Last = %v, want 0.99", s.Last())
	}
	var empty Series
	if empty.Last() != 0 {
		t.Fatal("empty Last should be 0")
	}
}

func TestSampleJainEqualFlows(t *testing.T) {
	eng, nw, _ := buildStar(3)
	// Two equal senders to separate receivers: no contention, equal
	// goodput, Jain stays ~1.
	nw.AddFlow(net.FlowSpec{ID: 1, Src: 0, Dst: 2, Size: 2_000_000}, rateAlgo(40e9))
	nw.AddFlow(net.FlowSpec{ID: 2, Src: 1, Dst: 2, Size: 2_000_000}, rateAlgo(40e9))
	s := SampleJain(nw, "j", 10*sim.Microsecond, 20*sim.Microsecond, sim.Millisecond)
	eng.Run()
	if len(s.Points) == 0 {
		t.Fatal("no samples")
	}
	for _, p := range s.Points {
		if p.V < 0.98 {
			t.Fatalf("Jain = %v at %v for equal flows, want ~1", p.V, p.T)
		}
	}
}

func TestSampleJainUnequalFlows(t *testing.T) {
	eng, nw, _ := buildStar(3)
	// A 4:1 goodput split: Jain = (5)^2/(2*17) ≈ 0.735.
	nw.AddFlow(net.FlowSpec{ID: 1, Src: 0, Dst: 2, Size: 4_000_000}, rateAlgo(40e9))
	nw.AddFlow(net.FlowSpec{ID: 2, Src: 1, Dst: 2, Size: 1_000_000}, rateAlgo(10e9))
	s := SampleJain(nw, "j", 20*sim.Microsecond, 40*sim.Microsecond, 700*sim.Microsecond)
	eng.Run()
	if len(s.Points) < 5 {
		t.Fatalf("too few samples: %d", len(s.Points))
	}
	want := 25.0 / 34
	mid := s.Points[len(s.Points)/2]
	if math.Abs(mid.V-want) > 0.05 {
		t.Fatalf("Jain = %v, want ~%v for a 4:1 split", mid.V, want)
	}
}

func TestSampleQueue(t *testing.T) {
	eng, nw, sw := buildStar(3)
	nw.AddFlow(net.FlowSpec{ID: 1, Src: 1, Dst: 0, Size: 1_000_000}, rateAlgo(100e9))
	nw.AddFlow(net.FlowSpec{ID: 2, Src: 2, Dst: 0, Size: 1_000_000}, rateAlgo(100e9))
	s := SampleQueue(eng, sw.Ports()[0], "q", sim.Microsecond, 0, sim.Millisecond)
	eng.Run()
	peak := 0.0
	for _, p := range s.Points {
		if p.V > peak {
			peak = p.V
		}
	}
	// 2:1 overload while both flows last: queue must build substantially.
	if peak < 100_000 {
		t.Fatalf("sampled queue peak = %v, want > 100KB under 2x overload", peak)
	}
	if s.Points[0].V != 0 {
		t.Fatalf("queue at t=0 = %v, want 0", s.Points[0].V)
	}
}

func TestFCTRecorderAndSlowdown(t *testing.T) {
	eng, nw, _ := buildStar(2)
	rec := &FCTRecorder{}
	rec.Attach(nw)
	nw.AddFlow(net.FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 1_000_000}, rateAlgo(100e9))
	eng.Run()
	if len(rec.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(rec.Records))
	}
	r := rec.Records[0]
	// Uncontended line-rate flow: slowdown must be very close to 1.
	if r.Slowdown < 1 || r.Slowdown > 1.1 {
		t.Fatalf("uncontended slowdown = %v, want ~1", r.Slowdown)
	}
	if r.Size != 1_000_000 || r.FCT <= 0 {
		t.Fatalf("bad record: %+v", r)
	}
}

func TestFCTRecorderChainsCallback(t *testing.T) {
	eng, nw, _ := buildStar(2)
	called := 0
	nw.OnFlowFinish = func(*net.Flow) { called++ }
	rec := &FCTRecorder{}
	rec.Attach(nw)
	nw.AddFlow(net.FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 10_000}, rateAlgo(100e9))
	eng.Run()
	if called != 1 || len(rec.Records) != 1 {
		t.Fatalf("chained callback called=%d records=%d, want 1 and 1", called, len(rec.Records))
	}
}

func TestBucketBySize(t *testing.T) {
	var recs []FlowRecord
	// 100 flows sized 1..100 KB; slowdown grows with size; flow of size i
	// KB has slowdown i.
	for i := 1; i <= 100; i++ {
		recs = append(recs, FlowRecord{ID: i, Size: int64(i * 1000), Slowdown: float64(i)})
	}
	buckets := BucketBySize(recs, 10, 99.9)
	if len(buckets) != 10 {
		t.Fatalf("buckets = %d, want 10", len(buckets))
	}
	for i, b := range buckets {
		if b.Count != 10 {
			t.Fatalf("bucket %d count = %d, want 10", i, b.Count)
		}
		wantMax := int64((i + 1) * 10 * 1000)
		if b.MaxSize != wantMax {
			t.Fatalf("bucket %d max = %d, want %d", i, b.MaxSize, wantMax)
		}
		// p99.9 of 10 values ≈ the largest.
		if math.Abs(b.Slowdown-float64((i+1)*10)) > 0.5 {
			t.Fatalf("bucket %d slowdown = %v, want ~%d", i, b.Slowdown, (i+1)*10)
		}
	}
	// Monotone x.
	for i := 1; i < len(buckets); i++ {
		if buckets[i].MaxSize <= buckets[i-1].MaxSize {
			t.Fatal("bucket sizes not increasing")
		}
	}
	if got := BucketBySize(nil, 10, 50); got != nil {
		t.Fatal("empty records should give nil buckets")
	}
	// More buckets than records degrades gracefully.
	small := BucketBySize(recs[:3], 100, 50)
	if len(small) != 3 {
		t.Fatalf("tiny input buckets = %d, want 3", len(small))
	}
}

func TestSlowdownAbove(t *testing.T) {
	recs := []FlowRecord{
		{Size: 100, Slowdown: 1},
		{Size: 2_000_000, Slowdown: 30},
		{Size: 5_000_000, Slowdown: 40},
	}
	got, err := SlowdownAbove(recs, 1_000_000, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != 35 {
		t.Fatalf("median long-flow slowdown = %v, want 35", got)
	}
	if _, err := SlowdownAbove(recs, 10_000_000, 50); err == nil {
		t.Fatal("expected error when no flows qualify")
	}
}

func TestStartFinish(t *testing.T) {
	recs := []FlowRecord{
		{Start: 20 * sim.Microsecond, FCT: 100 * sim.Microsecond},
		{Start: 0, FCT: 150 * sim.Microsecond},
	}
	pts := StartFinish(recs)
	if len(pts) != 2 || pts[0].T != 0 || pts[1].T != 20*sim.Microsecond {
		t.Fatalf("points not start-ordered: %+v", pts)
	}
	if pts[0].V != 150 || pts[1].V != 120 {
		t.Fatalf("finish times wrong: %+v", pts)
	}
}

func TestSampleUtilization(t *testing.T) {
	eng, nw, sw := buildStar(2)
	nw.AddFlow(net.FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 2_000_000}, rateAlgo(50e9))
	s := SampleUtilization(eng, sw.Ports()[1], "u", 10*sim.Microsecond, 0, sim.Millisecond)
	eng.Run()
	if len(s.Points) < 10 {
		t.Fatalf("too few samples: %d", len(s.Points))
	}
	// Mid-flow utilization of the port toward host 1: ~50% (paced at
	// 50G on a 100G link, slightly above with headers). The flow lasts
	// ~335us; sample well inside it.
	mid := s.Points[10].V
	if mid < 0.45 || mid > 0.6 {
		t.Fatalf("mid utilization = %v, want ~0.52", mid)
	}
	// After the flow ends, utilization drops to ~0.
	last := s.Points[len(s.Points)-1].V
	if last > 0.05 {
		t.Fatalf("post-flow utilization = %v, want ~0", last)
	}
	// Never above 1 (+epsilon for boundary effects).
	for _, p := range s.Points {
		if p.V > 1.01 {
			t.Fatalf("utilization %v exceeds capacity", p.V)
		}
	}
}

// TestPercentileSortedMatchesReference pins the sort-once fast path in
// BucketBySize and SlowdownAbove to the reference stats.Percentile on the
// same (unsorted) data: the optimization must be invisible in the output.
func TestPercentileSortedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := make([]FlowRecord, 997) // non-round count: uneven buckets
	for i := range recs {
		recs[i] = FlowRecord{
			ID:       i,
			Size:     int64(rng.Intn(5_000_000) + 1),
			Slowdown: 1 + rng.Float64()*40,
		}
	}
	for _, pct := range []float64{0, 25, 50, 95, 99.9, 100} {
		buckets := BucketBySize(recs, 100, pct)
		ref := append([]FlowRecord(nil), recs...)
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].Size != ref[j].Size {
				return ref[i].Size < ref[j].Size
			}
			return ref[i].ID < ref[j].ID
		})
		for b := 0; b < 100; b++ {
			lo, hi := b*len(ref)/100, (b+1)*len(ref)/100
			if lo == hi {
				continue
			}
			var slow []float64
			for _, r := range ref[lo:hi] {
				slow = append(slow, r.Slowdown)
			}
			want := stats.Percentile(slow, pct)
			if got := buckets[b].Slowdown; got != want {
				t.Fatalf("pct=%v bucket %d: got %v, want reference %v", pct, b, got, want)
			}
		}

		var tail []float64
		for _, r := range recs {
			if r.Size > 2_000_000 {
				tail = append(tail, r.Slowdown)
			}
		}
		got, err := SlowdownAbove(recs, 2_000_000, pct)
		if err != nil {
			t.Fatalf("SlowdownAbove: %v", err)
		}
		if want := stats.Percentile(tail, pct); got != want {
			t.Fatalf("pct=%v SlowdownAbove: got %v, want reference %v", pct, got, want)
		}
	}
}
