package metrics

import (
	"fmt"
	"math"
	"sync"

	"faircc/internal/net"
	"faircc/internal/sim"
	"faircc/internal/stats"
)

// DefaultMaxExact is the per-accumulator retained-sample cap when
// Accumulator.MaxExact is zero. Below it the streamed percentile path is
// bit-for-bit identical to the retained-slice path; above it the
// accumulator folds into a bounded log-spaced histogram. Every experiment
// in the repository today finishes fewer flows than this per class, so
// the approximation only ever engages at scales where retaining records
// is what the streaming layer exists to avoid (a fig10-full run peaked
// around 6.4 GB of retained per-flow state).
const DefaultMaxExact = 1 << 16

// histBuckets is the log-spaced bucket count of an overflowed
// accumulator: 64 buckets per decade over 12 decades (1e-6 .. 1e6 around
// histRefScale) — resolution ~3.7% per bucket, a few KB of memory.
const (
	histBuckets    = 768
	histDecades    = 12
	histMinExp     = -6.0
	perDecadeCount = histBuckets / histDecades
)

// Accumulator is a streaming distribution: values are added one at a time
// and only a bounded amount of state is retained. Up to MaxExact values
// it keeps the exact sample, so Percentile matches stats.Percentile on
// the retained slice bit-for-bit; past the cap it folds everything into a
// fixed log-spaced histogram and Percentile interpolates within buckets.
// Count, Sum, Min and Max stay exact in both regimes. The zero value is
// ready to use. Accumulator is not goroutine-safe; ClassCollector adds
// the locking that sharded runs need.
type Accumulator struct {
	// MaxExact caps the retained sample (0 means DefaultMaxExact).
	MaxExact int

	count    int64
	sum      float64
	min, max float64
	exact    []float64
	hist     []int64 // nil until the exact cap overflows
}

// Add folds one value into the accumulator.
func (a *Accumulator) Add(v float64) {
	if a.count == 0 || v < a.min {
		a.min = v
	}
	if a.count == 0 || v > a.max {
		a.max = v
	}
	a.count++
	a.sum += v
	if a.hist == nil {
		limit := a.MaxExact
		if limit == 0 {
			limit = DefaultMaxExact
		}
		if len(a.exact) < limit {
			a.exact = append(a.exact, v)
			return
		}
		// Overflow: fold the exact sample into the histogram and drop it.
		a.hist = make([]int64, histBuckets)
		for _, x := range a.exact {
			a.hist[histBucket(x)]++
		}
		a.exact = nil
	}
	a.hist[histBucket(v)]++
}

// histBucket maps a value to its log-spaced bucket.
func histBucket(v float64) int {
	if v <= 0 {
		return 0
	}
	b := int((math.Log10(v) - histMinExp) * perDecadeCount)
	if b < 0 {
		return 0
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// histBucketLo returns the lower edge of bucket b.
func histBucketLo(b int) float64 {
	return math.Pow(10, histMinExp+float64(b)/perDecadeCount)
}

// Count returns the number of values added.
func (a *Accumulator) Count() int64 { return a.count }

// Sum returns the exact running sum.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the exact mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 {
	if a.count == 0 {
		return 0
	}
	return a.sum / float64(a.count)
}

// Min and Max return the exact extremes (0 for an empty accumulator).
func (a *Accumulator) Min() float64 { return a.min }
func (a *Accumulator) Max() float64 { return a.max }

// Retained returns how many exact samples the accumulator currently
// holds — the quantity the streaming layer bounds.
func (a *Accumulator) Retained() int { return len(a.exact) }

// Exact reports whether Percentile is still on the bit-for-bit path.
func (a *Accumulator) Exact() bool { return a.hist == nil }

// Percentile returns the p-th percentile. On the exact path it delegates
// to stats.Percentile over the retained sample — bit-for-bit what the
// retained-slice pipeline computes. On the histogram path it
// linearly interpolates within the covering bucket, clamped to the exact
// [Min, Max]. It panics on an empty accumulator, like stats.Percentile.
func (a *Accumulator) Percentile(p float64) float64 {
	if a.hist == nil {
		return stats.Percentile(a.exact, p)
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of [0,100]", p))
	}
	// Rank in [0, count-1], matching the order-statistic convention of
	// stats.Percentile.
	rank := p / 100 * float64(a.count-1)
	var seen int64
	for b, c := range a.hist {
		if c == 0 {
			continue
		}
		if float64(seen+c) > rank {
			// Interpolate the rank within this bucket's value range.
			lo, hi := histBucketLo(b), histBucketLo(b+1)
			frac := (rank - float64(seen)) / float64(c)
			v := lo + frac*(hi-lo)
			if v < a.min {
				v = a.min
			}
			if v > a.max {
				v = a.max
			}
			return v
		}
		seen += c
	}
	return a.max
}

// ClassDist is one RTT class's streamed completion statistics.
type ClassDist struct {
	Label    string
	Flows    int64
	Bytes    int64
	FCTUsec  Accumulator // flow completion times, microseconds
	Slowdown Accumulator // FCT / ideal FCT
}

// ClassCollector folds finished flows into bounded per-class accumulators
// as they finish, instead of retaining per-flow records until the end of
// the run — the streaming-metrics contract: memory is O(classes x
// MaxExact) however many flows the run completes. It is safe on sharded
// networks (finish callbacks fire on worker goroutines; every fold takes
// the collector's mutex).
type ClassCollector struct {
	mu      sync.Mutex
	classOf func(*net.Flow) int
	classes []ClassDist
	peak    int
}

// NewClassCollector builds a collector with one ClassDist per label;
// classOf maps a finishing flow to its class index. maxExact caps each
// accumulator's retained sample (0 means DefaultMaxExact).
func NewClassCollector(labels []string, classOf func(*net.Flow) int, maxExact int) *ClassCollector {
	c := &ClassCollector{classOf: classOf, classes: make([]ClassDist, len(labels))}
	for i, l := range labels {
		c.classes[i].Label = l
		c.classes[i].FCTUsec.MaxExact = maxExact
		c.classes[i].Slowdown.MaxExact = maxExact
	}
	return c
}

// Attach registers the collector on the network, chaining any existing
// OnFlowFinish callback.
func (c *ClassCollector) Attach(nw *net.Network) {
	prev := nw.OnFlowFinish
	nw.OnFlowFinish = func(f *net.Flow) {
		if prev != nil {
			prev(f)
		}
		c.Fold(f)
	}
}

// Fold accumulates one finished flow.
func (c *ClassCollector) Fold(f *net.Flow) {
	cl := c.classOf(f)
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl < 0 || cl >= len(c.classes) {
		panic(fmt.Sprintf("metrics: flow %d classed %d, want [0,%d)",
			f.Spec.ID, cl, len(c.classes)))
	}
	d := &c.classes[cl]
	d.Flows++
	d.Bytes += f.Spec.Size
	d.FCTUsec.Add(f.FCT().Microseconds())
	d.Slowdown.Add(f.Slowdown())
	if r := c.retainedLocked(); r > c.peak {
		c.peak = r
	}
}

func (c *ClassCollector) retainedLocked() int {
	n := 0
	for i := range c.classes {
		n += c.classes[i].FCTUsec.Retained() + c.classes[i].Slowdown.Retained()
	}
	return n
}

// Classes returns the per-class distributions. Call only after the run —
// it copies under the lock so callers never race with late folds.
func (c *ClassCollector) Classes() []ClassDist {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ClassDist, len(c.classes))
	copy(out, c.classes)
	return out
}

// PeakRetained returns the high-water count of exact samples held across
// all accumulators — the gauge the CI bench gate tracks so the streaming
// layer's bounded-memory claim cannot silently rot.
func (c *ClassCollector) PeakRetained() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peak
}

// JainClassSeries is SampleJainClasses' result: the aggregate fairness
// series over all active flows plus one series per class.
type JainClassSeries struct {
	All     *Series
	ByClass []*Series
}

// SampleJainClasses periodically computes Jain fairness of active flows'
// goodput, both aggregate and within each class, from start until until.
// It must be the only goodput sampler on the network: the per-interval
// deltas come from Flow.TakeDeliveredDelta, which consumes the mark, so
// a second concurrent sampler would see half-intervals. That is why the
// per-class and aggregate indices come from one tick chain rather than
// one SampleJain per class. Aggregate samples are recorded while at least
// two flows are active (SampleJain's convention); a class's series gains
// a point only when that class has at least two active flows.
func SampleJainClasses(nw *net.Network, labels []string, classOf func(*net.Flow) int,
	every, start, until sim.Time) *JainClassSeries {
	out := &JainClassSeries{All: &Series{Label: "all"}}
	for _, l := range labels {
		out.ByClass = append(out.ByClass, &Series{Label: l})
	}
	n := len(labels)
	rates := make([]float64, 0, 64)
	classes := make([]int, 0, 64)
	counts := make([]int, n)
	var tick func()
	tick = func() {
		now := nw.Eng.Now()
		rates, classes = rates[:0], classes[:0]
		for i := range counts {
			counts[i] = 0
		}
		for _, f := range nw.Flows() {
			if f.Active() {
				rates = append(rates, float64(f.TakeDeliveredDelta()))
				cl := classOf(f)
				classes = append(classes, cl)
				counts[cl]++
			} else if f.Started() {
				f.TakeDeliveredDelta() // keep marks current across finishes
			}
		}
		if len(rates) >= 2 {
			out.All.Points = append(out.All.Points, Point{T: now, V: stats.Jain(rates)})
			byClass := stats.JainByClass(rates, classes, n)
			for c, s := range out.ByClass {
				if counts[c] >= 2 {
					s.Points = append(s.Points, Point{T: now, V: byClass[c]})
				}
			}
		}
		if now+every <= until {
			nw.Eng.After(every, tick)
		}
	}
	nw.Eng.At(start, tick)
	return out
}
