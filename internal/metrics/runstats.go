package metrics

import (
	"fmt"
	"runtime"
	"time"

	"faircc/internal/net"
	"faircc/internal/sim"
)

// RunStats is the run-level observability snapshot: the engine and network
// counters of one or more simulations (an experiment typically runs one
// simulation per protocol variant or seed), plus wall-clock rates and
// process memory filled in by Finish. It is the record future performance
// PRs compare against — "measurably faster" means a higher EventsPerSec on
// the same experiment and scale.
type RunStats struct {
	Runs int `json:"runs"` // simulations aggregated into this snapshot

	// Engine counters (summed across runs).
	Events          uint64 `json:"events"` // events executed
	EventsScheduled uint64 `json:"events_scheduled"`
	EventsCancelled uint64 `json:"events_cancelled"`
	PeakPending     int    `json:"peak_events_pending"` // max over runs
	// EventSlotAllocs is the engine's event-arena growth (fresh slot
	// allocations, as opposed to free-list reuse), summed across runs. On
	// a steady workload it should track peak pending, not event count —
	// a higher value means the scheduling hot path is allocating.
	EventSlotAllocs uint64 `json:"event_slot_allocs"`

	// Simulated time covered, summed across runs.
	SimSeconds float64 `json:"sim_seconds"`

	// Network counters (summed across runs).
	DataSent      int64 `json:"data_pkts_sent"`
	DataDelivered int64 `json:"data_pkts_delivered"`
	AcksSent      int64 `json:"acks_sent"`
	// AcksCoalesced counts acknowledgements folded into an already-queued
	// ACK by receiver-side coalescing (Network.AckCoalesce). Omitted when
	// zero so manifests of historical (and default-config) runs keep their
	// exact key set. AcksSent + AcksCoalesced == DataDelivered + DataOutOfSeq.
	AcksCoalesced int64 `json:"acks_coalesced,omitempty"`
	// EventsElided counts pacing wakeups fused into the port drain that
	// precedes them by macro-event trains (Network.MacroEvents). Each one is
	// a scheduler round trip that never happened; simulation results are
	// bit-identical either way. Omitted when zero so manifests of historical
	// (and default-config) runs keep their exact key set.
	EventsElided  int64   `json:"events_elided,omitempty"`
	ECNMarks      int64   `json:"ecn_marks"`
	PFCPauses     int64   `json:"pfc_pauses"`
	PoolGets      int64   `json:"pool_gets"`
	PoolAllocs    int64   `json:"pool_allocs"`
	PoolReuseRate float64 `json:"pool_reuse_rate"`

	// Loss and recovery counters (summed across runs; all zero on
	// lossless runs, so manifests of historical experiments are unchanged
	// apart from the new always-present keys).
	DataDrops    int64 `json:"data_drops"`
	AckDrops     int64 `json:"ack_drops"`
	BufferDrops  int64 `json:"buffer_drops"`
	WireDrops    int64 `json:"wire_drops"`
	Retransmits  int64 `json:"retransmits"`
	RTOFires     int64 `json:"rto_fires"`
	DupAcks      int64 `json:"dup_acks"`
	DataOutOfSeq int64 `json:"data_out_of_seq"`

	// Egress-queue capacity management (net.NetworkStats.QueueCapPeak /
	// QueueShrinks): the largest ring capacity any egress queue reached (max
	// across runs) and the halvings the underuse policy performed (summed).
	// Omitted when zero — runs too small to grow past the initial capacity
	// keep their historical key set.
	QueueCapPeak int64 `json:"queue_cap_peak,omitempty"`
	QueueShrinks int64 `json:"queue_shrinks,omitempty"`

	// Parallel-execution figures (omitted from JSON on sequential runs,
	// so historical manifests keep their exact key set). Shards is the
	// shard count (max across runs when aggregating); ShardEvents is the
	// per-shard executed-event split (elementwise sum across runs of the
	// same shape — the load-balance record for the scaling curve); Epochs
	// counts barrier-synchronized windows (summed across runs).
	Shards      int      `json:"shards,omitempty"`
	ShardEvents []uint64 `json:"shard_events,omitempty"`
	Epochs      uint64   `json:"epochs,omitempty"`

	// PeakFCTRecords is the high-water count of retained per-flow FCT
	// samples across the experiment's runs (max over runs): len(records)
	// on the classic collect-at-end path, ClassCollector.PeakRetained on
	// the streaming path. It is the memory gauge the CI bench gate tracks
	// — the streaming refactor's bounded-retention claim rots silently if
	// this grows with flow count again. Omitted when no collector reported
	// (e.g. the fluid model), keeping those manifests' key sets unchanged.
	PeakFCTRecords int `json:"peak_fct_records,omitempty"`

	// Wall-clock figures, filled in by Finish.
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`

	// Process heap at snapshot time (runtime.MemStats), filled in by
	// Finish. PeakHeapBytes is HeapSys: the high-water footprint the runs
	// demanded from the OS.
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	PeakHeapBytes   uint64 `json:"peak_heap_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
}

// CollectRun snapshots one finished simulation's engine and network
// counters as a single-run RunStats.
func CollectRun(eng *sim.Engine, nw *net.Network) RunStats {
	s := RunStats{Runs: 1}
	s.addEngine(eng.Stats())
	s.SimSeconds = eng.Now().Seconds()
	s.fillNetwork(nw.Stats())
	return s
}

// CollectSharded snapshots one finished parallel simulation: engine
// counters summed over the network's shard engines, the per-shard event
// split, and the epoch (barrier window) count from sim.Parallel.Epochs.
// Simulated time is the max over shards — they cover the same interval,
// each clock stopping at its shard's last event.
func CollectSharded(nw *net.Network, epochs uint64) RunStats {
	s := RunStats{Runs: 1}
	engines := nw.ShardEngines()
	s.Shards = len(engines)
	s.ShardEvents = make([]uint64, len(engines))
	for i, eng := range engines {
		s.addEngine(eng.Stats())
		s.ShardEvents[i] = eng.Steps()
		if t := eng.Now().Seconds(); t > s.SimSeconds {
			s.SimSeconds = t
		}
	}
	s.Epochs = epochs
	s.fillNetwork(nw.Stats())
	return s
}

func (s *RunStats) addEngine(es sim.EngineStats) {
	s.Events += es.Steps
	s.EventsScheduled += es.Scheduled
	s.EventsCancelled += es.Cancelled
	if es.PeakPending > s.PeakPending {
		s.PeakPending = es.PeakPending
	}
	s.EventSlotAllocs += es.EventAllocs
}

func (s *RunStats) fillNetwork(ns net.NetworkStats) {
	s.DataSent = ns.DataSent
	s.DataDelivered = ns.DataDelivered
	s.AcksSent = ns.AcksSent
	s.AcksCoalesced = ns.AcksCoalesced
	s.EventsElided = ns.EventsElided
	s.ECNMarks = ns.ECNMarks
	s.PFCPauses = ns.PFCPauses
	s.PoolGets = ns.PoolGets
	s.PoolAllocs = ns.PoolAllocs
	s.DataDrops = ns.DataDrops
	s.AckDrops = ns.AckDrops
	s.BufferDrops = ns.BufferDrops
	s.WireDrops = ns.WireDrops
	s.Retransmits = ns.Retransmits
	s.RTOFires = ns.RTOFires
	s.DupAcks = ns.DupAcks
	s.DataOutOfSeq = ns.DataOutOfSeq
	s.QueueCapPeak = ns.QueueCapPeak
	s.QueueShrinks = ns.QueueShrinks
}

// Add merges another snapshot into s (summing counters, taking the max of
// per-run peaks). Rates are recomputed by Finish.
func (s *RunStats) Add(o RunStats) {
	s.Runs += o.Runs
	s.Events += o.Events
	s.EventsScheduled += o.EventsScheduled
	s.EventsCancelled += o.EventsCancelled
	if o.PeakPending > s.PeakPending {
		s.PeakPending = o.PeakPending
	}
	s.EventSlotAllocs += o.EventSlotAllocs
	s.SimSeconds += o.SimSeconds
	s.DataSent += o.DataSent
	s.DataDelivered += o.DataDelivered
	s.AcksSent += o.AcksSent
	s.AcksCoalesced += o.AcksCoalesced
	s.ECNMarks += o.ECNMarks
	s.PFCPauses += o.PFCPauses
	s.PoolGets += o.PoolGets
	s.PoolAllocs += o.PoolAllocs
	s.DataDrops += o.DataDrops
	s.AckDrops += o.AckDrops
	s.BufferDrops += o.BufferDrops
	s.WireDrops += o.WireDrops
	s.Retransmits += o.Retransmits
	s.RTOFires += o.RTOFires
	s.DupAcks += o.DupAcks
	s.DataOutOfSeq += o.DataOutOfSeq
	s.EventsElided += o.EventsElided
	s.QueueShrinks += o.QueueShrinks
	if o.QueueCapPeak > s.QueueCapPeak {
		s.QueueCapPeak = o.QueueCapPeak
	}
	if o.PeakFCTRecords > s.PeakFCTRecords {
		s.PeakFCTRecords = o.PeakFCTRecords
	}
	if o.Shards > s.Shards {
		s.Shards = o.Shards
	}
	s.Epochs += o.Epochs
	if len(o.ShardEvents) > 0 {
		if len(s.ShardEvents) < len(o.ShardEvents) {
			s.ShardEvents = append(s.ShardEvents, make([]uint64, len(o.ShardEvents)-len(s.ShardEvents))...)
		}
		for i, v := range o.ShardEvents {
			s.ShardEvents[i] += v
		}
	}
}

// Finish records the wall-clock duration the runs took, derives the rates,
// and captures process memory. Call it once, after the last Add.
func (s *RunStats) Finish(wall time.Duration) {
	s.WallSeconds = wall.Seconds()
	if s.WallSeconds > 0 {
		s.EventsPerSec = float64(s.Events) / s.WallSeconds
	}
	if s.PoolGets > 0 {
		s.PoolReuseRate = 1 - float64(s.PoolAllocs)/float64(s.PoolGets)
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.HeapAllocBytes = m.HeapAlloc
	s.PeakHeapBytes = m.HeapSys
	s.TotalAllocBytes = m.TotalAlloc
	s.NumGC = m.NumGC
}

// String renders the headline numbers for terminal output. Loss-path
// counters are appended only when the run actually dropped or recovered
// anything, so lossless output is unchanged.
func (s RunStats) String() string {
	out := fmt.Sprintf(
		"%d run(s): %d events in %.2fs (%.2fM ev/s), %d data pkts, %d acks, "+
			"%d ECN marks, %d PFC pauses, pool reuse %.1f%%, "+
			"%d event slot allocs, peak heap %.1f MB",
		s.Runs, s.Events, s.WallSeconds, s.EventsPerSec/1e6,
		s.DataSent, s.AcksSent, s.ECNMarks, s.PFCPauses,
		100*s.PoolReuseRate, s.EventSlotAllocs, float64(s.PeakHeapBytes)/1e6)
	if drops := s.DataDrops + s.AckDrops; drops > 0 || s.Retransmits > 0 {
		out += fmt.Sprintf(", %d drops (%d buffer, %d wire), %d retransmits, %d RTOs",
			drops, s.BufferDrops, s.WireDrops, s.Retransmits, s.RTOFires)
	}
	if s.AcksCoalesced > 0 {
		out += fmt.Sprintf(", %d acks coalesced", s.AcksCoalesced)
	}
	if s.EventsElided > 0 {
		out += fmt.Sprintf(", %d events elided", s.EventsElided)
	}
	if s.Shards > 1 {
		out += fmt.Sprintf(", %d shards, %d epochs", s.Shards, s.Epochs)
	}
	return out
}
