package metrics

import (
	"math"
	"math/rand"
	"testing"

	"faircc/internal/net"
	"faircc/internal/sim"
	"faircc/internal/stats"
)

// TestAccumulatorExactBitForBit: below the retained cap, the streamed
// percentile path must be the retained-slice path — identical floats, not
// merely close — for the percentiles every figure pipeline asks for.
func TestAccumulatorExactBitForBit(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 5000)
	var a Accumulator
	for i := range xs {
		// Slowdown-shaped values: >= 1, heavy tail.
		xs[i] = 1 + math.Exp(r.NormFloat64()*2)
		a.Add(xs[i])
	}
	if !a.Exact() {
		t.Fatal("accumulator left the exact path below DefaultMaxExact")
	}
	if a.Retained() != len(xs) {
		t.Fatalf("retained = %d, want %d", a.Retained(), len(xs))
	}
	for _, p := range []float64{0, 50, 90, 99, 99.9, 100} {
		want := stats.Percentile(xs, p)
		if got := a.Percentile(p); got != want {
			t.Fatalf("p%v: streamed %v != retained %v (must be bit-for-bit)", p, got, want)
		}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if a.Sum() != sum || a.Count() != int64(len(xs)) {
		t.Fatalf("sum/count: %v/%d, want %v/%d", a.Sum(), a.Count(), sum, len(xs))
	}
}

// TestAccumulatorOverflow: past MaxExact the accumulator folds into the
// histogram, retention drops to zero, exact aggregates survive, and
// percentiles stay within a bucket's relative resolution.
func TestAccumulatorOverflow(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 20000
	a := Accumulator{MaxExact: 256}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1 + 100*r.Float64()
		a.Add(xs[i])
	}
	if a.Exact() {
		t.Fatal("accumulator stayed exact past MaxExact")
	}
	if a.Retained() != 0 {
		t.Fatalf("retained = %d after overflow, want 0", a.Retained())
	}
	if a.Count() != n {
		t.Fatalf("count = %d, want %d", a.Count(), n)
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	if a.Min() != lo || a.Max() != hi {
		t.Fatalf("min/max %v/%v, want %v/%v", a.Min(), a.Max(), lo, hi)
	}
	// Log-spaced buckets at 64/decade resolve ~3.7% relative error.
	for _, p := range []float64{10, 50, 90, 99} {
		want := stats.Percentile(xs, p)
		got := a.Percentile(p)
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Fatalf("p%v: %v vs exact %v, rel err %.3f > 0.05", p, got, want, rel)
		}
	}
	if a.Percentile(0) < lo || a.Percentile(100) > hi {
		t.Fatal("histogram percentiles escaped the exact [min,max]")
	}
}

func TestAccumulatorEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile of empty accumulator did not panic")
		}
	}()
	var a Accumulator
	a.Percentile(50)
}

// TestClassCollectorStreams runs real flows in two RTT-ish classes and
// checks the collector's per-class aggregates against the retained-record
// pipeline, including the peak-retention gauge.
func TestClassCollectorStreams(t *testing.T) {
	eng, nw, _ := buildStar(5)
	// Class by destination parity of the flow ID.
	classOf := func(f *net.Flow) int { return f.Spec.ID % 2 }
	col := NewClassCollector([]string{"even", "odd"}, classOf, 0)
	col.Attach(nw)
	rec := &FCTRecorder{}
	rec.Attach(nw)
	hosts := nw.Hosts()
	for i := 0; i < 4; i++ {
		nw.AddFlow(net.FlowSpec{ID: i + 1, Src: hosts[i].NodeID(),
			Dst: hosts[4].NodeID(), Size: int64(10_000 * (i + 1))}, rateAlgo(100e9))
	}
	eng.Run()
	if !nw.AllFinished() {
		t.Fatal("flows did not finish")
	}
	cls := col.Classes()
	if cls[0].Flows != 2 || cls[1].Flows != 2 {
		t.Fatalf("class flows = %d/%d, want 2/2", cls[0].Flows, cls[1].Flows)
	}
	// Streamed per-class percentiles must match the retained records
	// exactly (the exact path never overflowed here).
	for c := 0; c < 2; c++ {
		var fcts, slows []float64
		var bytes int64
		for _, r := range rec.Records {
			if r.ID%2 != c {
				continue
			}
			fcts = append(fcts, r.FCT.Microseconds())
			slows = append(slows, r.Slowdown)
			bytes += r.Size
		}
		if cls[c].Bytes != bytes {
			t.Fatalf("class %d bytes = %d, want %d", c, cls[c].Bytes, bytes)
		}
		for _, p := range []float64{50, 99} {
			if got, want := cls[c].FCTUsec.Percentile(p), stats.Percentile(fcts, p); got != want {
				t.Fatalf("class %d FCT p%v: %v != %v", c, p, got, want)
			}
			if got, want := cls[c].Slowdown.Percentile(p), stats.Percentile(slows, p); got != want {
				t.Fatalf("class %d slowdown p%v: %v != %v", c, p, got, want)
			}
		}
	}
	// 4 flows x 2 accumulators of exact samples.
	if col.PeakRetained() != 8 {
		t.Fatalf("peak retained = %d, want 8", col.PeakRetained())
	}
}

// TestClassCollectorBoundedRetention: with a small exact cap, retention
// peaks at the cap instead of growing with flow count — the streaming
// contract for multi-thousand-flow runs.
func TestClassCollectorBoundedRetention(t *testing.T) {
	eng, nw, _ := buildStar(3)
	col := NewClassCollector([]string{"only"}, func(*net.Flow) int { return 0 }, 16)
	col.Attach(nw)
	hosts := nw.Hosts()
	const n = 200
	for i := 0; i < n; i++ {
		nw.AddFlow(net.FlowSpec{ID: i + 1, Src: hosts[i%2].NodeID(),
			Dst: hosts[2].NodeID(), Size: 2000,
			Start: sim.Time(i) * 10 * sim.Microsecond}, rateAlgo(100e9))
	}
	eng.Run()
	if !nw.AllFinished() {
		t.Fatal("flows did not finish")
	}
	cls := col.Classes()
	if cls[0].Flows != n {
		t.Fatalf("flows = %d, want %d", cls[0].Flows, n)
	}
	// FCT + slowdown accumulators, 16 exact samples each: retention peaks
	// at the cap instead of growing with the flow count.
	if got := col.PeakRetained(); got > 32 {
		t.Fatalf("peak retained = %d, want <= 2 x cap (32)", got)
	}
	if cls[0].FCTUsec.Count() != n || cls[0].FCTUsec.Exact() {
		t.Fatalf("FCT accumulator: count=%d exact=%v, want %d/false",
			cls[0].FCTUsec.Count(), cls[0].FCTUsec.Exact(), n)
	}
}

// TestSampleJainClasses: two classes at deliberately unequal rates on one
// bottleneck-free star — intra-class fairness near 1 for both classes,
// aggregate index pulled below 1 by the cross-class rate gap.
func TestSampleJainClasses(t *testing.T) {
	eng, nw, _ := buildStar(5)
	hosts := nw.Hosts()
	// Flows 1,2 at 40G (class 0); flows 3,4 at 10G (class 1); distinct
	// receivers so nothing queues and rates hold exactly.
	nw.AddFlow(net.FlowSpec{ID: 1, Src: hosts[0].NodeID(), Dst: hosts[4].NodeID(),
		Size: 4_000_000}, rateAlgo(40e9))
	nw.AddFlow(net.FlowSpec{ID: 2, Src: hosts[1].NodeID(), Dst: hosts[4].NodeID(),
		Size: 4_000_000}, rateAlgo(40e9))
	nw.AddFlow(net.FlowSpec{ID: 3, Src: hosts[2].NodeID(), Dst: hosts[3].NodeID(),
		Size: 1_000_000}, rateAlgo(10e9))
	nw.AddFlow(net.FlowSpec{ID: 4, Src: hosts[3].NodeID(), Dst: hosts[2].NodeID(),
		Size: 1_000_000}, rateAlgo(10e9))
	classOf := func(f *net.Flow) int {
		if f.Spec.ID <= 2 {
			return 0
		}
		return 1
	}
	js := SampleJainClasses(nw, []string{"fast", "slow"}, classOf,
		10*sim.Microsecond, 0, 500*sim.Microsecond)
	eng.Run()
	if len(js.ByClass) != 2 {
		t.Fatalf("classes = %d, want 2", len(js.ByClass))
	}
	for c, s := range js.ByClass {
		if len(s.Points) == 0 {
			t.Fatalf("class %d recorded no samples", c)
		}
		for _, p := range s.Points {
			if p.V < 0.99 {
				t.Fatalf("class %d intra-class Jain dipped to %v; equal-rate flows must stay ~1", c, p.V)
			}
		}
	}
	// While all four run, aggregate fairness over {40,40,10,10} is
	// (100)^2/(4*3400) = 0.735...
	sawMixed := false
	for _, p := range js.All.Points {
		if p.V < 0.8 {
			sawMixed = true
		}
	}
	if !sawMixed {
		t.Fatal("aggregate Jain never reflected the cross-class rate gap")
	}
}
