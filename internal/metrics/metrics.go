// Package metrics instruments simulations with the measurements the
// paper's figures plot: the Jain fairness index over time, switch queue
// depth over time, and flow-completion-time slowdowns bucketed by flow
// size.
package metrics

import (
	"fmt"
	"sort"

	"faircc/internal/net"
	"faircc/internal/sim"
	"faircc/internal/stats"
)

// Point is one time-series sample.
type Point struct {
	T sim.Time
	V float64
}

// Series is a labeled time series (one curve of a figure).
type Series struct {
	Label  string
	Points []Point
}

// Last returns the final sample value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// TimeToReach returns the first sample time at which the series reaches v
// and never drops below it again (convergence time), or -1 if it never
// settles above v.
func (s *Series) TimeToReach(v float64) sim.Time {
	settled := sim.Time(-1)
	for _, p := range s.Points {
		if p.V >= v {
			if settled < 0 {
				settled = p.T
			}
		} else {
			settled = -1
		}
	}
	return settled
}

// SampleJain periodically computes the Jain fairness index of the active
// flows' goodput (delivered bytes per interval) from start until until.
// Samples are recorded only while at least two flows are active, matching
// how the paper plots fairness during incast.
func SampleJain(nw *net.Network, label string, every, start, until sim.Time) *Series {
	s := &Series{Label: label}
	rates := make([]float64, 0, 64)
	var tick func()
	tick = func() {
		now := nw.Eng.Now()
		rates = rates[:0]
		for _, f := range nw.Flows() {
			if f.Active() {
				rates = append(rates, float64(f.TakeDeliveredDelta()))
			} else if f.Started() {
				f.TakeDeliveredDelta() // keep marks current across finishes
			}
		}
		if len(rates) >= 2 {
			s.Points = append(s.Points, Point{T: now, V: stats.Jain(rates)})
		}
		if now+every <= until {
			nw.Eng.After(every, tick)
		}
	}
	nw.Eng.At(start, tick)
	return s
}

// SampleUtilization periodically records a port's link utilization (the
// fraction of capacity transmitted during each interval).
func SampleUtilization(eng *sim.Engine, port *net.Port, label string, every, start, until sim.Time) *Series {
	s := &Series{Label: label}
	capacity := sim.BytesOver(port.Bandwidth(), every)
	var lastTx int64 = -1
	var tick func()
	tick = func() {
		now := eng.Now()
		tx := port.TxBytes()
		if lastTx >= 0 {
			s.Points = append(s.Points, Point{T: now, V: float64(tx-lastTx) / capacity})
		}
		lastTx = tx
		if now+every <= until {
			eng.After(every, tick)
		}
	}
	eng.At(start, tick)
	return s
}

// SampleQueue periodically records a port's egress queue depth in bytes.
func SampleQueue(eng *sim.Engine, port *net.Port, label string, every, start, until sim.Time) *Series {
	s := &Series{Label: label}
	var tick func()
	tick = func() {
		now := eng.Now()
		s.Points = append(s.Points, Point{T: now, V: float64(port.QueueBytes())})
		if now+every <= until {
			eng.After(every, tick)
		}
	}
	eng.At(start, tick)
	return s
}

// FlowRecord captures one finished flow.
type FlowRecord struct {
	ID       int
	Size     int64
	Start    sim.Time
	FCT      sim.Time
	Slowdown float64
}

// FCTRecorder collects completion records via Network.OnFlowFinish.
type FCTRecorder struct {
	Records []FlowRecord
}

// Attach registers the recorder on the network, chaining any existing
// OnFlowFinish callback.
func (r *FCTRecorder) Attach(nw *net.Network) {
	prev := nw.OnFlowFinish
	nw.OnFlowFinish = func(f *net.Flow) {
		if prev != nil {
			prev(f)
		}
		r.Records = append(r.Records, FlowRecord{
			ID:       f.Spec.ID,
			Size:     f.Spec.Size,
			Start:    f.Spec.Start,
			FCT:      f.FCT(),
			Slowdown: f.Slowdown(),
		})
	}
}

// CollectFinished returns completion records for every finished flow, in
// AddFlow order. Unlike FCTRecorder it runs after the simulation instead
// of inside Network.OnFlowFinish, so it is safe for sharded runs (where
// finish callbacks fire on worker goroutines). Downstream consumers
// (BucketBySize, SlowdownAbove) sort, so the record-order difference from
// FCTRecorder — AddFlow order here, finish order there — is invisible in
// every derived output.
func CollectFinished(nw *net.Network) []FlowRecord {
	records := make([]FlowRecord, 0, len(nw.Flows()))
	for _, f := range nw.Flows() {
		if !f.Finished() {
			continue
		}
		records = append(records, FlowRecord{
			ID:       f.Spec.ID,
			Size:     f.Spec.Size,
			Start:    f.Spec.Start,
			FCT:      f.FCT(),
			Slowdown: f.Slowdown(),
		})
	}
	return records
}

// SizeBucket is one point of a slowdown-versus-size figure: the flows in
// (roughly) one size percentile and the chosen slowdown percentile among
// them.
type SizeBucket struct {
	MaxSize  int64 // largest flow size in the bucket (the x coordinate)
	Count    int
	Slowdown float64
}

// BucketBySize sorts records by flow size, splits them into nBuckets
// equal-count buckets (the paper uses 100, "each data point represents 1%
// of flows"), and reports the pct-percentile slowdown within each bucket.
func BucketBySize(records []FlowRecord, nBuckets int, pct float64) []SizeBucket {
	if nBuckets < 1 {
		panic("metrics: nBuckets must be >= 1")
	}
	if len(records) == 0 {
		return nil
	}
	sorted := make([]FlowRecord, len(records))
	copy(sorted, records)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Size != sorted[j].Size {
			return sorted[i].Size < sorted[j].Size
		}
		return sorted[i].ID < sorted[j].ID
	})
	if nBuckets > len(sorted) {
		nBuckets = len(sorted)
	}
	buckets := make([]SizeBucket, 0, nBuckets)
	slow := make([]float64, 0, len(sorted)/nBuckets+1)
	for b := 0; b < nBuckets; b++ {
		lo := b * len(sorted) / nBuckets
		hi := (b + 1) * len(sorted) / nBuckets
		if lo == hi {
			continue
		}
		slow = slow[:0]
		for _, rec := range sorted[lo:hi] {
			slow = append(slow, rec.Slowdown)
		}
		// Sort the scratch in place and use the Sorted variant: Percentile
		// would copy and re-sort the slice on every one of the (up to 100)
		// bucket calls.
		sort.Float64s(slow)
		buckets = append(buckets, SizeBucket{
			MaxSize:  sorted[hi-1].Size,
			Count:    hi - lo,
			Slowdown: stats.PercentileSorted(slow, pct),
		})
	}
	return buckets
}

// SlowdownAbove returns the pct-percentile slowdown among records with
// Size > minSize (e.g. the long-flow tail the paper's headline reports).
// It returns an error if no flow qualifies.
func SlowdownAbove(records []FlowRecord, minSize int64, pct float64) (float64, error) {
	var xs []float64
	for _, r := range records {
		if r.Size > minSize {
			xs = append(xs, r.Slowdown)
		}
	}
	if len(xs) == 0 {
		return 0, fmt.Errorf("metrics: no flows larger than %d bytes", minSize)
	}
	sort.Float64s(xs)
	return stats.PercentileSorted(xs, pct), nil
}

// StartFinish extracts (start, finish) pairs for the staggered-incast
// figures (start time vs finish time, Figs. 2, 3, 8, 9).
func StartFinish(records []FlowRecord) []Point {
	pts := make([]Point, 0, len(records))
	for _, r := range records {
		pts = append(pts, Point{T: r.Start, V: (r.Start + r.FCT).Microseconds()})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	return pts
}
