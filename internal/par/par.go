// Package par provides bounded-parallelism helpers for running independent
// simulations concurrently. Each simulation is single-threaded and
// deterministic; parallelism exists only across runs (parameter sweeps,
// protocol variants), so results are identical regardless of worker count.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 means GOMAXPROCS). It returns when all calls finish.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Map applies fn to each index in parallel and collects the results in
// order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
