// Package par provides bounded-parallelism helpers for running independent
// simulations concurrently. Each simulation is single-threaded and
// deterministic; parallelism exists only across runs (parameter sweeps,
// protocol variants), so results are identical regardless of worker count.
//
// Workers are hardened for long sweeps: a panic inside one run is
// recovered and annotated with the run index instead of killing the whole
// process with a bare goroutine traceback, and the first failure cancels
// the dispatch of remaining runs (in-flight runs complete) so a sweep
// stops cleanly rather than burning hours on results that will be thrown
// away.
package par

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError is a worker panic recovered by ForEachErr/MapErr (and
// re-panicked by ForEach/Map): the run index that failed, the original
// panic value, and the worker's stack at the point of the panic.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("par: run %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 means GOMAXPROCS). It returns when all calls finish. If a
// call panics, ForEach stops dispatching further indices, waits for
// in-flight calls, and re-panics exactly once — from the caller's
// goroutine, with a *PanicError carrying the failing index and the
// original stack.
func ForEach(n, workers int, fn func(i int)) {
	err := ForEachErr(n, workers, func(i int) error {
		fn(i)
		return nil
	})
	if err != nil {
		var pe *PanicError
		if errors.As(err, &pe) {
			panic(pe)
		}
		panic(err) // unreachable: the wrapped fn never returns an error
	}
}

// ForEachErr runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 means GOMAXPROCS) and returns the first failure observed,
// or nil. Errors returned by fn are wrapped with the run index; panics are
// recovered into *PanicError. The first failure cancels dispatch of
// remaining indices (runs already started complete normally), and
// ForEachErr always waits for every started run before returning — a
// failing sweep can never deadlock or leak workers.
func ForEachErr(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	call := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		if err := fn(i); err != nil {
			return fmt.Errorf("par: run %d: %w", i, err)
		}
		return nil
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := call(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		next  = make(chan int)
		done  = make(chan struct{})
		once  sync.Once
		first error
	)
	fail := func(err error) {
		once.Do(func() {
			first = err
			close(done)
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if err := call(i); err != nil {
					fail(err)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return first
}

// Map applies fn to each index in parallel and collects the results in
// order. A panicking fn re-panics once from the caller's goroutine, as
// with ForEach.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr applies fn to each index in parallel, collecting results in
// order, with ForEachErr's failure semantics: the first error (or
// recovered panic) is returned, annotated with its run index, and cancels
// the dispatch of remaining indices. On error the returned slice holds the
// results of the runs that completed; unfinished slots are zero values.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachErr(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
