package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// A worker panic must surface as exactly one re-panic from the caller's
// goroutine — annotated with the failing index and stack — after every
// in-flight run has drained (no deadlock, no leaked goroutines, no bare
// goroutine traceback killing the process).
func TestForEachPanicSurfaces(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			finished := make(chan struct{})
			go func() {
				defer close(finished)
				defer func() {
					r := recover()
					if r == nil {
						t.Error("panic did not propagate to the caller")
						return
					}
					pe, ok := r.(*PanicError)
					if !ok {
						t.Errorf("recovered %T, want *PanicError", r)
						return
					}
					if pe.Index != 13 {
						t.Errorf("PanicError.Index = %d, want 13", pe.Index)
					}
					if pe.Value != "boom" {
						t.Errorf("PanicError.Value = %v, want boom", pe.Value)
					}
					if !strings.Contains(pe.Error(), "run 13 panicked") {
						t.Errorf("error message %q missing run index", pe.Error())
					}
					if len(pe.Stack) == 0 {
						t.Error("PanicError.Stack is empty")
					}
				}()
				ForEach(50, workers, func(i int) {
					if i == 13 {
						panic("boom")
					}
				})
			}()
			select {
			case <-finished:
			case <-time.After(30 * time.Second):
				t.Fatal("ForEach deadlocked after a worker panic")
			}
		})
	}
}

func TestForEachErrAnnotatesError(t *testing.T) {
	sentinel := errors.New("sim exploded")
	err := ForEachErr(20, 4, func(i int) error {
		if i == 7 {
			return sentinel
		}
		return nil
	})
	if err == nil {
		t.Fatal("error was swallowed")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "run 7") {
		t.Errorf("error %q missing run index", err)
	}
}

func TestForEachErrRecoversPanicAsError(t *testing.T) {
	err := ForEachErr(20, 4, func(i int) error {
		if i == 3 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Index != 3 || pe.Value != "kaboom" {
		t.Fatalf("PanicError = {Index:%d Value:%v}", pe.Index, pe.Value)
	}
}

// The first failure must stop the dispatch of remaining runs: an erroring
// sweep should not execute all n runs before reporting.
func TestForEachErrCancelsDispatch(t *testing.T) {
	// Serial case is exact: the error at index 0 means exactly one run.
	var serial int64
	err := ForEachErr(10000, 1, func(i int) error {
		atomic.AddInt64(&serial, 1)
		return errors.New("stop")
	})
	if err == nil || serial != 1 {
		t.Fatalf("serial: ran %d runs (err=%v), want exactly 1", serial, err)
	}

	// Parallel case: runs already dispatched may complete, but the vast
	// majority of the 10000 must never start.
	var parallel int64
	err = ForEachErr(10000, 4, func(i int) error {
		atomic.AddInt64(&parallel, 1)
		if i == 0 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("parallel: error was swallowed")
	}
	if n := atomic.LoadInt64(&parallel); n > 1000 {
		t.Errorf("parallel: %d runs executed after early failure; cancellation is not working", n)
	}
}

func TestMapErrPartialResults(t *testing.T) {
	out, err := MapErr(8, 1, func(i int) (int, error) {
		if i == 4 {
			return 0, errors.New("stop")
		}
		return i * 10, nil
	})
	if err == nil || !strings.Contains(err.Error(), "run 4") {
		t.Fatalf("err = %v, want annotated run 4 error", err)
	}
	if len(out) != 8 {
		t.Fatalf("len(out) = %d, want 8 (zero-filled)", len(out))
	}
	for i := 0; i < 4; i++ {
		if out[i] != i*10 {
			t.Errorf("out[%d] = %d, want %d (completed runs keep results)", i, out[i], i*10)
		}
	}
	for i := 4; i < 8; i++ {
		if out[i] != 0 {
			t.Errorf("out[%d] = %d, want 0 (unfinished slot)", i, out[i])
		}
	}
}

func TestMapErrSuccess(t *testing.T) {
	out, err := MapErr(50, 8, func(i int) (string, error) {
		return fmt.Sprint(i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprint(i) {
			t.Fatalf("out[%d] = %q", i, v)
		}
	}
}

// Concurrent failures from several workers must still produce exactly one
// error and a clean shutdown (exercised heavily under -race).
func TestForEachErrManyConcurrentFailures(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		err := ForEachErr(64, 8, func(i int) error {
			return fmt.Errorf("fail %d", i)
		})
		if err == nil {
			t.Fatal("no error returned when every run failed")
		}
	}
}
