package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var count int64
		seen := make([]int64, 100)
		ForEach(100, workers, func(i int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt64(&seen[i], 1)
		})
		if count != 100 {
			t.Fatalf("workers=%d ran %d, want 100", workers, count)
		}
		for i, s := range seen {
			if s != 1 {
				t.Fatalf("workers=%d index %d ran %d times", workers, i, s)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n=0")
	}
}

func TestMapOrder(t *testing.T) {
	got := Map(50, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d = %d, want %d", i, v, i*i)
		}
	}
}
