package exp

import (
	"fmt"

	"faircc/internal/metrics"
	"faircc/internal/net"
	"faircc/internal/par"
	"faircc/internal/sim"
	"faircc/internal/topo"
	"faircc/internal/workload"
)

const (
	hostRate     = 100e9
	linkDelay    = 1 * sim.Microsecond
	incastFlowSz = 1_000_000 // 1 MB per flow
	incastGroup  = 2         // two flows start together
	incastEvery  = 20 * sim.Microsecond
)

// incastOut is everything one incast run produces.
type incastOut struct {
	label       string
	jain        Series
	queue       Series
	startFinish Series
	convergeUs  float64 // time for smoothed Jain to reach 0.9 (-1 if never)
	maxQueueKB  float64
	pfcPauses   int64
	lastFinish  sim.Time
	stats       net.NetworkStats
	allFinished bool
	records     []metrics.FlowRecord // per-flow completions (finish order)
	err         error
}

// starMinBDP computes the paper's VAI token threshold for the star
// topology. The paper sets Token_Thresh to "the minimum BDP of the
// network, which is about 50KB" — a value rounded *down* from the exact
// 62.5 KB BDP of its 5 us, 100 Gb/s network. The margin matters: a
// joining flow dumps roughly one BDP of queue, and a threshold at or
// above that level mints tokens only for incumbent flows (whose packets
// queue on top of the dump and see more backlog), which is asymmetric and
// self-reinforcing. We apply the same 0.8x margin to the probed BDP.
func starMinBDP(senders int) float64 {
	nw := net.New(sim.NewEngine(), 0)
	st := topo.NewStar(nw, senders+1, hostRate, linkDelay)
	_, baseRTT, _, err := nw.ProbePath(net.FlowSpec{
		ID: 1, Src: st.Hosts[0].NodeID(), Dst: st.Hosts[senders].NodeID(), Size: 1})
	if err != nil {
		panic(err) // the star we just built is always probeable
	}
	return 0.8 * hostRate / 8 * baseRTT.Seconds()
}

// runIncast runs one staggered n-to-1 incast under the given variant and
// collects the figure measurements. setup, when non-nil, configures the
// network before flows are added (ECN marking for the DCQCN and DCTCP
// baselines).
func runIncast(cfg Config, v variant, senders int, setup func(*net.Network, *topo.Star)) *incastOut {
	out := &incastOut{label: v.label}
	eng := sim.NewEngine()
	nw := net.New(eng, cfg.Seed)
	nw.AckCoalesce = cfg.AckCoalesce
	nw.MacroEvents = cfg.MacroEvents
	st := topo.NewStar(nw, senders+1, hostRate, linkDelay)
	dst := st.Hosts[senders].NodeID()

	if setup != nil {
		setup(nw, st)
	}

	rec := &metrics.FCTRecorder{}
	rec.Attach(nw)
	srcs := make([]int, senders)
	for i := range srcs {
		srcs[i] = st.Hosts[i].NodeID()
	}
	for _, spec := range workload.StaggeredIncast(srcs, dst, incastFlowSz, incastGroup, incastEvery, 0) {
		nw.AddFlow(spec, v.make())
	}

	// Size the goodput-sampling interval so a fair share delivers ~10
	// packets per interval; shorter intervals quantize goodput to so few
	// packets that the index is dominated by sampling noise.
	jainEvery := sim.Time(float64(senders) * float64(nw.MTU+nw.HeaderBytes) * 8 * 10 / hostRate * 1e12)
	if jainEvery < 5*sim.Microsecond {
		jainEvery = 5 * sim.Microsecond
	}
	jain := metrics.SampleJain(nw, v.label, jainEvery, 0, horizon)
	queue := metrics.SampleQueue(eng, st.HostPorts[senders], v.label, sim.Microsecond, 0, horizon)

	runSim(cfg, v.label, eng, nw)
	out.allFinished = nw.AllFinished()
	out.stats = nw.Stats()
	out.pfcPauses = out.stats.PFCPauses
	for _, f := range nw.Flows() {
		if f.Finished() && f.FinishedAt > out.lastFinish {
			out.lastFinish = f.FinishedAt
		}
	}
	if err := nw.CheckConservation(); err != nil {
		out.err = err
		return out
	}

	for _, p := range jain.Points {
		out.jain.Add(p.T.Microseconds(), p.V)
	}
	out.jain.Label = v.label
	for _, p := range queue.Points {
		out.queue.Add(p.T.Microseconds(), p.V/1000) // KB, as the paper plots
		if kb := p.V / 1000; kb > out.maxQueueKB {
			out.maxQueueKB = kb
		}
	}
	out.queue.Label = v.label
	out.startFinish.Label = v.label
	out.records = rec.Records
	cfg.notePeakFCT(len(rec.Records))
	for _, p := range metrics.StartFinish(rec.Records) {
		out.startFinish.Add(p.T.Microseconds(), p.V)
	}
	// Convergence is measured from the moment the last flow joins: before
	// that, the earliest (still equal) flows make the index trivially
	// high.
	lastStart := sim.Time((senders-1)/incastGroup) * incastEvery
	var post Series
	for i, x := range out.jain.X {
		if x >= lastStart.Microseconds() {
			post.Add(x, out.jain.Y[i])
		}
	}
	out.convergeUs = smoothedReach(post, 5, 0.9)
	return out
}

// steadyQueueKB averages the queue series from 100 us after the last flow
// joined (past the unavoidable line-rate join transients) to the end.
func steadyQueueKB(queue Series, senders int) float64 {
	from := (sim.Time((senders-1)/incastGroup)*incastEvery + 100*sim.Microsecond).Microseconds()
	sum, n := 0.0, 0
	for i, x := range queue.X {
		if x >= from {
			sum += queue.Y[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// smoothedReach returns the first X at which the window-sample moving
// average of Y reaches threshold, or -1 if it never does. Goodput sampled
// over short intervals is quantized to whole packets, so the raw Jain
// index is noisy; the paper's "converges to an index of nearly 1 quickly"
// is a statement about the smoothed trend.
func smoothedReach(s Series, window int, threshold float64) float64 {
	sum := 0.0
	for i, y := range s.Y {
		sum += y
		n := window
		if i+1 < window {
			n = i + 1
		} else if i >= window {
			sum -= s.Y[i-window]
		}
		if sum/float64(n) >= threshold {
			return s.X[i]
		}
	}
	return -1
}

// dcqcnSetup configures RED marking and the CNP interval DCQCN needs.
func dcqcnSetup(nw *net.Network, st *topo.Star) {
	for _, p := range st.Switch.Ports() {
		p.SetRED(net.REDConfig{KMinBytes: 100_000, KMaxBytes: 400_000, PMax: 0.2})
	}
	nw.CNPInterval = 50 * sim.Microsecond
}

// runIncastSet runs all variants in parallel; the first failing variant
// cancels the rest of the sweep.
func runIncastSet(cfg Config, vs []variant, senders int) ([]*incastOut, error) {
	return par.MapErr(len(vs), cfg.Workers, func(i int) (*incastOut, error) {
		var setup func(*net.Network, *topo.Star)
		if vs[i].label == "DCQCN" {
			setup = dcqcnSetup
		}
		o := runIncast(cfg, vs[i], senders, setup)
		if o.err != nil {
			return nil, fmt.Errorf("%s: %w", o.label, o.err)
		}
		if !o.allFinished {
			return nil, errNotFinished(o.label)
		}
		return o, nil
	})
}

// incastFigure assembles a Jain-index or queue-depth figure over the given
// variants.
func incastFigure(name, title string, protocol string, withVAISF bool, senders int, metric string) *Experiment {
	return &Experiment{
		Name:  name,
		Title: title,
		Run: func(cfg Config) (*Result, error) {
			p := starParams(starMinBDP(senders), hostRate)
			var vs []variant
			if protocol == "hpcc" {
				vs = hpccBaselines()
				if withVAISF {
					vs = append(vs, hpccVAISF(p))
				}
			} else {
				vs = swiftBaselines(p)
				if withVAISF {
					vs = append(vs, swiftVAISF(p))
				}
			}
			outs, err := runIncastSet(cfg, vs, senders)
			if err != nil {
				return nil, err
			}
			res := &Result{Name: name, Title: title, XLabel: "time (us)"}
			for _, o := range outs {
				switch metric {
				case "jain":
					res.YLabel = "Jain fairness index"
					res.Series = append(res.Series, o.jain)
					res.Notef("%s: smoothed Jain reaches 0.9 at %.0f us (-1 = never)", o.label, o.convergeUs)
				case "queue":
					res.YLabel = "queue depth (KB)"
					res.Series = append(res.Series, o.queue)
					res.Notef("%s: max queue %.0f KB, steady-state mean %.1f KB",
						o.label, o.maxQueueKB, steadyQueueKB(o.queue, senders))
				}
			}
			return res, nil
		},
	}
}

// startFinishFigure assembles a start-time-versus-finish-time figure.
func startFinishFigure(name, title, protocol string, variantLabels []string, senders int) *Experiment {
	return &Experiment{
		Name:  name,
		Title: title,
		Run: func(cfg Config) (*Result, error) {
			p := starParams(starMinBDP(senders), hostRate)
			var all []variant
			if protocol == "hpcc" {
				all = append(hpccBaselines(), hpccVAISF(p))
			} else {
				all = append(swiftBaselines(p), swiftVAISF(p))
			}
			var vs []variant
			for _, v := range all {
				for _, want := range variantLabels {
					if v.label == want {
						vs = append(vs, v)
					}
				}
			}
			outs, err := runIncastSet(cfg, vs, senders)
			if err != nil {
				return nil, err
			}
			res := &Result{Name: name, Title: title,
				XLabel: "start time (us)", YLabel: "finish time (us)"}
			for _, o := range outs {
				res.Series = append(res.Series, o.startFinish)
				first, last := o.startFinish.Y[0], o.startFinish.Y[len(o.startFinish.Y)-1]
				res.Notef("%s: first-started finishes at %.0f us, last-started at %.0f us",
					o.label, first, last)
			}
			return res, nil
		},
	}
}

func init() {
	register(incastFigure("fig1a", "16-1 incast Jain index, HPCC baselines", "hpcc", false, 16, "jain"))
	register(incastFigure("fig1b", "16-1 incast queue depth, HPCC baselines", "hpcc", false, 16, "queue"))
	register(incastFigure("fig1c", "16-1 incast Jain index, Swift baselines", "swift", false, 16, "jain"))
	register(incastFigure("fig1d", "16-1 incast queue depth, Swift baselines", "swift", false, 16, "queue"))

	register(startFinishFigure("fig2", "16-1 staggered incast start vs finish, HPCC baselines",
		"hpcc", []string{"HPCC", "HPCC 1Gbps", "HPCC Probabilistic"}, 16))
	register(startFinishFigure("fig3", "16-1 staggered incast start vs finish, Swift baselines",
		"swift", []string{"Swift", "Swift 1Gbps", "Swift Probabilistic"}, 16))

	register(incastFigure("fig5a", "16-1 incast Jain index, HPCC with VAI SF", "hpcc", true, 16, "jain"))
	register(incastFigure("fig5b", "16-1 incast queue depth, HPCC with VAI SF", "hpcc", true, 16, "queue"))
	register(incastFigure("fig5c", "96-1 incast Jain index, HPCC with VAI SF", "hpcc", true, 96, "jain"))
	register(incastFigure("fig5d", "96-1 incast queue depth, HPCC with VAI SF", "hpcc", true, 96, "queue"))
	register(incastFigure("fig6a", "16-1 incast Jain index, Swift with VAI SF", "swift", true, 16, "jain"))
	register(incastFigure("fig6b", "16-1 incast queue depth, Swift with VAI SF", "swift", true, 16, "queue"))
	register(incastFigure("fig6c", "96-1 incast Jain index, Swift with VAI SF", "swift", true, 96, "jain"))
	register(incastFigure("fig6d", "96-1 incast queue depth, Swift with VAI SF", "swift", true, 96, "queue"))

	register(startFinishFigure("fig8", "16-1 incast start vs finish, HPCC default vs VAI SF",
		"hpcc", []string{"HPCC", "HPCC VAI SF"}, 16))
	register(startFinishFigure("fig9", "16-1 incast start vs finish, Swift default vs VAI SF",
		"swift", []string{"Swift", "Swift VAI SF"}, 16))

	register(&Experiment{
		Name:  "incast-dcqcn",
		Title: "16-1 incast under DCQCN (Sec. II probabilistic-feedback reference)",
		Run: func(cfg Config) (*Result, error) {
			outs, err := runIncastSet(cfg, []variant{dcqcnVariant()}, 16)
			if err != nil {
				return nil, err
			}
			res := &Result{Name: "incast-dcqcn", Title: "DCQCN 16-1 incast",
				XLabel: "time (us)", YLabel: "Jain fairness index"}
			o := outs[0]
			res.Series = append(res.Series, o.jain)
			res.Notef("DCQCN: smoothed Jain reaches 0.9 at %.0f us; max queue %.0f KB",
				o.convergeUs, o.maxQueueKB)
			return res, nil
		},
	})
}
