package exp

import (
	"fmt"

	"faircc/internal/metrics"
	"faircc/internal/net"
	"faircc/internal/par"
	"faircc/internal/sim"
	"faircc/internal/topo"
)

// The rtt-unfairness experiment family: fast-group and slow-group senders
// sharing one dumbbell bottleneck, the scenario the paper never evaluates
// (its fat-tree has uniform 1 us hops, so every flow sees the same base
// RTT). FaiRTT (arXiv:2403.19973) and the NS-3 BBR fairness study
// (arXiv:2410.22560) show RTT heterogeneity is where convergence-to-
// fairness claims go to die: AIMD-style control gives short-RTT flows
// more increase opportunities per second, so the fast class squeezes the
// slow class. Each variant reports the Jain index over time — aggregate
// and per RTT class — plus per-class FCT percentiles, with and without
// VAI/SF, so the mechanisms' fast-convergence claim is tested where
// classes differ, not just within one.

// rttSetup is one scale's scenario: the dumbbell, the per-sender flow
// schedule, and the goodput-sampling interval.
type rttSetup struct {
	dc       topo.DumbbellConfig
	flowSize int64
	rounds   int      // flows per sender
	gap      sim.Time // stagger between a sender's consecutive flows
}

// rttScale maps Config.Scale to a datacenter-heterogeneity scenario.
func rttScale(cfg Config) (rttSetup, error) {
	s := rttSetup{dc: topo.DefaultDumbbell()}
	switch cfg.Scale {
	case "small":
		s.flowSize, s.rounds, s.gap = 100_000, 2, 50*sim.Microsecond
	case "", "medium":
		s.flowSize, s.rounds, s.gap = 1_000_000, 4, 200*sim.Microsecond
	case "large", "full":
		s.flowSize, s.rounds, s.gap = 4_000_000, 8, 500*sim.Microsecond
	default:
		return s, fmt.Errorf("exp: unknown scale %q", cfg.Scale)
	}
	return s, applyRTTKnobs(cfg, &s)
}

// rttScaleWAN maps Config.Scale to the WAN-edge scenario: the slow group
// reaches the shared 10 Gb/s bottleneck across a 10 ms access link, so
// its base RTT (~20 ms) puts 4*baseRTT past RTOMax — the regime of the
// initial-RTO clamp fix.
func rttScaleWAN(cfg Config) (rttSetup, error) {
	s := rttSetup{dc: topo.WANEdgeDumbbell()}
	switch cfg.Scale {
	case "small":
		s.flowSize, s.rounds, s.gap = 250_000, 1, 0
	case "", "medium":
		s.flowSize, s.rounds, s.gap = 1_000_000, 2, 5*sim.Millisecond
	case "large", "full":
		s.flowSize, s.rounds, s.gap = 2_000_000, 4, 5*sim.Millisecond
	default:
		return s, fmt.Errorf("exp: unknown scale %q", cfg.Scale)
	}
	return s, applyRTTKnobs(cfg, &s)
}

// applyRTTKnobs folds Config's RTT-heterogeneity overrides into a setup.
func applyRTTKnobs(cfg Config, s *rttSetup) error {
	if cfg.RTTSlowDelay > 0 {
		last := len(s.dc.Groups) - 1
		s.dc.Groups[last].AccessDelay = cfg.RTTSlowDelay
	}
	if cfg.RTTSenders > 0 {
		for i := range s.dc.Groups {
			s.dc.Groups[i].Count = cfg.RTTSenders
		}
	}
	return s.dc.Validate()
}

// rttParams sizes the protocol variants from the fast-class path — the
// network's minimum BDP, which is the paper's VAI token threshold (dcMinBDP
// makes the same shortest-path choice on the fat-tree).
func rttParams(dc topo.DumbbellConfig) pathParams {
	nw := net.New(sim.NewEngine(), 0)
	d := topo.NewDumbbell(nw, dc)
	_, baseRTT, minBw, err := nw.ProbePath(net.FlowSpec{
		ID: 1, Src: d.Senders[0].NodeID(), Dst: d.Receivers[0].NodeID(), Size: 1})
	if err != nil {
		panic(err) // the dumbbell we just built is always probeable
	}
	return starParams(0.8*minBw/8*baseRTT.Seconds(), minBw)
}

// rttOut is one variant's measurements.
type rttOut struct {
	jain    *metrics.JainClassSeries
	classes []metrics.ClassDist
	peak    int
}

// runRTT runs one dumbbell scenario under one protocol variant. It always
// uses the sequential engine: the per-class goodput sampler reads
// receiver-side delivery marks every tick, which on a sharded network
// would race with the receiver shard (the same reason the incast figures
// are sequential; Dumbbell.ShardMap exists for record-only workloads).
// FCT statistics stream through a ClassCollector — per-flow records are
// folded into bounded per-class accumulators as flows finish, never
// retained — exercising the streaming-metrics path end to end.
func runRTT(cfg Config, v variant, s rttSetup) (*rttOut, error) {
	eng := sim.NewEngine()
	nw := net.New(eng, cfg.Seed)
	nw.AckCoalesce = cfg.AckCoalesce
	nw.MacroEvents = cfg.MacroEvents
	d := topo.NewDumbbell(nw, s.dc)

	// Host node id -> RTT class, for classing flows by their sender.
	classOfHost := make(map[int]int, len(d.Senders))
	for i, h := range d.Senders {
		classOfHost[h.NodeID()] = d.Class[i]
	}
	classOf := func(f *net.Flow) int { return classOfHost[f.Spec.Src] }
	labels := make([]string, len(s.dc.Groups))
	for i, g := range s.dc.Groups {
		labels[i] = g.Name
	}

	col := metrics.NewClassCollector(labels, classOf, 0)
	col.Attach(nw)

	id := 0
	for r := 0; r < s.rounds; r++ {
		for i, snd := range d.Senders {
			id++
			nw.AddFlow(net.FlowSpec{
				ID:    id,
				Src:   snd.NodeID(),
				Dst:   d.Receivers[i].NodeID(),
				Size:  s.flowSize,
				Start: sim.Time(r) * s.gap,
			}, v.make())
		}
	}

	// Goodput sampling interval: a fair bottleneck share should deliver
	// ~10 packets per interval (the incast figures' rule), and at least
	// one slow-class RTT so the long-delay class is not quantized to its
	// burst arrivals.
	rtts := d.ClassBaseRTT(nw)
	slowRTT := rtts[len(rtts)-1]
	every := sim.Time(float64(len(d.Senders)) * float64(nw.MTU+nw.HeaderBytes) * 8 * 10 /
		s.dc.BottleneckBps * 1e12)
	if every < slowRTT {
		every = slowRTT
	}
	if every < 5*sim.Microsecond {
		every = 5 * sim.Microsecond
	}
	jain := metrics.SampleJainClasses(nw, labels, classOf, every, 0, horizon)

	runSim(cfg, v.label, eng, nw)
	if !nw.AllFinished() {
		return nil, fmt.Errorf("%s: flows did not finish", v.label)
	}
	if err := nw.CheckConservation(); err != nil {
		return nil, fmt.Errorf("%s: %w", v.label, err)
	}
	cfg.notePeakFCT(col.PeakRetained())
	return &rttOut{jain: jain, classes: col.Classes(), peak: col.PeakRetained()}, nil
}

// meanTail averages the last half of a series (steady-state fairness).
func meanTail(s *metrics.Series) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	tail := s.Points[len(s.Points)/2:]
	for _, p := range tail {
		sum += p.V
	}
	return sum / float64(len(tail))
}

// rttFigure assembles an RTT-unfairness experiment over the given
// scenario builder: per-variant aggregate and per-class Jain curves, with
// per-class FCT percentiles in the notes.
func rttFigure(name, title string, scale func(Config) (rttSetup, error)) *Experiment {
	return &Experiment{
		Name:  name,
		Title: title,
		Run: func(cfg Config) (*Result, error) {
			s, err := scale(cfg)
			if err != nil {
				return nil, err
			}
			p := rttParams(s.dc)
			vs := dcVariants(p)

			outs, err := par.MapErr(len(vs), cfg.Workers, func(i int) (*rttOut, error) {
				return runRTT(cfg, vs[i], s)
			})
			if err != nil {
				return nil, err
			}

			res := &Result{Name: name, Title: title,
				XLabel: "time (us)", YLabel: "Jain fairness index"}
			nw := net.New(sim.NewEngine(), 0)
			rtts := topo.NewDumbbell(nw, s.dc).ClassBaseRTT(nw)
			for i, g := range s.dc.Groups {
				res.Notef("class %s: %d senders, access %v, base RTT %v",
					g.Name, g.Count, g.AccessDelay, rtts[i])
			}
			res.Notef("scale=%s flows/sender=%d size=%d bottleneck=%.0fGbps",
				cfg.Scale, s.rounds, s.flowSize, s.dc.BottleneckBps/1e9)

			for i, out := range outs {
				v := vs[i]
				all := Series{Label: v.label}
				for _, pt := range out.jain.All.Points {
					all.Add(pt.T.Microseconds(), pt.V)
				}
				res.Series = append(res.Series, all)
				for _, cs := range out.jain.ByClass {
					sc := Series{Label: v.label + " " + cs.Label}
					for _, pt := range cs.Points {
						sc.Add(pt.T.Microseconds(), pt.V)
					}
					res.Series = append(res.Series, sc)
				}
				res.Notef("%s: steady-state Jain all=%.3f %s=%.3f %s=%.3f",
					v.label, meanTail(out.jain.All),
					out.jain.ByClass[0].Label, meanTail(out.jain.ByClass[0]),
					out.jain.ByClass[1].Label, meanTail(out.jain.ByClass[1]))
				for _, cd := range out.classes {
					if cd.Flows == 0 {
						continue
					}
					res.Notef("%s %s: %d flows, FCT p50=%.1fus p99=%.1fus, slowdown p50=%.2fx p99=%.2fx",
						v.label, cd.Label, cd.Flows,
						cd.FCTUsec.Percentile(50), cd.FCTUsec.Percentile(99),
						cd.Slowdown.Percentile(50), cd.Slowdown.Percentile(99))
				}
				res.Notef("%s: peak retained FCT samples %d", v.label, out.peak)
			}
			return res, nil
		},
	}
}

func init() {
	register(rttFigure("rtt-unfairness",
		"Fairness across RTT classes: fast vs slow senders on one bottleneck",
		rttScale))
	register(rttFigure("rtt-unfairness-wan",
		"Fairness across RTT classes at a WAN edge (10 ms access, 10 Gb/s bottleneck)",
		rttScaleWAN))
}
