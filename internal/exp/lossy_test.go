package exp

import "testing"

// TestLossyIncastRecoveryCounters pins the acceptance criterion for the
// lossy-network mode: a fixed-seed lossy incast (nonzero drop probability,
// finite buffers) completes with every flow finished, and the run-level
// stats that land in the manifest carry nonzero drop / retransmit / RTO
// counters. Two runs with the same seed must agree exactly.
func TestLossyIncastRecoveryCounters(t *testing.T) {
	run := func() [6]int64 {
		t.Helper()
		cfg := DefaultConfig()
		cfg.Workers = 1
		res, rs, err := RunWithStats("incast-lossy", cfg)
		if err != nil {
			t.Fatal(err) // runLossyIncast errors when any flow fails to finish
		}
		if len(res.Series) != 4 {
			t.Fatalf("series = %d, want 4 variants", len(res.Series))
		}
		if rs.DataDrops+rs.AckDrops == 0 {
			t.Fatal("lossy incast recorded zero drops")
		}
		if rs.WireDrops == 0 {
			t.Fatal("nonzero drop probability never lost a packet on the wire")
		}
		if rs.Retransmits == 0 || rs.RTOFires == 0 {
			t.Fatalf("recovery counters: retransmits=%d rto_fires=%d, want both > 0",
				rs.Retransmits, rs.RTOFires)
		}
		if rs.DupAcks == 0 || rs.DataOutOfSeq == 0 {
			t.Fatalf("receiver-side counters: dup_acks=%d out_of_seq=%d, want both > 0",
				rs.DupAcks, rs.DataOutOfSeq)
		}
		return [6]int64{rs.DataDrops, rs.AckDrops, rs.BufferDrops,
			rs.WireDrops, rs.Retransmits, rs.RTOFires}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("lossy incast not deterministic across identical seeds:\n%v\n%v", a, b)
	}
}
