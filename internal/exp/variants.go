package exp

import (
	"faircc/internal/cc"
	"faircc/internal/cc/dcqcn"
	"faircc/internal/cc/dctcp"
	"faircc/internal/cc/hpcc"
	"faircc/internal/cc/swift"
	"faircc/internal/cc/timely"
	"faircc/internal/sim"
)

// algoMaker builds a fresh per-flow congestion-control instance.
type algoMaker func() cc.Algorithm

// variant pairs a legend label with its maker.
type variant struct {
	label string
	make  algoMaker
}

// pathParams captures the topology constants protocol variants are sized
// from: the network's minimum BDP (VAI's token threshold) and the Swift
// flow-scaling window appropriate for the topology.
type pathParams struct {
	minBDPBytes  float64
	minBDPDelay  sim.Time // delay a min-BDP queue adds at line rate
	maxScalePkts float64  // Swift FBS max target-scaling window
}

// starParams sizes parameters for the single-switch incast topology:
// max FBS scaling window 50 packets (the paper lowers it from 100 because
// windows are smaller there).
func starParams(minBDPBytes float64, lineRate float64) pathParams {
	return pathParams{
		minBDPBytes:  minBDPBytes,
		minBDPDelay:  sim.Time(minBDPBytes * 8 * 1e12 / lineRate),
		maxScalePkts: 50,
	}
}

// dcParams sizes parameters for the fat-tree topology (FBS window 100).
func dcParams(minBDPBytes float64, lineRate float64) pathParams {
	p := starParams(minBDPBytes, lineRate)
	p.maxScalePkts = 100
	return p
}

// hpccBaselines returns the paper's Sec. III HPCC variants: default,
// 1 Gb/s AI, and probabilistic feedback.
func hpccBaselines() []variant {
	return []variant{
		{"HPCC", func() cc.Algorithm { return hpcc.New(hpcc.DefaultConfig()) }},
		{"HPCC 1Gbps", func() cc.Algorithm {
			c := hpcc.DefaultConfig()
			c.AIBps = 1e9
			return hpcc.New(c)
		}},
		{"HPCC Probabilistic", func() cc.Algorithm {
			c := hpcc.DefaultConfig()
			c.Probabilistic = true
			return hpcc.New(c)
		}},
	}
}

// hpccVAISF returns the paper's HPCC VAI SF variant sized for the
// topology.
func hpccVAISF(p pathParams) variant {
	return variant{"HPCC VAI SF", func() cc.Algorithm {
		return hpcc.New(hpcc.VAISFConfig(p.minBDPBytes))
	}}
}

// swiftBaselines returns the Swift variants of Sec. III.
func swiftBaselines(p pathParams) []variant {
	return []variant{
		{"Swift", func() cc.Algorithm { return swift.New(swift.DefaultConfig(p.maxScalePkts)) }},
		{"Swift 1Gbps", func() cc.Algorithm {
			c := swift.DefaultConfig(p.maxScalePkts)
			c.AIBps = 1e9
			return swift.New(c)
		}},
		{"Swift Probabilistic", func() cc.Algorithm {
			c := swift.DefaultConfig(p.maxScalePkts)
			c.Probabilistic = true
			return swift.New(c)
		}},
	}
}

// swiftVAISF returns Swift VAI SF (no FBS, Sec. VI-B).
func swiftVAISF(p pathParams) variant {
	return variant{"Swift VAI SF", func() cc.Algorithm {
		return swift.New(swift.VAISFConfig(p.minBDPDelay))
	}}
}

// dcqcnVariant returns the DCQCN baseline (Sec. II's probabilistic-
// feedback protocol). Runs using it must configure RED marking on switch
// ports and a CNP interval on the network.
func dcqcnVariant() variant {
	return variant{"DCQCN", func() cc.Algorithm { return dcqcn.New(dcqcn.DefaultConfig()) }}
}

// dctcpVariant returns the DCTCP baseline (the origin of congestion-
// extent-scaled decreases, Sec. III-A). Runs using it must configure step
// marking on switch ports.
func dctcpVariant() variant {
	return variant{"DCTCP", func() cc.Algorithm { return dctcp.New(dctcp.DefaultConfig()) }}
}

// timelyVariants returns TIMELY with and without the paper's mechanisms,
// demonstrating their applicability beyond HPCC and Swift.
func timelyVariants(p pathParams) []variant {
	return []variant{
		{"Timely", func() cc.Algorithm { return timely.New(timely.DefaultConfig()) }},
		{"Timely VAI SF", func() cc.Algorithm {
			return timely.New(timely.VAISFConfig(p.minBDPDelay))
		}},
	}
}

// swiftHAIVariant returns Swift with the hyper-AI extension the paper
// suggests in Sec. VI-B.
func swiftHAIVariant(p pathParams) variant {
	return variant{"Swift HAI", func() cc.Algorithm {
		c := swift.DefaultConfig(p.maxScalePkts)
		c.HAIAfter = 5
		c.HAIMult = 10
		return swift.New(c)
	}}
}
