package exp

import (
	"sync"
	"time"

	"faircc/internal/metrics"
	"faircc/internal/net"
	"faircc/internal/sim"
)

// ProgressUpdate is one periodic report from a running simulation. For
// paper-scale runs (320 hosts, 50 ms — hundreds of millions of events) it
// is the only sign of life a sweep gives; updates come roughly once per
// Config.ProgressEvery of wall time per concurrent variant.
type ProgressUpdate struct {
	Label        string        // variant or run label ("HPCC VAI SF", "seed 3")
	SimTime      sim.Time      // simulated clock
	Events       uint64        // events executed so far in this run
	Wall         time.Duration // wall time since this run started
	EventsPerSec float64       // rate over the most recent reporting interval
	Done         bool          // final update for this run
}

// runObserver accumulates RunStats across the (possibly parallel)
// simulations of one experiment. It is attached via RunWithStats.
type runObserver struct {
	mu    sync.Mutex
	stats metrics.RunStats
}

func (o *runObserver) add(s metrics.RunStats) {
	o.mu.Lock()
	o.stats.Add(s)
	o.mu.Unlock()
}

// notePeakFCT records a per-flow-record high-water mark: len(records) on
// the collect-at-end path, ClassCollector.PeakRetained on the streaming
// path. RunStats keeps the max across an experiment's runs.
func (o *runObserver) notePeakFCT(n int) {
	o.mu.Lock()
	if n > o.stats.PeakFCTRecords {
		o.stats.PeakFCTRecords = n
	}
	o.mu.Unlock()
}

// notePeakFCT is the Config-level wrapper (no-op without an observer).
func (cfg Config) notePeakFCT(n int) {
	if cfg.obs != nil {
		cfg.obs.notePeakFCT(n)
	}
}

func (o *runObserver) finish(wall time.Duration) metrics.RunStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := o.stats
	s.Finish(wall)
	return s
}

// progressCheckMask amortizes the wall-clock read: time.Now is consulted
// once per (mask+1) events, which at the engine's typical multi-M ev/s
// rate is a sub-millisecond reporting resolution at negligible cost.
const progressCheckMask = 1<<14 - 1

// runSim executes the standard experiment loop — step until every flow has
// finished or the queue drains — with the observability hooks Config may
// carry: periodic ProgressUpdates and RunStats collection. The stepping
// sequence is identical with and without hooks (AllFinished is checked
// before every Step, exactly as the bare loop did), so observability can
// never perturb simulation results.
func runSim(cfg Config, label string, eng *sim.Engine, nw *net.Network) {
	if cfg.Progress == nil {
		for !nw.AllFinished() && eng.Step() {
		}
		if cfg.obs != nil {
			cfg.obs.add(metrics.CollectRun(eng, nw))
		}
		return
	}
	every := cfg.ProgressEvery
	if every <= 0 {
		every = time.Second
	}
	var (
		start      = time.Now()
		next       = start.Add(every)
		lastWall   = start
		lastEvents = eng.Steps()
		n          uint64
	)
	for !nw.AllFinished() && eng.Step() {
		n++
		if n&progressCheckMask != 0 {
			continue
		}
		now := time.Now()
		if now.Before(next) {
			continue
		}
		events := eng.Steps()
		rate := float64(events-lastEvents) / now.Sub(lastWall).Seconds()
		cfg.Progress(ProgressUpdate{
			Label:        label,
			SimTime:      eng.Now(),
			Events:       events,
			Wall:         now.Sub(start),
			EventsPerSec: rate,
		})
		lastWall, lastEvents = now, events
		next = now.Add(every)
	}
	wall := time.Since(start)
	rate := 0.0
	if s := wall.Seconds(); s > 0 {
		rate = float64(eng.Steps()) / s
	}
	cfg.Progress(ProgressUpdate{
		Label:        label,
		SimTime:      eng.Now(),
		Events:       eng.Steps(),
		Wall:         wall,
		EventsPerSec: rate,
		Done:         true,
	})
	if cfg.obs != nil {
		cfg.obs.add(metrics.CollectRun(eng, nw))
	}
}

// runSimSharded is runSim for a sharded network: it drives the epochs
// through nw.NewParallel and, when Config.Progress is set, watches the
// run from a separate observer goroutine. The observer reads only the
// runner's atomically published counters (sim.Parallel.Progress: event
// batches mid-epoch, exact totals and sim time at each barrier) — never
// EngineStats or NetworkStats of live shards — so progress reporting is
// race-clean at any shard count, moves even while a long epoch is still
// running, and cannot perturb the workers. (The sequential runSim reads eng.Steps mid-run, which is safe
// there only because its progress calls run on the stepping goroutine.)
func runSimSharded(cfg Config, label string, nw *net.Network) error {
	pr := nw.NewParallel()
	start := time.Now()
	var stop chan struct{}
	var wg sync.WaitGroup
	if cfg.Progress != nil {
		every := cfg.ProgressEvery
		if every <= 0 {
			every = time.Second
		}
		stop = make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(every)
			defer ticker.Stop()
			lastWall, lastEvents := start, uint64(0)
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				events, simNow, _ := pr.Progress()
				now := time.Now()
				rate := float64(events-lastEvents) / now.Sub(lastWall).Seconds()
				cfg.Progress(ProgressUpdate{
					Label:        label,
					SimTime:      simNow,
					Events:       events,
					Wall:         now.Sub(start),
					EventsPerSec: rate,
				})
				lastWall, lastEvents = now, events
			}
		}()
	}
	err := pr.Run()
	if stop != nil {
		close(stop)
		wg.Wait()
	}
	if err != nil {
		return err
	}
	if cfg.Progress != nil {
		// Run has returned, so reading the shard engines directly is safe
		// (the workers' exits happen-before Run's return).
		var events uint64
		var simNow sim.Time
		for _, eng := range nw.ShardEngines() {
			events += eng.Steps()
			if t := eng.Now(); t > simNow {
				simNow = t
			}
		}
		wall := time.Since(start)
		rate := 0.0
		if s := wall.Seconds(); s > 0 {
			rate = float64(events) / s
		}
		cfg.Progress(ProgressUpdate{
			Label:        label,
			SimTime:      simNow,
			Events:       events,
			Wall:         wall,
			EventsPerSec: rate,
			Done:         true,
		})
	}
	if cfg.obs != nil {
		cfg.obs.add(metrics.CollectSharded(nw, pr.Epochs()))
	}
	return nil
}

// RunWithStats runs an experiment like Run and additionally returns the
// aggregated RunStats of every simulation the experiment executed —
// events, events/sec, packet and pool counters, wall time, and process
// memory. Experiments that run no packet simulation (the fluid model)
// return a zero-run snapshot.
func RunWithStats(name string, cfg Config) (*Result, *metrics.RunStats, error) {
	e, err := Get(name)
	if err != nil {
		return nil, nil, err
	}
	obs := &runObserver{}
	cfg.obs = obs
	start := time.Now()
	res, err := e.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	stats := obs.finish(time.Since(start))
	return res, &stats, nil
}
