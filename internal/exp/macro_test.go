package exp

import (
	"strings"
	"testing"
)

// TestMacroEventsExperiment runs the bit-identity audit at small scale:
// all four protocols must pass the hard per-flow record comparison the
// experiment performs between per-packet and train-fused execution, and
// every variant must actually fuse some wakeups (the fat-tree workload
// opens every flow at line rate, exactly the cadence trains target).
func TestMacroEventsExperiment(t *testing.T) {
	cfg := Config{Seed: 1, Scale: "small"}
	res, err := Run("macro-events", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4 (one per protocol; modes are identical)", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.X) == 0 {
			t.Fatalf("series %q is empty", s.Label)
		}
	}
	fused := 0
	for _, n := range res.Notes {
		if strings.Contains(n, "bit-identical") && !strings.Contains(n, "; 0 pacing wakeups") {
			fused++
		}
	}
	if fused != 4 {
		t.Fatalf("%d variants fused wakeups, want all 4; notes: %v", fused, res.Notes)
	}
}

// TestMacroEventsConfigPlumbing: the Config knob must reach the network
// and must not change results — drive the fig10 path at small scale and
// require identical per-flow records with a nonzero elision count.
func TestMacroEventsConfigPlumbing(t *testing.T) {
	cfg := Config{Seed: 1, Scale: "small"}
	ftCfg, duration, err := dcScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := dcTraffic(cfg, ftCfg, duration, "hadoop")
	if err != nil {
		t.Fatal(err)
	}
	p := dcParams(dcMinBDP(ftCfg), ftCfg.HostBps)
	v := dcVariants(p)[0]

	offRecs, off, err := runDC(cfg, v, ftCfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if off.EventsElided != 0 {
		t.Fatalf("elided %d events with the knob off", off.EventsElided)
	}
	on := cfg
	on.MacroEvents = true
	onRecs, st, err := runDC(on, v, ftCfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsElided == 0 {
		t.Fatal("knob on but no wakeup fused on the fat-tree workload")
	}
	if err := sameRecords(offRecs, onRecs); err != nil {
		t.Fatalf("train fusion changed results: %v", err)
	}
	if off.DataSent != st.DataSent || off.AcksSent != st.AcksSent {
		t.Fatalf("traffic counters diverged: off %+v on %+v", off, st)
	}
}

// TestMacroEventsCSVBitIdentical is the end-to-end half of the exactness
// contract: the recorded golden experiments (fig9's fairness trace and
// fig10's FCT percentiles) must produce byte-identical CSVs with train
// fusion on and off, on the sequential engine and under -shards 4 alike.
// This is the differential that licenses leaving the goldens untouched.
func TestMacroEventsCSVBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("datacenter runs in -short mode")
	}
	for _, name := range []string{"fig9", "fig10"} {
		for _, shards := range []int{0, 4} {
			off := DefaultConfig()
			off.Scale = "small"
			off.Shards = shards
			on := off
			on.MacroEvents = true
			a := runToCSV(t, name, off)
			b := runToCSV(t, name, on)
			if a != b {
				t.Fatalf("%s -shards %d: CSV differs between per-packet and train-fused runs", name, shards)
			}
		}
	}
}
