package exp

import (
	"sync"
	"testing"
	"time"
)

// Observability must be a pure read: enabling progress reporting and
// RunStats collection on a run cannot change any simulation result. The
// golden incast values are exact, so even a single extra or reordered event
// would fail this.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	p := starParams(starMinBDP(16), hostRate)
	v := hpccVAISF(p)

	bare := runIncast(Config{Seed: 1}, v, 16, nil)
	if bare.err != nil {
		t.Fatal(bare.err)
	}

	var (
		mu      sync.Mutex
		updates []ProgressUpdate
	)
	obs := &runObserver{}
	cfg := Config{
		Seed:          1,
		ProgressEvery: time.Nanosecond, // report at every amortized check
		Progress: func(u ProgressUpdate) {
			mu.Lock()
			updates = append(updates, u)
			mu.Unlock()
		},
		obs: obs,
	}
	observed := runIncast(cfg, v, 16, nil)
	if observed.err != nil {
		t.Fatal(observed.err)
	}

	if observed.convergeUs != bare.convergeUs {
		t.Errorf("convergeUs perturbed: %v vs %v", observed.convergeUs, bare.convergeUs)
	}
	if observed.maxQueueKB != bare.maxQueueKB {
		t.Errorf("maxQueueKB perturbed: %v vs %v", observed.maxQueueKB, bare.maxQueueKB)
	}
	if len(observed.jain.Y) != len(bare.jain.Y) {
		t.Fatalf("jain series length perturbed: %d vs %d", len(observed.jain.Y), len(bare.jain.Y))
	}
	for i := range bare.jain.Y {
		if observed.jain.Y[i] != bare.jain.Y[i] {
			t.Fatalf("jain[%d] perturbed: %v vs %v", i, observed.jain.Y[i], bare.jain.Y[i])
		}
	}
	for i := range bare.startFinish.Y {
		if observed.startFinish.Y[i] != bare.startFinish.Y[i] {
			t.Fatalf("startFinish[%d] perturbed: %v vs %v",
				i, observed.startFinish.Y[i], bare.startFinish.Y[i])
		}
	}

	if len(updates) == 0 {
		t.Fatal("no progress updates delivered")
	}
	final := updates[len(updates)-1]
	if !final.Done {
		t.Error("last progress update not marked Done")
	}
	if final.Label != v.label {
		t.Errorf("progress label = %q, want %q", final.Label, v.label)
	}
	if final.Events == 0 || final.SimTime == 0 {
		t.Errorf("final update has zero events (%d) or sim time (%v)", final.Events, final.SimTime)
	}

	stats := obs.finish(time.Second)
	if stats.Runs != 1 {
		t.Fatalf("observer aggregated %d runs, want 1", stats.Runs)
	}
	if stats.Events != final.Events {
		t.Errorf("RunStats events %d != final progress events %d", stats.Events, final.Events)
	}
	if stats.DataSent == 0 || stats.DataDelivered == 0 || stats.AcksSent == 0 {
		t.Errorf("packet counters empty: sent=%d delivered=%d acks=%d",
			stats.DataSent, stats.DataDelivered, stats.AcksSent)
	}
	if stats.DataDelivered > stats.DataSent {
		t.Errorf("delivered %d > sent %d", stats.DataDelivered, stats.DataSent)
	}
}

// RunWithStats must aggregate every simulation an experiment executes, and
// the experiment's results must match a plain Run bit for bit.
func TestRunWithStatsMatchesRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = "small"
	cfg.Workers = 2

	plain, err := Run("fig1a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := RunWithStats("fig1a", cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Series) != len(plain.Series) {
		t.Fatalf("series count %d vs %d", len(res.Series), len(plain.Series))
	}
	for si := range plain.Series {
		if res.Series[si].Label != plain.Series[si].Label {
			t.Fatalf("series %d label %q vs %q", si, res.Series[si].Label, plain.Series[si].Label)
		}
		for i := range plain.Series[si].Y {
			if res.Series[si].Y[i] != plain.Series[si].Y[i] {
				t.Fatalf("series %q point %d: %v vs %v", plain.Series[si].Label, i,
					res.Series[si].Y[i], plain.Series[si].Y[i])
			}
		}
	}

	// fig1a runs one simulation per HPCC baseline variant.
	if stats.Runs != len(res.Series) {
		t.Errorf("stats.Runs = %d, want %d (one per variant)", stats.Runs, len(res.Series))
	}
	if stats.Events == 0 || stats.EventsScheduled < stats.Events {
		t.Errorf("implausible event counts: executed=%d scheduled=%d",
			stats.Events, stats.EventsScheduled)
	}
	if stats.WallSeconds <= 0 || stats.EventsPerSec <= 0 {
		t.Errorf("Finish not applied: wall=%v rate=%v", stats.WallSeconds, stats.EventsPerSec)
	}
	if stats.SimSeconds <= 0 {
		t.Errorf("SimSeconds = %v, want > 0", stats.SimSeconds)
	}
	if stats.PoolGets > 0 && (stats.PoolReuseRate < 0 || stats.PoolReuseRate > 1) {
		t.Errorf("PoolReuseRate = %v out of [0,1]", stats.PoolReuseRate)
	}
}

// Experiments with no packet simulation (the fluid model) report zero runs
// rather than failing.
func TestRunWithStatsFluidModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = "small"
	_, stats, err := RunWithStats("fig4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 0 {
		t.Errorf("fluid model reported %d packet runs, want 0", stats.Runs)
	}
}
