package exp

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every figure with data series must be registered (Fig. 7 is the
	// topology diagram).
	want := []string{
		"fig1a", "fig1b", "fig1c", "fig1d", "fig2", "fig3", "fig4",
		"fig5a", "fig5b", "fig5c", "fig5d", "fig6a", "fig6b", "fig6c", "fig6d",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"ablate-aicap", "ablate-sf", "ablate-dampener", "ablate-newflow",
		"incast-dcqcn", "incast-pfc", "incast-lossy", "incast-pfc-vs-lossy",
		"rtt-unfairness", "rtt-unfairness-wan",
	}
	names := Names()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %q not registered", w)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get should fail for unknown experiments")
	}
}

func TestFig4(t *testing.T) {
	res, err := Run("fig4", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].X) < 100 {
		t.Fatalf("fig4 series malformed: %d series", len(res.Series))
	}
	// The gap curve starts at zero, rises, and ends low.
	y := res.Series[0].Y
	if y[0] != 0 {
		t.Fatalf("gap at t=0 is %v", y[0])
	}
	peak := 0.0
	for _, v := range y {
		if v > peak {
			peak = v
		}
	}
	if peak < 1 {
		t.Fatalf("gap peak %v too small", peak)
	}
	if y[len(y)-1] > peak/4 {
		t.Fatalf("gap did not diminish: peak %v, end %v", peak, y[len(y)-1])
	}
}

func TestFig1aConvergenceOrdering(t *testing.T) {
	res, err := Run("fig1a", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3 baselines", len(res.Series))
	}
	conv := convergenceFromNotes(t, res)
	// The paper's Fig. 1a: default HPCC takes several hundred us; the
	// high-AI variant converges much faster.
	if conv["HPCC"] < 0 {
		t.Fatal("default HPCC never converged")
	}
	if conv["HPCC 1Gbps"] < 0 || conv["HPCC 1Gbps"] >= conv["HPCC"] {
		t.Fatalf("HPCC 1Gbps (%v us) should converge before default (%v us)",
			conv["HPCC 1Gbps"], conv["HPCC"])
	}
}

func TestFig5aVAISFConvergesFaster(t *testing.T) {
	res, err := Run("fig5a", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	conv := convergenceFromNotes(t, res)
	// The paper's headline incast claim: VAI SF converges to fairness
	// much faster than default HPCC (about as fast as the high-AI
	// variant).
	if conv["HPCC VAI SF"] < 0 || conv["HPCC"] < 0 {
		t.Fatalf("missing convergence: %v", conv)
	}
	if conv["HPCC VAI SF"] >= conv["HPCC"]/2 {
		t.Fatalf("HPCC VAI SF converged at %v us, default at %v us; want at least 2x faster",
			conv["HPCC VAI SF"], conv["HPCC"])
	}
}

func TestFig6aSwiftVAISFConvergesFaster(t *testing.T) {
	res, err := Run("fig6a", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	conv := convergenceFromNotes(t, res)
	if conv["Swift VAI SF"] < 0 || conv["Swift"] < 0 {
		t.Fatalf("missing convergence: %v", conv)
	}
	if conv["Swift VAI SF"] >= conv["Swift"] {
		t.Fatalf("Swift VAI SF converged at %v us, default at %v us; want faster",
			conv["Swift VAI SF"], conv["Swift"])
	}
}

func TestFig8StartFinishShape(t *testing.T) {
	res, err := Run("fig8", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Series{}
	for _, s := range res.Series {
		byLabel[s.Label] = s
	}
	def, vai := byLabel["HPCC"], byLabel["HPCC VAI SF"]
	if len(def.Y) != 16 || len(vai.Y) != 16 {
		t.Fatalf("want 16 flows per series, got %d and %d", len(def.Y), len(vai.Y))
	}
	// Default HPCC: flows that begin last finish first (Sec. III-E).
	if def.Y[len(def.Y)-1] >= def.Y[0] {
		t.Fatalf("default HPCC: last-started (%.0f us) should finish before first-started (%.0f us)",
			def.Y[len(def.Y)-1], def.Y[0])
	}
	// VAI SF: finish times are much closer together.
	if spread(vai.Y) >= spread(def.Y)/2 {
		t.Fatalf("VAI SF finish spread %.0f us not well below default %.0f us",
			spread(vai.Y), spread(def.Y))
	}
}

func TestFig10SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("datacenter run in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Scale = "small"
	res, err := Run("fig10", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4 protocols", len(res.Series))
	}
	imp := improvementsFromNotes(res)
	// The paper's headline: VAI SF halves the 99.9% tail FCT of long
	// flows. At test scale we require a clear improvement (> 1.2x) for
	// both protocols.
	for _, proto := range []string{"HPCC", "Swift"} {
		v, ok := imp[proto]
		if !ok {
			t.Fatalf("no improvement note for %s: %v", proto, res.Notes)
		}
		if v <= 1.2 {
			t.Errorf("%s long-flow tail improvement = %.2fx, want > 1.2x", proto, v)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	res := &Result{Name: "x", XLabel: "time, (us)", YLabel: "y"}
	s := Series{Label: "a"}
	s.Add(1, 2)
	s.Add(3, 4)
	res.Series = append(res.Series, s)
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "series,\"time, (us)\",y\na,1,2\na,3,4\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestSmoothedReach(t *testing.T) {
	var s Series
	for i, y := range []float64{0, 0.5, 1.0, 1.0, 0.2, 1.0} {
		s.Add(float64(i), y)
	}
	// Window 2 moving averages: 0, .25, .75, 1.0, .6, .6 -> first >= 0.9
	// at x=3.
	if got := smoothedReach(s, 2, 0.9); got != 3 {
		t.Fatalf("smoothedReach = %v, want 3", got)
	}
	if got := smoothedReach(s, 2, 2.0); got != -1 {
		t.Fatalf("unreachable threshold = %v, want -1", got)
	}
	if got := smoothedReach(Series{}, 3, 0.5); got != -1 {
		t.Fatalf("empty series = %v, want -1", got)
	}
}

func TestDCScaleValidation(t *testing.T) {
	_, _, err := dcScale(Config{Scale: "gigantic"})
	if err == nil {
		t.Fatal("unknown scale must error")
	}
	for _, s := range []string{"small", "medium", "large", "full", ""} {
		if _, _, err := dcScale(Config{Scale: s}); err != nil {
			t.Fatalf("scale %q rejected: %v", s, err)
		}
	}
}

func TestIncastDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	run := func() string {
		res, err := Run("fig2", cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := res.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if run() != run() {
		t.Fatal("fig2 not deterministic for a fixed seed")
	}
}

// leadingFloat parses the float prefix of s ("-1 us" -> -1).
func leadingFloat(s string) (float64, error) {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) && (s[end] == '-' || s[end] == '.' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	return strconv.ParseFloat(s[:end], 64)
}

// convergenceFromNotes parses "LABEL: smoothed Jain reaches 0.9 at N us".
func convergenceFromNotes(t *testing.T, res *Result) map[string]float64 {
	t.Helper()
	const marker = ": smoothed Jain reaches 0.9 at "
	out := map[string]float64{}
	for _, n := range res.Notes {
		idx := strings.Index(n, marker)
		if idx < 0 {
			continue
		}
		v, err := leadingFloat(n[idx+len(marker):])
		if err != nil {
			t.Fatalf("bad note %q: %v", n, err)
		}
		out[n[:idx]] = v
	}
	return out
}

// improvementsFromNotes parses "PROTO long-flow tail improvement: N.NNx".
func improvementsFromNotes(res *Result) map[string]float64 {
	const marker = " long-flow tail improvement: "
	out := map[string]float64{}
	for _, n := range res.Notes {
		idx := strings.Index(n, marker)
		if idx < 0 {
			continue
		}
		if v, err := leadingFloat(n[idx+len(marker):]); err == nil {
			out[n[:idx]] = v
		}
	}
	return out
}

// spread is max - min.
func spread(ys []float64) float64 {
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	return hi - lo
}

func TestFig9SwiftStartFinishShape(t *testing.T) {
	res, err := Run("fig9", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Series{}
	for _, s := range res.Series {
		byLabel[s.Label] = s
	}
	def, vai := byLabel["Swift"], byLabel["Swift VAI SF"]
	if def.Y[len(def.Y)-1] >= def.Y[0] {
		t.Fatalf("default Swift: last-started (%.0f us) should finish before first-started (%.0f us)",
			def.Y[len(def.Y)-1], def.Y[0])
	}
	if spread(vai.Y) >= spread(def.Y)/2 {
		t.Fatalf("Swift VAI SF spread %.0f us not well below default %.0f us",
			spread(vai.Y), spread(def.Y))
	}
}

func TestFig2HighAIEqualizesFinish(t *testing.T) {
	res, err := Run("fig2", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Label != "HPCC 1Gbps" {
			continue
		}
		// The high-AI variant's 16 flows finish within a tight band.
		if spread(s.Y) > 100 {
			t.Fatalf("HPCC 1Gbps finish spread = %.0f us, want < 100", spread(s.Y))
		}
		return
	}
	t.Fatal("HPCC 1Gbps series missing")
}

func TestRobustnessSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Scale = "small"
	res, err := Run("robustness", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want HPCC and Swift", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.X) != 5 {
			t.Fatalf("%s has %d seeds, want 5", s.Label, len(s.X))
		}
		for _, v := range s.Y {
			if v <= 0 {
				t.Fatalf("%s non-positive improvement %v", s.Label, v)
			}
		}
	}
}
