package exp

import (
	"fmt"

	"faircc/internal/metrics"
	"faircc/internal/par"
	"faircc/internal/stats"
)

// The robustness experiment re-runs the headline datacenter result
// (Fig. 10's long-flow tail improvement) across several seeds, reporting
// the per-seed improvement factors and their spread — the check a
// skeptical reader wants before trusting a single-seed figure.

func init() {
	register(&Experiment{
		Name: "robustness",
		Title: "Seed sweep of the Fig. 10 headline: long-flow p99.9 " +
			"improvement across 5 seeds",
		Run: runRobustness,
	})
}

func runRobustness(cfg Config) (*Result, error) {
	const nSeeds = 5
	ftCfg, duration, err := dcScale(cfg)
	if err != nil {
		return nil, err
	}
	p := dcParams(dcMinBDP(ftCfg), ftCfg.HostBps)

	outs, err := par.MapErr(nSeeds, cfg.Workers, func(i int) (map[string]float64, error) {
		seedCfg := cfg
		seedCfg.Seed = cfg.Seed + int64(i)
		specs, err := dcTraffic(seedCfg, ftCfg, duration, "hadoop")
		if err != nil {
			return nil, err
		}
		tail := map[string]float64{}
		for _, v := range dcVariants(p) {
			recs, _, err := runDC(seedCfg, v, ftCfg, specs)
			if err != nil {
				return nil, err
			}
			sd, err := metrics.SlowdownAbove(recs, 1_000_000, 99.9)
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", v.label, seedCfg.Seed, err)
			}
			tail[v.label] = sd
		}
		imp := map[string]float64{}
		for _, proto := range []string{"HPCC", "Swift"} {
			if tail[proto+" VAI SF"] > 0 {
				imp[proto] = tail[proto] / tail[proto+" VAI SF"]
			}
		}
		return imp, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Name: "robustness",
		Title:  "Long-flow tail improvement across seeds (Hadoop)",
		XLabel: "seed", YLabel: "p99.9 improvement factor (default / VAI SF)"}
	res.Notef("scale=%s hosts=%d duration=%v seeds=%d", cfg.Scale,
		ftCfg.NumHosts(), duration, nSeeds)
	for _, proto := range []string{"HPCC", "Swift"} {
		s := Series{Label: proto}
		var vals []float64
		for i, imp := range outs {
			v, ok := imp[proto]
			if !ok {
				continue
			}
			s.Add(float64(cfg.Seed+int64(i)), v)
			vals = append(vals, v)
		}
		res.Series = append(res.Series, s)
		if len(vals) > 0 {
			sum := stats.Summarize(vals)
			res.Notef("%s: improvement mean %.2fx, min %.2fx, max %.2fx over %d seeds",
				proto, sum.Mean, sum.Min, sum.Max, len(vals))
		}
	}
	return res, nil
}
