package exp

import (
	"reflect"
	"strings"
	"testing"

	"faircc/internal/net"
	"faircc/internal/sim"
	"faircc/internal/topo"
)

// runToCSV runs one experiment and returns its CSV bytes.
func runToCSV(t *testing.T, name string, cfg Config) string {
	t.Helper()
	res, err := Run(name, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestParallelShardsCSVDeterminism is the fixed-shard-count half of the
// determinism contract, end to end: the same seed and -shards value must
// produce byte-identical experiment CSVs on every repetition, regardless
// of worker goroutine scheduling.
func TestParallelShardsCSVDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("datacenter runs in -short mode")
	}
	for _, shards := range []int{4, 8} {
		cfg := DefaultConfig()
		cfg.Scale = "small"
		cfg.Shards = shards
		a := runToCSV(t, "fig10", cfg)
		b := runToCSV(t, "fig10", cfg)
		if a != b {
			t.Fatalf("same seed, -shards %d: CSVs differ between repetitions", shards)
		}
	}
}

// TestParallelShardsOneMatchesSequential pins -shards 1 to the sequential
// engine bit-for-bit: shard 0 wraps the same engine with the same seeds,
// so the golden CSVs must not move.
func TestParallelShardsOneMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("datacenter runs in -short mode")
	}
	seq := DefaultConfig()
	seq.Scale = "small"
	one := seq
	one.Shards = 1
	a := runToCSV(t, "fig10", seq)
	b := runToCSV(t, "fig10", one)
	if a != b {
		t.Fatal("-shards 1 CSV differs from the sequential engine's")
	}
}

// TestShardDifferential cross-checks the parallel engine against the
// sequential one on a randomized multihop workload (Poisson Hadoop
// traffic on the small fat-tree). The two runs are not bit-identical —
// sharding re-partitions PRNG streams and boundary tie order — but every
// conservation invariant must agree exactly: each data packet is sent
// once, delivered once, and acknowledged, with nothing dropped, and every
// flow finishes.
func TestShardDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("datacenter runs in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Scale = "small"
	ftCfg, duration, err := dcScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := dcTraffic(cfg, ftCfg, duration, "hadoop")
	if err != nil {
		t.Fatal(err)
	}
	v := hpccVAISF(dcParams(dcMinBDP(ftCfg), ftCfg.HostBps))

	run := func(shards int) net.NetworkStats {
		t.Helper()
		eng := sim.NewEngine()
		nw := net.New(eng, cfg.Seed)
		ft := topo.NewFatTree(nw, ftCfg)
		if shards > 1 {
			assign, k := ft.ShardMap(shards)
			nw.Shard(assign, k)
		}
		for _, spec := range specs {
			nw.AddFlow(spec, v.make())
		}
		if nw.Shards() > 1 {
			pr := nw.NewParallel()
			if err := pr.Run(); err != nil {
				t.Fatal(err)
			}
			if pr.Epochs() == 0 {
				t.Fatal("parallel run completed without epochs")
			}
		} else {
			for !nw.AllFinished() && eng.Step() {
			}
		}
		if !nw.AllFinished() {
			t.Fatalf("shards=%d: flows did not finish", shards)
		}
		if err := nw.CheckConservation(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return nw.Stats()
	}

	seq := run(0)
	par := run(3)
	checkConservationPair(t, seq, par)
}

// checkConservationPair requires two runs of the same workload to agree
// on every conservation invariant exactly, and both to be lossless.
func checkConservationPair(t *testing.T, seq, par net.NetworkStats) {
	t.Helper()
	if seq.Drops() != 0 || par.Drops() != 0 || seq.Retransmits != 0 || par.Retransmits != 0 {
		t.Fatalf("lossless runs recorded losses: seq drops=%d rtx=%d, par drops=%d rtx=%d",
			seq.Drops(), seq.Retransmits, par.Drops(), par.Retransmits)
	}
	type inv struct {
		flows                                                        int
		dataSent, dataDelivered, acksSent, payloadSent, payloadAcked int64
	}
	invOf := func(s net.NetworkStats) inv {
		return inv{s.FlowsFinished, s.DataSent, s.DataDelivered, s.AcksSent, s.PayloadSent, s.PayloadAcked}
	}
	if a, b := invOf(seq), invOf(par); a != b {
		t.Fatalf("conservation invariants differ:\nsequential %+v\nparallel   %+v", a, b)
	}
	if seq.DataSent != seq.DataDelivered {
		t.Fatalf("lossless run lost packets: sent %d, delivered %d", seq.DataSent, seq.DataDelivered)
	}
}

// TestShardPartitionerDifferential pins the partition half of the
// determinism contract across partitioners: the spine-split ShardMap and
// the retained PR-5 ShardMapPodSpine reference each give bit-identical
// per-flow completion times on repeated runs, and the two partitions
// agree on every conservation invariant (they re-split PRNG streams and
// boundary tie order, so completion times may legitimately differ
// *between* partitioners — only *within* one must they be exact).
func TestShardPartitionerDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("datacenter runs in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Scale = "small"
	ftCfg, duration, err := dcScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := dcTraffic(cfg, ftCfg, duration, "hadoop")
	if err != nil {
		t.Fatal(err)
	}
	v := hpccVAISF(dcParams(dcMinBDP(ftCfg), ftCfg.HostBps))

	run := func(split func(*topo.FatTree) ([]int, int)) ([]sim.Time, net.NetworkStats) {
		t.Helper()
		eng := sim.NewEngine()
		nw := net.New(eng, cfg.Seed)
		ft := topo.NewFatTree(nw, ftCfg)
		assign, k := split(ft)
		nw.Shard(assign, k)
		flows := make([]*net.Flow, 0, len(specs))
		for _, spec := range specs {
			flows = append(flows, nw.AddFlow(spec, v.make()))
		}
		if err := nw.NewParallel().Run(); err != nil {
			t.Fatal(err)
		}
		if !nw.AllFinished() {
			t.Fatal("flows did not finish")
		}
		if err := nw.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		fcts := make([]sim.Time, len(flows))
		for i, f := range flows {
			fcts[i] = f.FinishedAt
		}
		return fcts, nw.Stats()
	}

	const shards = 4
	splitNew := func(ft *topo.FatTree) ([]int, int) { return ft.ShardMap(shards) }
	splitOld := func(ft *topo.FatTree) ([]int, int) { return ft.ShardMapPodSpine(shards) }

	newA, newStats := run(splitNew)
	newB, _ := run(splitNew)
	if !reflect.DeepEqual(newA, newB) {
		t.Fatal("spine-split partition: per-flow completion times differ between repetitions")
	}
	oldA, oldStats := run(splitOld)
	oldB, _ := run(splitOld)
	if !reflect.DeepEqual(oldA, oldB) {
		t.Fatal("legacy pod-spine partition: per-flow completion times differ between repetitions")
	}
	checkConservationPair(t, newStats, oldStats)
}
