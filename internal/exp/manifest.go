package exp

import (
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"faircc/internal/metrics"
)

// Manifest is the provenance record emitted next to an experiment's CSV:
// everything needed to reproduce the run (name, scale, seed, code
// version) and to compare its performance against other runs (RunStats).
type Manifest struct {
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	Scale      string `json:"scale"`
	Seed       int64  `json:"seed"`
	Workers    int    `json:"workers"`
	Shards     int    `json:"shards,omitempty"`

	GitDescribe string `json:"git_describe,omitempty"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	StartedAt   time.Time `json:"started_at"`
	WallSeconds float64   `json:"wall_seconds"`

	Stats *metrics.RunStats `json:"run_stats,omitempty"`
	Notes []string          `json:"notes,omitempty"`
}

// BuildManifest assembles a manifest for a completed experiment run.
func BuildManifest(name string, cfg Config, res *Result, stats *metrics.RunStats,
	started time.Time, wall time.Duration) Manifest {
	m := Manifest{
		Experiment:  name,
		Scale:       cfg.Scale,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		Shards:      cfg.Shards,
		GitDescribe: GitDescribe(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		StartedAt:   started.UTC(),
		WallSeconds: wall.Seconds(),
		Stats:       stats,
	}
	if res != nil {
		m.Title = res.Title
		m.Notes = res.Notes
	}
	return m
}

// WriteJSON emits the manifest as indented JSON.
func (m Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteManifest writes the manifest to dir/<experiment>.manifest.json,
// creating dir if needed, and returns the path written.
func WriteManifest(dir string, m Manifest) (string, error) {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, m.Experiment+".manifest.json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// GitDescribe returns `git describe --always --dirty --tags` for the
// working tree, or "" when git or the repository is unavailable (the
// manifest then simply omits the field).
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
