package exp

import (
	"fmt"

	"faircc/internal/cc"
	"faircc/internal/cc/hpcc"
	"faircc/internal/metrics"
	"faircc/internal/net"
	"faircc/internal/par"
	"faircc/internal/sim"
	"faircc/internal/topo"
)

// The ablations sweep the design parameters DESIGN.md calls out: AI_Cap
// (latency versus fairness), the Sampling Frequency s (bandwidth versus
// fairness), and the dampener constant (feedback-loop protection under
// heavy incast). All use the 16-1 or 96-1 incast on the star topology.

func hpccWithVAI(minBDP float64, mutate func(*hpcc.Config)) algoMaker {
	return func() cc.Algorithm {
		c := hpcc.VAISFConfig(minBDP)
		mutate(&c)
		return hpcc.New(c)
	}
}

func sweepExperiment(name, title string, senders int, values []float64,
	build func(minBDP float64, value float64) algoMaker) *Experiment {
	return &Experiment{
		Name:  name,
		Title: title,
		Run: func(cfg Config) (*Result, error) {
			minBDP := starMinBDP(senders)
			outs, err := par.MapErr(len(values), cfg.Workers, func(i int) (*incastOut, error) {
				v := variant{label: fmt.Sprintf("%s=%g", name, values[i]), make: build(minBDP, values[i])}
				o := runIncast(cfg, v, senders, nil)
				if o.err != nil {
					return nil, fmt.Errorf("%s: %w", o.label, o.err)
				}
				return o, nil
			})
			if err != nil {
				return nil, err
			}
			res := &Result{Name: name, Title: title,
				XLabel: "parameter value", YLabel: "metric"}
			conv := Series{Label: "convergence to Jain 0.95 (us)"}
			queue := Series{Label: "max queue (KB)"}
			finish := Series{Label: "last flow finish (us)"}
			for i, o := range outs {
				conv.Add(values[i], o.convergeUs)
				queue.Add(values[i], o.maxQueueKB)
				last := 0.0
				for _, y := range o.startFinish.Y {
					if y > last {
						last = y
					}
				}
				finish.Add(values[i], last)
				res.Notef("value %g: converge %.0f us, max queue %.0f KB, done %.0f us",
					values[i], o.convergeUs, o.maxQueueKB, last)
			}
			res.Series = append(res.Series, conv, queue, finish)
			return res, nil
		},
	}
}

func init() {
	register(sweepExperiment("ablate-aicap",
		"AI_Cap sweep on 16-1 incast (HPCC VAI SF): latency vs fairness",
		16, []float64{10, 50, 100, 200, 500},
		func(minBDP, v float64) algoMaker {
			return hpccWithVAI(minBDP, func(c *hpcc.Config) { c.VAI.AICap = v })
		}))

	register(sweepExperiment("ablate-sf",
		"Sampling Frequency sweep on 16-1 incast (HPCC VAI SF): bandwidth vs fairness",
		16, []float64{5, 15, 30, 60, 120},
		func(minBDP, v float64) algoMaker {
			return hpccWithVAI(minBDP, func(c *hpcc.Config) { c.SFEvery = int(v) })
		}))

	register(sweepExperiment("ablate-dampener",
		"Dampener constant sweep on 96-1 incast (HPCC VAI SF): feedback protection",
		96, []float64{1, 4, 8, 32, 128},
		func(minBDP, v float64) algoMaker {
			return hpccWithVAI(minBDP, func(c *hpcc.Config) { c.VAI.DampenerConst = v })
		}))

	register(&Experiment{
		Name: "ablate-newflow",
		Title: "New flow joins while incumbents hold a high dampener " +
			"(Sec. V-A corner case): VAI must still improve fairness",
		Run: runNewFlowAblation,
	})
}

// runNewFlowAblation reproduces the Sec. V-A scenario: two incumbent flows
// congest a link long enough to accumulate dampener, then a third joins
// with a fresh (zero) dampener. The paper reports VAI still improves
// fairness; we compare convergence after the join against default HPCC.
func runNewFlowAblation(cfg Config) (*Result, error) {
	minBDP := starMinBDP(3)
	join := 500 * sim.Microsecond
	run := func(v variant) (*incastOut, float64) {
		eng := sim.NewEngine()
		nw := net.New(eng, cfg.Seed)
		st := topo.NewStar(nw, 4, hostRate, linkDelay)
		dst := st.Hosts[3].NodeID()
		rec := &metrics.FCTRecorder{}
		rec.Attach(nw)
		const size = 8_000_000
		for _, spec := range []net.FlowSpec{
			{ID: 1, Src: st.Hosts[0].NodeID(), Dst: dst, Size: size, Start: 0},
			{ID: 2, Src: st.Hosts[1].NodeID(), Dst: dst, Size: size, Start: 0},
			{ID: 3, Src: st.Hosts[2].NodeID(), Dst: dst, Size: size / 2, Start: join},
		} {
			nw.AddFlow(spec, v.make())
		}
		jain := metrics.SampleJain(nw, v.label, 2*sim.Microsecond, 0, horizon)
		runSim(cfg, v.label, eng, nw)
		cfg.notePeakFCT(len(rec.Records))
		out := &incastOut{label: v.label, allFinished: nw.AllFinished()}
		for _, p := range jain.Points {
			out.jain.Add(p.T.Microseconds(), p.V)
		}
		out.jain.Label = v.label
		// Convergence measured after the join only.
		var post Series
		for _, p := range jain.Points {
			if p.T >= join {
				post.Add(p.T.Microseconds(), p.V)
			}
		}
		return out, smoothedReach(post, 5, 0.9)
	}

	hp := variant{"HPCC", hpccBaselines()[0].make}
	vai := hpccVAISF(starParams(minBDP, hostRate))
	res := &Result{Name: "ablate-newflow", Title: "New flow vs high-dampener incumbents",
		XLabel: "time (us)", YLabel: "Jain fairness index"}
	for _, v := range []variant{hp, vai} {
		out, settle := run(v)
		if !out.allFinished {
			res.Notef("%s: flows did not all finish", v.label)
			continue
		}
		res.Series = append(res.Series, out.jain)
		if settle >= 0 {
			res.Notef("%s: post-join smoothed Jain reaches 0.9 at %.0f us", v.label, settle)
		} else {
			res.Notef("%s: smoothed Jain never reached 0.9 after the join", v.label)
		}
	}
	return res, nil
}
