package exp

import (
	"fmt"

	"faircc/internal/metrics"
	"faircc/internal/net"
	"faircc/internal/par"
)

// The ack-coalesce experiment measures the controlled divergence that
// receiver-side ACK coalescing (net.Network.AckCoalesce) introduces: the
// same fig10 scenario — Hadoop traffic on the fat-tree under all four
// protocols — run with per-packet ACKs (the paper's model, the recorded
// goldens) and with coalescing on, side by side. The interesting outputs
// are the FCT-slowdown percentiles per mode (how much the coarser ACK
// cadence costs the congestion-control loops) and the ACK counters (how
// much reverse-path event traffic disappears). EXPERIMENTS.md records the
// divergence table this produces.

func init() {
	register(&Experiment{
		Name: "ack-coalesce",
		Title: "Receiver ACK coalescing: FCT divergence vs reverse-path savings, " +
			"Hadoop traffic on the fat-tree",
		Run: runAckCoalesce,
	})
}

// coalesceOut is one (variant, mode) run's output.
type coalesceOut struct {
	records []metrics.FlowRecord
	stats   net.NetworkStats
}

// coalesceModeLabel names the two ACK models in series labels and notes.
func coalesceModeLabel(coalesce bool) string {
	if coalesce {
		return "coalesced"
	}
	return "per-packet"
}

func runAckCoalesce(cfg Config) (*Result, error) {
	ftCfg, duration, err := dcScale(cfg)
	if err != nil {
		return nil, err
	}
	specs, err := dcTraffic(cfg, ftCfg, duration, "hadoop")
	if err != nil {
		return nil, err
	}
	p := dcParams(dcMinBDP(ftCfg), ftCfg.HostBps)
	vs := dcVariants(p)

	// All (variant, mode) pairs in parallel: i%len(vs) picks the variant,
	// i/len(vs) the mode, so the two modes of one variant share identical
	// traffic and differ only in the receiver's ACK model.
	outs, err := par.MapErr(2*len(vs), cfg.Workers, func(i int) (coalesceOut, error) {
		c := cfg
		c.AckCoalesce = i >= len(vs)
		records, stats, err := runDC(c, vs[i%len(vs)], ftCfg, specs)
		if err != nil {
			return coalesceOut{}, fmt.Errorf("%s: %w", coalesceModeLabel(c.AckCoalesce), err)
		}
		return coalesceOut{records: records, stats: stats}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Name: "ack-coalesce",
		Title:  "FCT slowdown, per-packet vs coalesced ACKs",
		XLabel: "flow size (bytes)",
		YLabel: "p99.9 FCT slowdown"}
	res.Notef("scale=%s hosts=%d duration=%v load=%.0f%% flows=%d",
		cfg.Scale, ftCfg.NumHosts(), duration, dcLoad*100, len(specs))

	for i, o := range outs {
		label := fmt.Sprintf("%s (%s)", vs[i%len(vs)].label, coalesceModeLabel(i >= len(vs)))
		s := Series{Label: label}
		for _, b := range metrics.BucketBySize(o.records, 100, 99.9) {
			s.Add(float64(b.MaxSize), b.Slowdown)
		}
		res.Series = append(res.Series, s)
		note := label + ":"
		for _, pct := range []float64{50, 99, 99.9} {
			if sd, err := metrics.SlowdownAbove(o.records, 0, pct); err == nil {
				note += fmt.Sprintf(" p%v=%.2fx", pct, sd)
			}
		}
		if sd, err := metrics.SlowdownAbove(o.records, 1_000_000, 99.9); err == nil {
			note += fmt.Sprintf(" long(>1MB)p99.9=%.1fx", sd)
		}
		res.Notes = append(res.Notes, note)
	}

	// Pair the modes per variant: reverse-path savings and conservation.
	for i, v := range vs {
		off, on := outs[i], outs[i+len(vs)]
		merged := on.stats.AcksSent + on.stats.AcksCoalesced
		if merged != on.stats.DataDelivered+on.stats.DataOutOfSeq {
			return nil, fmt.Errorf("%s: ack conservation broke: sent %d + coalesced %d != delivered %d + outOfSeq %d",
				v.label, on.stats.AcksSent, on.stats.AcksCoalesced,
				on.stats.DataDelivered, on.stats.DataOutOfSeq)
		}
		rate := 0.0
		if merged > 0 {
			rate = 100 * float64(on.stats.AcksCoalesced) / float64(merged)
		}
		res.Notef("%s: acks on the wire %d -> %d (%d merged, %.1f%% of acknowledgements)",
			v.label, off.stats.AcksSent, on.stats.AcksSent, on.stats.AcksCoalesced, rate)
	}
	return res, nil
}
