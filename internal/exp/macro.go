package exp

import (
	"fmt"

	"faircc/internal/metrics"
	"faircc/internal/net"
	"faircc/internal/par"
)

// The macro-events experiment is the determinism audit and savings report
// for macro-event packet trains (net.Network.MacroEvents): the same fig10
// scenario — Hadoop traffic on the fat-tree under all four protocols — run
// with per-packet pacing wakeups and with train fusion on, side by side.
// Unlike ack-coalesce (a controlled behavioral divergence), train fusion is
// an exact elision: the fused wakeup would have executed at the very next
// sequence number of the same timestamp, so every per-flow record must
// match bit for bit between modes. The experiment hard-fails on the first
// mismatch rather than plotting a divergence — a non-empty diff means the
// fusion proof no longer holds and the goldens are at risk. The interesting
// outputs are the elision counters: how many scheduler round trips the
// trains removed, and the merge rate relative to data-packet sends.
// EXPERIMENTS.md records the savings table this produces.

func init() {
	register(&Experiment{
		Name: "macro-events",
		Title: "Macro-event trains: bit-identity audit and scheduler savings, " +
			"Hadoop traffic on the fat-tree",
		Run: runMacroEvents,
	})
}

// macroOut is one (variant, mode) run's output.
type macroOut struct {
	records []metrics.FlowRecord
	stats   net.NetworkStats
}

// macroModeLabel names the two pacing models in series labels and notes.
func macroModeLabel(macro bool) string {
	if macro {
		return "trains"
	}
	return "per-packet"
}

func runMacroEvents(cfg Config) (*Result, error) {
	ftCfg, duration, err := dcScale(cfg)
	if err != nil {
		return nil, err
	}
	specs, err := dcTraffic(cfg, ftCfg, duration, "hadoop")
	if err != nil {
		return nil, err
	}
	p := dcParams(dcMinBDP(ftCfg), ftCfg.HostBps)
	vs := dcVariants(p)

	// All (variant, mode) pairs in parallel: i%len(vs) picks the variant,
	// i/len(vs) the mode, so the two modes of one variant share identical
	// traffic and must produce identical results.
	outs, err := par.MapErr(2*len(vs), cfg.Workers, func(i int) (macroOut, error) {
		c := cfg
		c.MacroEvents = i >= len(vs)
		records, stats, err := runDC(c, vs[i%len(vs)], ftCfg, specs)
		if err != nil {
			return macroOut{}, fmt.Errorf("%s: %w", macroModeLabel(c.MacroEvents), err)
		}
		return macroOut{records: records, stats: stats}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Name: "macro-events",
		Title:  "FCT slowdown under macro-event trains (must equal per-packet)",
		XLabel: "flow size (bytes)",
		YLabel: "p99.9 FCT slowdown"}
	res.Notef("scale=%s hosts=%d duration=%v load=%.0f%% flows=%d",
		cfg.Scale, ftCfg.NumHosts(), duration, dcLoad*100, len(specs))

	// Bit-identity audit, then the paired savings notes.
	for i, v := range vs {
		off, on := outs[i], outs[i+len(vs)]
		if err := sameRecords(off.records, on.records); err != nil {
			return nil, fmt.Errorf("%s: macro-event trains diverged from per-packet execution: %w", v.label, err)
		}
		if off.stats.DataSent != on.stats.DataSent || off.stats.AcksSent != on.stats.AcksSent {
			return nil, fmt.Errorf("%s: traffic counters diverged: data %d vs %d, acks %d vs %d",
				v.label, off.stats.DataSent, on.stats.DataSent, off.stats.AcksSent, on.stats.AcksSent)
		}
		rate := 0.0
		if on.stats.DataSent > 0 {
			rate = 100 * float64(on.stats.EventsElided) / float64(on.stats.DataSent)
		}
		res.Notef("%s: bit-identical; %d pacing wakeups fused into drains (%.2f%% of data sends)",
			v.label, on.stats.EventsElided, rate)
	}

	// One curve per variant (the modes are identical, so plot the train
	// mode's records — the audit above guarantees the other would overlay).
	for i, v := range vs {
		s := Series{Label: v.label}
		for _, b := range metrics.BucketBySize(outs[i+len(vs)].records, 100, 99.9) {
			s.Add(float64(b.MaxSize), b.Slowdown)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// sameRecords asserts two flow-record sets are bit-identical, reporting the
// first mismatch with enough context to debug a broken fusion invariant.
func sameRecords(a, b []metrics.FlowRecord) error {
	if len(a) != len(b) {
		return fmt.Errorf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	return nil
}
