package exp

import (
	"strings"
	"testing"
)

// TestAckCoalesceExperiment runs the divergence experiment at small scale:
// both modes of all four protocols must complete, produce paired series,
// and the coalesced mode must actually merge ACKs (the fat-tree workload
// is bidirectional per host, so uplinks carry data and ACKs together —
// exactly the contention coalescing targets).
func TestAckCoalesceExperiment(t *testing.T) {
	cfg := Config{Seed: 1, Scale: "small"}
	res, err := Run("ack-coalesce", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 8 {
		t.Fatalf("series = %d, want 8 (4 protocols x 2 ACK modes)", len(res.Series))
	}
	var perPacket, coalesced int
	for _, s := range res.Series {
		if len(s.X) == 0 {
			t.Fatalf("series %q is empty", s.Label)
		}
		switch {
		case strings.Contains(s.Label, "(per-packet)"):
			perPacket++
		case strings.Contains(s.Label, "(coalesced)"):
			coalesced++
		default:
			t.Fatalf("series %q names no ACK mode", s.Label)
		}
	}
	if perPacket != 4 || coalesced != 4 {
		t.Fatalf("mode split %d/%d, want 4/4", perPacket, coalesced)
	}
	// The pairing notes carry the reverse-path savings; at least one
	// variant must have merged something or the experiment measured
	// nothing.
	merged := false
	for _, n := range res.Notes {
		if strings.Contains(n, "merged") && !strings.Contains(n, "(0 merged") {
			merged = true
		}
	}
	if !merged {
		t.Fatalf("no variant coalesced any ACK; notes: %v", res.Notes)
	}
}

// TestAckCoalesceConfigPlumbing: the Config knob must reach the network —
// an incast with hosts only receiving keeps uplinks idle, so drive the
// fig10 path at small scale and compare run stats across modes.
func TestAckCoalesceConfigPlumbing(t *testing.T) {
	ftCfg, duration, err := dcScale(Config{Seed: 1, Scale: "small"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 1, Scale: "small"}
	specs, err := dcTraffic(cfg, ftCfg, duration, "hadoop")
	if err != nil {
		t.Fatal(err)
	}
	p := dcParams(dcMinBDP(ftCfg), ftCfg.HostBps)
	v := dcVariants(p)[0]

	_, off, err := runDC(cfg, v, ftCfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if off.AcksCoalesced != 0 {
		t.Fatalf("coalesced %d ACKs with the knob off", off.AcksCoalesced)
	}
	on := cfg
	on.AckCoalesce = true
	_, st, err := runDC(on, v, ftCfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.AcksCoalesced == 0 {
		t.Fatal("knob on but no ACK coalesced on the fat-tree workload")
	}
	if st.AcksSent+st.AcksCoalesced != st.DataDelivered+st.DataOutOfSeq {
		t.Fatalf("ack conservation broke: %+v", st)
	}
	if st.AcksSent >= off.AcksSent {
		t.Fatalf("coalescing did not reduce wire ACKs: %d -> %d", off.AcksSent, st.AcksSent)
	}
}
