package exp

import (
	"strings"
	"testing"
)

// TestEveryExperimentRuns executes the full registry at small scale: every
// registered experiment must complete, produce at least one non-empty
// series, and pass the network conservation checks its runner performs.
// This is the repository's broadest integration test.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Scale = "small"
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(name, cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", name, err)
			}
			if len(res.Series) == 0 {
				t.Fatalf("%s produced no series", name)
			}
			for _, s := range res.Series {
				if len(s.X) == 0 {
					t.Fatalf("%s series %q is empty", name, s.Label)
				}
				if len(s.X) != len(s.Y) {
					t.Fatalf("%s series %q has mismatched X/Y", name, s.Label)
				}
			}
			if res.Name != name {
				t.Fatalf("result name %q != experiment %q", res.Name, name)
			}
			// Every experiment must also round-trip through CSV.
			var b strings.Builder
			if err := res.WriteCSV(&b); err != nil {
				t.Fatalf("%s CSV: %v", name, err)
			}
			if !strings.HasPrefix(b.String(), "series,") {
				t.Fatalf("%s CSV missing header", name)
			}
		})
	}
}

// TestExperimentTitlesUnique guards against copy-paste registration
// mistakes.
func TestExperimentTitlesUnique(t *testing.T) {
	seen := map[string]string{}
	for _, name := range Names() {
		e, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if e.Title == "" {
			t.Errorf("%s has no title", name)
		}
		if prev, dup := seen[e.Title]; dup {
			t.Errorf("title %q shared by %s and %s", e.Title, prev, name)
		}
		seen[e.Title] = name
	}
}

// TestClaims runs the artifact-evaluation self-check at small scale.
func TestClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims sweep in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Scale = "small"
	claims := Claims()
	if len(claims) < 8 {
		t.Fatalf("only %d claims registered", len(claims))
	}
	seen := map[string]bool{}
	for _, c := range claims {
		c := c
		if seen[c.Name] {
			t.Fatalf("duplicate claim %q", c.Name)
		}
		seen[c.Name] = true
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			ok, detail, err := c.Check(cfg)
			if err != nil {
				t.Fatalf("%s errored: %v", c.Name, err)
			}
			if !ok {
				t.Errorf("%s not reproduced: %s", c.Name, detail)
			}
		})
	}
}
