package exp

import (
	"fmt"
	"strings"
)

// Claim is one falsifiable statement from the paper, checked against a
// fresh simulation run — the artifact-evaluation self-check behind
// `fairsim -verify`.
type Claim struct {
	Name  string
	Text  string // the paper's claim, paraphrased
	Check func(Config) (bool, string, error)
}

// Claims returns the paper's checkable claims in presentation order.
func Claims() []Claim {
	return []Claim{
		{
			Name: "incast-inversion",
			Text: "Sec. III-E: under default HPCC, incast flows that begin last finish first",
			Check: func(cfg Config) (bool, string, error) {
				res, err := Run("fig2", cfg)
				if err != nil {
					return false, "", err
				}
				for _, s := range res.Series {
					if s.Label != "HPCC" {
						continue
					}
					first, last := s.Y[0], s.Y[len(s.Y)-1]
					return last < first,
						fmt.Sprintf("first-started finishes %.0f us, last-started %.0f us", first, last), nil
				}
				return false, "HPCC series missing", nil
			},
		},
		{
			Name: "vaisf-convergence-hpcc",
			Text: "Sec. VI-B: HPCC VAI SF converges to fairness much faster than default",
			Check: func(cfg Config) (bool, string, error) {
				return convergenceClaim(cfg, "fig5a", "HPCC", 2)
			},
		},
		{
			Name: "vaisf-convergence-swift",
			Text: "Sec. VI-B: Swift VAI SF converges to fairness faster than default",
			Check: func(cfg Config) (bool, string, error) {
				return convergenceClaim(cfg, "fig6a", "Swift", 1.5)
			},
		},
		{
			Name: "near-zero-queues",
			Text: "Sec. VI-B: HPCC with VAI SF still maintains near-zero steady queues",
			Check: func(cfg Config) (bool, string, error) {
				res, err := Run("fig5b", cfg)
				if err != nil {
					return false, "", err
				}
				var def, vai float64 = -1, -1
				for _, n := range res.Notes {
					var v float64
					if _, err := fmt.Sscanf(n, "HPCC: max queue %f", &v); err == nil && strings.Contains(n, "steady-state") {
						def = steadyFromNote(n)
					}
					if strings.HasPrefix(n, "HPCC VAI SF:") {
						vai = steadyFromNote(n)
					}
				}
				if def < 0 || vai < 0 {
					return false, fmt.Sprintf("notes unparsed: %v", res.Notes), nil
				}
				// "Near zero": within 5 KB of the default's steady queue.
				return vai < def+5,
					fmt.Sprintf("steady queue: default %.1f KB, VAI SF %.1f KB", def, vai), nil
			},
		},
		{
			Name: "tail-fct-halved",
			Text: "Abstract: the mechanisms reduce 99.9% tail FCT of long flows by ~2x",
			Check: func(cfg Config) (bool, string, error) {
				res, err := Run("fig11", cfg)
				if err != nil {
					return false, "", err
				}
				imp := improvementsFromResult(res)
				h, s := imp["HPCC"], imp["Swift"]
				// At small scale the tail is noisy; require a clear
				// improvement for at least one protocol and no
				// regression for the other.
				ok := (h > 1.5 || s > 1.5) && h > 0.8 && s > 0.8
				return ok, fmt.Sprintf("improvement: HPCC %.2fx, Swift %.2fx", h, s), nil
			},
		},
		{
			Name: "median-unaffected",
			Text: "Sec. VI-B: VAI and SF have no significant repercussions on median FCT (HPCC)",
			Check: func(cfg Config) (bool, string, error) {
				res, err := Run("fig12", cfg)
				if err != nil {
					return false, "", err
				}
				var def, vai float64 = -1, -1
				for _, n := range res.Notes {
					fmt.Sscanf(n, "HPCC: p50 slowdown of >1MB flows = %f", &def)
					fmt.Sscanf(n, "HPCC VAI SF: p50 slowdown of >1MB flows = %f", &vai)
				}
				if def <= 0 || vai <= 0 {
					return false, "median notes missing", nil
				}
				return vai < def*1.5,
					fmt.Sprintf("median >1MB slowdown: default %.1fx, VAI SF %.1fx", def, vai), nil
			},
		},
		{
			Name: "fluid-model",
			Text: "Sec. IV-B: the fluid-model fairness gap is positive and then diminishes",
			Check: func(cfg Config) (bool, string, error) {
				res, err := Run("fig4", cfg)
				if err != nil {
					return false, "", err
				}
				y := res.Series[0].Y
				peak := 0.0
				for _, v := range y {
					if v > peak {
						peak = v
					}
				}
				ok := peak > 1 && y[len(y)-1] < peak/4
				return ok, fmt.Sprintf("peak %.2f bytes/ns, final %.4f", peak, y[len(y)-1]), nil
			},
		},
		{
			Name: "newflow-corner-case",
			Text: "Sec. V-A: VAI still improves fairness when a new flow meets high-dampener incumbents",
			Check: func(cfg Config) (bool, string, error) {
				res, err := Run("ablate-newflow", cfg)
				if err != nil {
					return false, "", err
				}
				conv := map[string]float64{}
				for _, n := range res.Notes {
					const marker = ": post-join smoothed Jain reaches 0.9 at "
					if idx := strings.Index(n, marker); idx >= 0 {
						var v float64
						fmt.Sscanf(n[idx+len(marker):], "%f", &v)
						conv[n[:idx]] = v
					}
				}
				d, v := conv["HPCC"], conv["HPCC VAI SF"]
				if d == 0 || v == 0 {
					return false, fmt.Sprintf("notes unparsed: %v", res.Notes), nil
				}
				return v < d, fmt.Sprintf("post-join convergence: default %.0f us, VAI SF %.0f us", d, v), nil
			},
		},
	}
}

func convergenceClaim(cfg Config, fig, proto string, factor float64) (bool, string, error) {
	res, err := Run(fig, cfg)
	if err != nil {
		return false, "", err
	}
	conv := map[string]float64{}
	const marker = ": smoothed Jain reaches 0.9 at "
	for _, n := range res.Notes {
		if idx := strings.Index(n, marker); idx >= 0 {
			var v float64
			fmt.Sscanf(n[idx+len(marker):], "%f", &v)
			conv[n[:idx]] = v
		}
	}
	d, v := conv[proto], conv[proto+" VAI SF"]
	detail := fmt.Sprintf("convergence: default %.0f us, VAI SF %.0f us", d, v)
	if d <= 0 || v <= 0 {
		return false, detail, nil
	}
	return v*factor <= d, detail, nil
}

func steadyFromNote(n string) float64 {
	const marker = "steady-state mean "
	idx := strings.Index(n, marker)
	if idx < 0 {
		return -1
	}
	var v float64
	fmt.Sscanf(n[idx+len(marker):], "%f", &v)
	return v
}

func improvementsFromResult(res *Result) map[string]float64 {
	const marker = " long-flow tail improvement: "
	out := map[string]float64{}
	for _, n := range res.Notes {
		if idx := strings.Index(n, marker); idx >= 0 {
			var v float64
			fmt.Sscanf(n[idx+len(marker):], "%f", &v)
			out[n[:idx]] = v
		}
	}
	return out
}
