package exp

import (
	"strings"
	"testing"

	"faircc/internal/metrics"
	"faircc/internal/sim"
	"faircc/internal/stats"
)

// TestRTTUnfairnessRuns: both scenarios run end-to-end at small scale and
// report what the family promises — aggregate plus per-class Jain series
// per variant, per-class FCT percentile notes, and the peak-retention
// gauge from the streaming collector.
func TestRTTUnfairnessRuns(t *testing.T) {
	for _, name := range []string{"rtt-unfairness", "rtt-unfairness-wan"} {
		res, rs, err := RunWithStats(name, Config{Seed: 1, Scale: "small"})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// 4 variants x (all + fast + slow).
		if len(res.Series) != 12 {
			t.Fatalf("%s: %d series, want 12", name, len(res.Series))
		}
		for _, suffix := range []string{"", " fast", " slow"} {
			for _, v := range []string{"HPCC", "HPCC VAI SF", "Swift", "Swift VAI SF"} {
				found := false
				for _, s := range res.Series {
					if s.Label == v+suffix {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: missing series %q", name, v+suffix)
				}
			}
		}
		wantNotes := []string{"base RTT", "FCT p50", "slowdown p50", "steady-state Jain", "peak retained"}
		for _, frag := range wantNotes {
			found := false
			for _, n := range res.Notes {
				if strings.Contains(n, frag) {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: no note mentioning %q", name, frag)
			}
		}
		if rs.PeakFCTRecords == 0 {
			t.Errorf("%s: PeakFCTRecords gauge not recorded", name)
		}
	}
}

// TestRTTUnfairnessDeterministic: same seed, same CSV.
func TestRTTUnfairnessDeterministic(t *testing.T) {
	cfg := Config{Seed: 3, Scale: "small"}
	if a, b := runToCSV(t, "rtt-unfairness", cfg), runToCSV(t, "rtt-unfairness", cfg); a != b {
		t.Fatal("same seed: rtt-unfairness CSVs differ between repetitions")
	}
}

// TestRTTKnobsApply: the Config overrides reach the topology.
func TestRTTKnobsApply(t *testing.T) {
	s, err := rttScale(Config{Scale: "small",
		RTTSlowDelay: 100 * sim.Microsecond, RTTSenders: 2})
	if err != nil {
		t.Fatal(err)
	}
	last := len(s.dc.Groups) - 1
	if s.dc.Groups[last].AccessDelay != 100*sim.Microsecond {
		t.Fatalf("slow delay = %v, want 100us", s.dc.Groups[last].AccessDelay)
	}
	for i, g := range s.dc.Groups {
		if g.Count != 2 {
			t.Fatalf("group %d count = %d, want 2", i, g.Count)
		}
	}
	if _, err := rttScale(Config{Scale: "nope"}); err == nil {
		t.Fatal("unknown scale must error")
	}
}

// TestStreamedPercentilesMatchRetainedOnGoldenRuns feeds the exact
// per-flow records of the golden runs — the seed-1 16-1 incast behind
// fig9 and the seed-1 small-scale fat-tree run behind fig10 — through the
// streaming accumulator and requires its percentiles to equal the
// retained-slice path bit-for-bit. This is the contract that lets the
// streaming collector replace record retention without moving any figure.
func TestStreamedPercentilesMatchRetainedOnGoldenRuns(t *testing.T) {
	cfg := Config{Seed: 1, Scale: "small"}

	var cases []struct {
		name string
		recs []metrics.FlowRecord
	}

	// fig9's scenario: the 16-1 incast (startFinish figure source).
	p := starParams(starMinBDP(16), hostRate)
	out := runIncast(cfg, hpccVAISF(p), 16, nil)
	if out.err != nil {
		t.Fatal(out.err)
	}
	cases = append(cases, struct {
		name string
		recs []metrics.FlowRecord
	}{"fig9-incast", out.records})

	// fig10's scenario: Hadoop traffic on the scaled fat-tree.
	ftCfg, duration, err := dcScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := dcTraffic(cfg, ftCfg, duration, "hadoop")
	if err != nil {
		t.Fatal(err)
	}
	dp := dcParams(dcMinBDP(ftCfg), ftCfg.HostBps)
	recs, _, err := runDC(cfg, dcVariants(dp)[1], ftCfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name string
		recs []metrics.FlowRecord
	}{"fig10-dc", recs})

	for _, c := range cases {
		if len(c.recs) == 0 {
			t.Fatalf("%s: no records", c.name)
		}
		var acc metrics.Accumulator
		retained := make([]float64, 0, len(c.recs))
		for _, r := range c.recs {
			acc.Add(r.Slowdown)
			retained = append(retained, r.Slowdown)
		}
		for _, pct := range []float64{50, 90, 99, 99.9} {
			want := stats.Percentile(retained, pct)
			if got := acc.Percentile(pct); got != want {
				t.Errorf("%s p%v: streamed %v != retained %v (bit-for-bit contract)",
					c.name, pct, got, want)
			}
		}
	}
}
