package exp

import (
	"math"
	"testing"
)

// Golden regression values for the seed-1 16-1 incast. The simulator is
// fully deterministic, so these are exact; any diff means behaviour
// changed. Update them deliberately (with a re-derivation of
// EXPERIMENTS.md) when a change is intentional.
func TestGoldenIncastSeed1(t *testing.T) {
	want := []struct {
		label      string
		convergeUs float64
		maxQueueKB float64
		lastFinish float64
	}{
		{"HPCC", 885.3504, 105.848, 1496.449679},
		{"HPCC VAI SF", 228.0448, 148.816, 1466.442077},
		{"Swift", 831.6928, 237.896, 1426.39424},
		{"Swift VAI SF", 254.8736, 216.936, 1424.3008},
	}
	p := starParams(starMinBDP(16), hostRate)
	variants := []variant{
		hpccBaselines()[0], hpccVAISF(p),
		swiftBaselines(p)[0], swiftVAISF(p),
	}
	for i, v := range variants {
		out := runIncast(Config{Seed: 1}, v, 16, nil)
		if out.err != nil {
			t.Fatalf("%s: %v", v.label, out.err)
		}
		last := 0.0
		for _, y := range out.startFinish.Y {
			if y > last {
				last = y
			}
		}
		w := want[i]
		if v.label != w.label {
			t.Fatalf("variant order changed: %s vs %s", v.label, w.label)
		}
		if math.Abs(out.convergeUs-w.convergeUs) > 1e-6 ||
			math.Abs(out.maxQueueKB-w.maxQueueKB) > 1e-6 ||
			math.Abs(last-w.lastFinish) > 1e-6 {
			t.Errorf("%s: got (converge=%v, maxQ=%v, last=%v), golden (%v, %v, %v)",
				v.label, out.convergeUs, out.maxQueueKB, last,
				w.convergeUs, w.maxQueueKB, w.lastFinish)
		}
	}
}
