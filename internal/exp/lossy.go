package exp

import (
	"fmt"

	"faircc/internal/net"
	"faircc/internal/topo"
)

// The lossy experiments exercise the robustness subsystem: finite switch
// buffers with tail drop, random wire loss, and the sender-side RTO /
// go-back-N recovery path. Swift — one of the paper's two substrate
// protocols — targets exactly this kind of lossy, PFC-free fabric, so
// the interesting question is how the VAI SF mechanism behaves when the
// network can actually lose its packets.

const (
	// lossyBufferBytes is the per-egress buffer of the lossy runs:
	// 150 KB, below the ~240 KB the unbounded 16-1 incast peaks at, so
	// the buffer genuinely binds.
	lossyBufferBytes = 150_000
	// lossyDropProb is the random per-packet wire-loss probability
	// applied to data and ACKs alike (5e-4 ≈ a handful of losses per
	// 16 MB incast wave).
	lossyDropProb = 5e-4
)

// lossyKnobs resolves the experiment's defaults against any -buffer-bytes
// / -drop-* overrides in the config.
func lossyKnobs(cfg Config) (buf int64, pData, pAck float64) {
	buf, pData, pAck = int64(lossyBufferBytes), lossyDropProb, lossyDropProb
	if cfg.BufferBytes > 0 {
		buf = cfg.BufferBytes
	}
	if cfg.DropDataProb > 0 {
		pData = cfg.DropDataProb
	}
	if cfg.DropAckProb > 0 {
		pAck = cfg.DropAckProb
	}
	return buf, pData, pAck
}

func init() {
	register(&Experiment{
		Name: "incast-lossy",
		Title: "16-1 incast on a lossy fabric: finite buffers, random " +
			"wire loss, RTO/go-back-N recovery",
		Run: runLossyIncast,
	})
	register(&Experiment{
		Name: "incast-pfc-vs-lossy",
		Title: "16-1 incast, lossless (PFC) vs lossy (tail drop + RTO) " +
			"fabric, Swift variants",
		Run: runPFCVsLossy,
	})
}

func runLossyIncast(cfg Config) (*Result, error) {
	p := starParams(starMinBDP(16), hostRate)
	buf, pData, pAck := lossyKnobs(cfg)
	lossy := func(nw *net.Network, st *topo.Star) {
		nw.LossRecovery = true
		nw.DropDataProb = pData
		nw.DropAckProb = pAck
		for _, sp := range st.Switch.Ports() {
			sp.SetBuffer(buf)
		}
	}
	vs := []variant{
		hpccBaselines()[0],
		hpccVAISF(p),
		{"Swift", swiftBaselines(p)[0].make},
		swiftVAISF(p),
	}
	res := &Result{Name: "incast-lossy", Title: "Incast on a lossy fabric",
		XLabel: "time (us)", YLabel: "bottleneck queue (KB)"}
	for _, v := range vs {
		out := runIncast(cfg, v, 16, lossy)
		if out.err != nil {
			return nil, out.err
		}
		if !out.allFinished {
			return nil, fmt.Errorf("%s: flows wedged on the lossy fabric (drops=%d retransmits=%d rtos=%d)",
				v.label, out.stats.Drops(), out.stats.Retransmits, out.stats.RTOFires)
		}
		res.Series = append(res.Series, out.queue)
		res.Notef("%s: %d drops (%d buffer, %d wire), %d retransmits, %d RTOs, %d dup ACKs; "+
			"max queue %.0f KB, last finish %.0f us",
			v.label, out.stats.Drops(), out.stats.BufferDrops, out.stats.WireDrops,
			out.stats.Retransmits, out.stats.RTOFires, out.stats.DupAcks,
			out.maxQueueKB, out.lastFinish.Microseconds())
	}
	return res, nil
}

// runPFCVsLossy contrasts the two ways a fabric survives congestion with
// the same finite buffers: PFC backpressure (lossless — pauses instead of
// drops) versus tail drop with end-to-end recovery. The PFC arm doubles
// as a live losslessness check: any drop there is an error.
func runPFCVsLossy(cfg Config) (*Result, error) {
	p := starParams(starMinBDP(16), hostRate)
	buf, pData, pAck := lossyKnobs(cfg)
	modes := []struct {
		name  string
		setup func(*net.Network, *topo.Star)
	}{
		// Aggressive pause thresholds: PFC engages well before the buffer
		// fills, so finite buffers cannot drop (the headroom invariant the
		// losslessness property test checks at the unit level).
		{"PFC", func(nw *net.Network, st *topo.Star) {
			nw.PFCPauseBytes = 24_000
			nw.PFCResumeBytes = 12_000
			for _, sp := range st.Switch.Ports() {
				sp.SetBuffer(1_000_000)
			}
		}},
		{"lossy", func(nw *net.Network, st *topo.Star) {
			nw.LossRecovery = true
			nw.DropDataProb = pData
			nw.DropAckProb = pAck
			for _, sp := range st.Switch.Ports() {
				sp.SetBuffer(buf)
			}
		}},
	}
	vs := []variant{
		{"Swift", swiftBaselines(p)[0].make},
		swiftVAISF(p),
	}
	res := &Result{Name: "incast-pfc-vs-lossy", Title: "PFC vs lossy fabric",
		XLabel: "time (us)", YLabel: "bottleneck queue (KB)"}
	for _, mode := range modes {
		for _, v := range vs {
			out := runIncast(cfg, v, 16, mode.setup)
			if out.err != nil {
				return nil, fmt.Errorf("%s/%s: %w", mode.name, v.label, out.err)
			}
			if !out.allFinished {
				return nil, fmt.Errorf("%s/%s: flows did not finish", mode.name, v.label)
			}
			if mode.name == "PFC" && out.stats.Drops() > 0 {
				return nil, fmt.Errorf("%s/%s: losslessness violated: %d drops with PFC engaged",
					mode.name, v.label, out.stats.Drops())
			}
			s := out.queue
			s.Label = mode.name + " " + v.label
			res.Series = append(res.Series, s)
			res.Notef("%s %s: %d drops, %d PFC pauses, %d retransmits; max queue %.0f KB, last finish %.0f us",
				mode.name, v.label, out.stats.Drops(), out.pfcPauses,
				out.stats.Retransmits, out.maxQueueKB, out.lastFinish.Microseconds())
		}
	}
	return res, nil
}
