package exp

import (
	"faircc/internal/net"
	"faircc/internal/topo"
)

// The PFC experiment runs the 16-1 incast with finite switch buffers and
// priority flow control — the lossless-Ethernet setting the paper's
// introduction describes (PFC prevents drops but causes head-of-line
// blocking when buffers fill). It checks that congestion control keeps
// the network out of the PFC regime: with HPCC or its VAI SF variant the
// bottleneck queue should stay below a datacenter-realistic pause
// threshold, so PFC never engages and behaviour matches the
// infinite-buffer runs.

func init() {
	register(&Experiment{
		Name: "incast-pfc",
		Title: "16-1 incast with finite buffers and PFC: congestion " +
			"control must avoid the pause regime",
		Run: runPFCIncast,
	})
}

func runPFCIncast(cfg Config) (*Result, error) {
	p := starParams(starMinBDP(16), hostRate)
	// A realistic per-ingress pause threshold for a shallow-buffer
	// switch: 512 KB, far above what HPCC-family control lets the 16-1
	// incast accumulate, but finite.
	pfc := func(nw *net.Network, _ *topo.Star) {
		nw.PFCPauseBytes = 512_000
		nw.PFCResumeBytes = 256_000
	}
	vs := []variant{
		hpccBaselines()[0],
		hpccVAISF(p),
		{"Swift", swiftBaselines(p)[0].make},
		swiftVAISF(p),
	}
	res := &Result{Name: "incast-pfc", Title: "Incast under PFC",
		XLabel: "time (us)", YLabel: "bottleneck queue (KB)"}
	for _, v := range vs {
		out := runIncast(cfg, v, 16, pfc)
		if out.err != nil {
			return nil, out.err
		}
		if !out.allFinished {
			return nil, errNotFinished(v.label)
		}
		res.Series = append(res.Series, out.queue)
		regime := "below"
		if out.pfcPauses > 0 {
			regime = "REACHED"
		}
		res.Notef("%s: max queue %.0f KB, %d PFC pauses (%s the 512 KB pause threshold); converge %.0f us",
			v.label, out.maxQueueKB, out.pfcPauses, regime, out.convergeUs)
	}
	return res, nil
}
