package exp

import (
	"testing"
)

// BenchmarkFig10Large times the paper-scale experiment at the "large"
// scale: the full 320-host fat-tree with 1 ms of traffic — the forwarding
// tables, ECMP fan-out, and flow churn of a `-scale full` run at a
// benchmarkable duration. It reports engine throughput and the two
// hot-path allocation counters the fast-path work keeps at zero.
func BenchmarkFig10Large(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Scale = "large"
	cfg.Seed = 1
	var events, slotAllocs uint64
	var poolAllocs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rs, err := RunWithStats("fig10", cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += rs.Events
		slotAllocs += rs.EventSlotAllocs
		poolAllocs += rs.PoolAllocs
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(slotAllocs)/float64(b.N), "slot-allocs/run")
	b.ReportMetric(float64(poolAllocs)/float64(b.N), "pool-allocs/run")
}
