package exp

import (
	"fmt"
	"testing"
)

// BenchmarkFig10Large times the paper-scale experiment at the "large"
// scale: the full 320-host fat-tree with 1 ms of traffic — the forwarding
// tables, ECMP fan-out, and flow churn of a `-scale full` run at a
// benchmarkable duration. It reports engine throughput and the two
// hot-path allocation counters the fast-path work keeps at zero.
func BenchmarkFig10Large(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Scale = "large"
	cfg.Seed = 1
	var events, slotAllocs uint64
	var poolAllocs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rs, err := RunWithStats("fig10", cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += rs.Events
		slotAllocs += rs.EventSlotAllocs
		poolAllocs += rs.PoolAllocs
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(slotAllocs)/float64(b.N), "slot-allocs/run")
	b.ReportMetric(float64(poolAllocs)/float64(b.N), "pool-allocs/run")
}

// BenchmarkFig10MediumParallel is the sharded-engine scaling curve: the
// fig10 experiment at medium scale (the BENCH baseline workload) at 1, 2,
// 4 and 8 shards. Workers is pinned to 1 so the four protocol variants
// run back to back and the only concurrency measured is the shard
// workers'. Wall-clock gains need real cores: on a single-CPU runner the
// curve records parallelization overhead instead (see EXPERIMENTS.md).
func BenchmarkFig10MediumParallel(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Scale = "medium"
			cfg.Seed = 1
			cfg.Workers = 1
			cfg.Shards = shards
			var events, epochs uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rs, err := RunWithStats("fig10", cfg)
				if err != nil {
					b.Fatal(err)
				}
				events += rs.Events
				epochs += rs.Epochs
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(epochs)/float64(b.N), "epochs/run")
		})
	}
}
