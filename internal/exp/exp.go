// Package exp contains the experiment registry: one named, runnable
// experiment per figure of the paper (Figs. 1-6 and 8-13; Fig. 7 is the
// topology diagram, realized by internal/topo), plus ablations of the
// mechanisms' parameters. Each experiment builds its simulations, runs the
// protocol variants in parallel, and returns labeled data series that
// regenerate the figure.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"faircc/internal/sim"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Seed drives all randomness (traffic generation, probabilistic
	// feedback, RED). Two runs with equal Seed and scale are identical.
	Seed int64
	// Workers bounds the parallelism across protocol variants and sweeps
	// (0 = GOMAXPROCS). It never changes results.
	Workers int
	// Shards partitions each datacenter fat-tree simulation into this
	// many execution shards driven in parallel by sim.Parallel (see
	// Network.Shard). 0 or 1 keeps the sequential engine. A fixed shard
	// count is deterministic across repetitions, but different counts
	// yield statistically equivalent — not identical — results, so the
	// recorded figures use the sequential engine. Experiments without a
	// fat-tree (incast star, fluid model) ignore the setting.
	Shards int
	// Scale picks the experiment size: "small" for tests and benches,
	// "medium" for the recorded results in EXPERIMENTS.md, "full" for the
	// paper-scale setup (320 hosts, 50 ms datacenter runs).
	Scale string

	// Progress, when non-nil, receives periodic updates from every
	// simulation the experiment runs (roughly once per ProgressEvery of
	// wall time per run, plus a final Done update). It may be called
	// concurrently from parallel variant runs and must be safe for that.
	// Observation never changes results.
	Progress func(ProgressUpdate)
	// ProgressEvery is the target wall-time interval between updates
	// (default 1s).
	ProgressEvery time.Duration

	// Lossy-mode knobs for the incast-lossy / incast-pfc-vs-lossy
	// experiments (zero = each experiment's defaults; other experiments
	// ignore them). BufferBytes caps every switch egress queue;
	// DropDataProb / DropAckProb inject random per-packet wire loss.
	BufferBytes  int64
	DropDataProb float64
	DropAckProb  float64

	// AckCoalesce enables receiver-side ACK coalescing in every simulation
	// the experiment runs (net.Network.AckCoalesce). Off by default: the
	// recorded figures use the paper-faithful per-packet ACK model, and
	// the ack-coalesce experiment measures the divergence explicitly.
	AckCoalesce bool

	// MacroEvents enables macro-event packet trains in every simulation
	// the experiment runs (net.Network.MacroEvents): line-rate pacing
	// wakeups are fused into port drain events. Results are bit-identical
	// either way — the fusion preserves execution order exactly — so this
	// only changes engine event counts and wall time; the macro-events
	// experiment checks the identity and measures the elision.
	MacroEvents bool

	// RTT-heterogeneity knobs for the rtt-unfairness experiments (zero =
	// each scenario's preset; other experiments ignore them).
	// RTTSlowDelay overrides the slow group's access-link propagation
	// delay; RTTSenders overrides the per-group sender count.
	RTTSlowDelay sim.Time
	RTTSenders   int

	// obs accumulates RunStats across the experiment's simulations; set by
	// RunWithStats.
	obs *runObserver
}

// DefaultConfig returns a medium-scale configuration with seed 1.
func DefaultConfig() Config { return Config{Seed: 1, Scale: "medium"} }

// Series is one curve: paired X/Y samples with a legend label.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Add appends a sample.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Result is an experiment's output: the figure's curves plus notes about
// scale and derived headline numbers.
type Result struct {
	Name   string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteCSV emits all series as label,x,y rows with a header.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "series,%s,%s\n", csvEscape(r.XLabel), csvEscape(r.YLabel)); err != nil {
		return err
	}
	for _, s := range r.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Label), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary renders the notes and per-series sample counts for terminal
// output.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", r.Name, r.Title)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  series %-24s %d points\n", s.Label, len(s.X))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Experiment is a named, runnable reproduction of one figure.
type Experiment struct {
	Name  string
	Title string
	Run   func(Config) (*Result, error)
}

var (
	mu       sync.Mutex
	registry = map[string]*Experiment{}
)

// register adds an experiment at init time; duplicate names are
// programming errors.
func register(e *Experiment) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic("exp: duplicate experiment " + e.Name)
	}
	registry[e.Name] = e
}

// Get looks up an experiment by name.
func Get(name string) (*Experiment, error) {
	mu.Lock()
	defer mu.Unlock()
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (see Names())", name)
	}
	return e, nil
}

// Names returns all registered experiment names, sorted.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run looks up and runs an experiment.
func Run(name string, cfg Config) (*Result, error) {
	e, err := Get(name)
	if err != nil {
		return nil, err
	}
	return e.Run(cfg)
}

// horizon bounds sampler scheduling; simulations stop as soon as all flows
// finish, so a generous horizon costs nothing.
const horizon = 200 * sim.Millisecond
