package exp

import (
	"faircc/internal/cc/dctcp"
	"faircc/internal/metrics"
	"faircc/internal/net"
	"faircc/internal/par"
	"faircc/internal/topo"
)

// Extension experiments beyond the paper's figures: the TIMELY transfer
// of VAI+SF (the paper claims the mechanisms apply to "a multitude" of
// sender-side protocols), the DCTCP baseline, and the hyper-AI Swift
// extension the paper suggests for its Hadoop median-slowdown artifact.

func init() {
	register(&Experiment{
		Name: "incast-timely",
		Title: "16-1 incast under TIMELY with and without VAI SF " +
			"(mechanism generality beyond HPCC/Swift)",
		Run: func(cfg Config) (*Result, error) {
			p := starParams(starMinBDP(16), hostRate)
			outs, err := runIncastSet(cfg, timelyVariants(p), 16)
			if err != nil {
				return nil, err
			}
			res := &Result{Name: "incast-timely", Title: "TIMELY 16-1 incast",
				XLabel: "time (us)", YLabel: "Jain fairness index"}
			for _, o := range outs {
				res.Series = append(res.Series, o.jain)
				res.Notef("%s: smoothed Jain reaches 0.9 at %.0f us (-1 = never); max queue %.0f KB",
					o.label, o.convergeUs, o.maxQueueKB)
			}
			return res, nil
		},
	})

	register(&Experiment{
		Name:  "incast-dctcp",
		Title: "16-1 incast under DCTCP (congestion-extent-scaled decreases, Sec. III-A)",
		Run: func(cfg Config) (*Result, error) {
			setup := func(nw *net.Network, st *topo.Star) {
				k := dctcp.RecommendedK(hostRate, 5*1000*1000) // ~5us RTT in ps
				for _, p := range st.Switch.Ports() {
					p.SetRED(dctcp.MarkingAt(k))
				}
			}
			out := runIncast(cfg, dctcpVariant(), 16, setup)
			if out.err != nil {
				return nil, out.err
			}
			if !out.allFinished {
				return nil, errNotFinished("DCTCP")
			}
			res := &Result{Name: "incast-dctcp", Title: "DCTCP 16-1 incast",
				XLabel: "time (us)", YLabel: "Jain fairness index"}
			res.Series = append(res.Series, out.jain)
			res.Notef("DCTCP: smoothed Jain reaches 0.9 at %.0f us; max queue %.0f KB",
				out.convergeUs, out.maxQueueKB)
			return res, nil
		},
	})

	register(&Experiment{
		Name: "ablate-swift-hai",
		Title: "Swift hyper additive increase (Sec. VI-B suggestion): " +
			"median FCT on Hadoop traffic, small fat-tree",
		Run: runSwiftHAI,
	})
}

type errNotFinished string

func (e errNotFinished) Error() string { return string(e) + ": flows did not finish" }

// runSwiftHAI compares default Swift against Swift with hyper-AI on the
// small-scale Hadoop datacenter workload, reporting median slowdowns by
// size class. The paper attributes Swift's poor Hadoop median to its
// single, constant additive increase recovering bandwidth slowly.
func runSwiftHAI(cfg Config) (*Result, error) {
	small := cfg
	small.Scale = "small"
	ftCfg, duration, err := dcScale(small)
	if err != nil {
		return nil, err
	}
	specs, err := dcTraffic(small, ftCfg, duration, "hadoop")
	if err != nil {
		return nil, err
	}
	p := dcParams(dcMinBDP(ftCfg), ftCfg.HostBps)
	vs := []variant{
		{"Swift", swiftBaselines(p)[0].make},
		swiftHAIVariant(p),
	}
	outs, err := par.MapErr(len(vs), cfg.Workers, func(i int) ([]metrics.FlowRecord, error) {
		records, _, err := runDC(small, vs[i], ftCfg, specs)
		return records, err
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Name: "ablate-swift-hai", Title: "Swift hyper-AI ablation",
		XLabel: "flow size (bytes)", YLabel: "median FCT slowdown"}
	for i, records := range outs {
		s := Series{Label: vs[i].label}
		for _, b := range metrics.BucketBySize(records, 50, 50) {
			s.Add(float64(b.MaxSize), b.Slowdown)
		}
		res.Series = append(res.Series, s)
		if sd, err := metrics.SlowdownAbove(records, 100_000, 50); err == nil {
			res.Notef("%s: median slowdown of >100KB flows = %.2fx", vs[i].label, sd)
		}
	}
	return res, nil
}
