package exp

import (
	"fmt"

	"faircc/internal/fluid"
	"faircc/internal/metrics"
	"faircc/internal/net"
	"faircc/internal/par"
	"faircc/internal/sim"
	"faircc/internal/topo"
	"faircc/internal/workload"
)

// dcScale maps Config.Scale to a fat-tree size and traffic duration.
// "full" is the paper's setup: 320 hosts, 50 ms at 50% load.
func dcScale(cfg Config) (topo.FatTreeConfig, sim.Time, error) {
	switch cfg.Scale {
	case "small":
		return topo.DefaultFatTree().Scaled(2, 2, 2), 1 * sim.Millisecond, nil
	case "", "medium":
		return topo.DefaultFatTree().Scaled(2, 2, 8), 5 * sim.Millisecond, nil
	case "large":
		// The paper's topology at 1/50th of its traffic window: full-scale
		// forwarding tables, fan-out, and ECMP spread at a duration short
		// enough to serve as a timed benchmark.
		return topo.DefaultFatTree(), 1 * sim.Millisecond, nil
	case "full":
		return topo.DefaultFatTree(), 50 * sim.Millisecond, nil
	}
	return topo.FatTreeConfig{}, 0, fmt.Errorf("exp: unknown scale %q", cfg.Scale)
}

const dcLoad = 0.5

// dcTraffic generates the flow set for a workload name ("hadoop" or
// "mix"), identical across protocol variants so comparisons are paired.
func dcTraffic(cfg Config, ftCfg topo.FatTreeConfig, duration sim.Time, name string) ([]net.FlowSpec, error) {
	hosts := make([]int, ftCfg.NumHosts())
	for i := range hosts {
		hosts[i] = i
	}
	pc := workload.PoissonConfig{
		Hosts:    hosts,
		Load:     dcLoad,
		LinkBps:  ftCfg.HostBps,
		Duration: duration,
		Seed:     cfg.Seed,
	}
	switch name {
	case "hadoop":
		pc.Sizes = workload.Hadoop()
		return workload.Poisson(pc), nil
	case "mix":
		return workload.Mixed(pc, workload.WebSearch(), workload.Storage()), nil
	}
	return nil, fmt.Errorf("exp: unknown workload %q", name)
}

// runDC runs one datacenter simulation: the given traffic on the fat-tree
// under one protocol variant, returning per-flow completion records and
// the network's counter snapshot (the ack-coalesce experiment reads the
// ACK counters; figure assembly ignores it).
// Completion records are collected after the run (CollectFinished) rather
// than via an OnFlowFinish recorder, so the same code path serves
// sequential and sharded runs — on a sharded network finish callbacks
// fire on worker goroutines. Every derived output sorts, so the record
// order difference is invisible (goldens are bit-identical).
func runDC(cfg Config, v variant, ftCfg topo.FatTreeConfig, specs []net.FlowSpec) ([]metrics.FlowRecord, net.NetworkStats, error) {
	eng := sim.NewEngine()
	nw := net.New(eng, cfg.Seed)
	nw.AckCoalesce = cfg.AckCoalesce
	nw.MacroEvents = cfg.MacroEvents
	ft := topo.NewFatTree(nw, ftCfg)
	if cfg.Shards > 1 {
		assign, k := ft.ShardMap(cfg.Shards)
		nw.Shard(assign, k)
	}
	for _, spec := range specs {
		nw.AddFlow(spec, v.make())
	}
	if nw.Shards() > 1 {
		if err := runSimSharded(cfg, v.label, nw); err != nil {
			return nil, net.NetworkStats{}, fmt.Errorf("%s: %w", v.label, err)
		}
	} else {
		runSim(cfg, v.label, eng, nw)
	}
	if !nw.AllFinished() {
		return nil, net.NetworkStats{}, fmt.Errorf("%s: flows did not finish", v.label)
	}
	if err := nw.CheckConservation(); err != nil {
		return nil, net.NetworkStats{}, fmt.Errorf("%s: %w", v.label, err)
	}
	records := metrics.CollectFinished(nw)
	cfg.notePeakFCT(len(records))
	return records, nw.Stats(), nil
}

// dcMinBDP probes the fat-tree's minimum BDP (the shortest, same-ToR
// path), the paper's VAI token threshold, with the same 0.8x
// round-down margin as starMinBDP (see that function's comment).
func dcMinBDP(ftCfg topo.FatTreeConfig) float64 {
	nw := net.New(sim.NewEngine(), 0)
	ft := topo.NewFatTree(nw, ftCfg)
	_, baseRTT, _, err := nw.ProbePath(net.FlowSpec{
		ID: 1, Src: ft.Hosts[0].NodeID(), Dst: ft.Hosts[1].NodeID(), Size: 1})
	if err != nil {
		panic(err) // the fat-tree we just built is always probeable
	}
	return 0.8 * ftCfg.HostBps / 8 * baseRTT.Seconds()
}

// dcVariants returns the four protocols Figs. 10-13 compare.
func dcVariants(p pathParams) []variant {
	return []variant{
		hpccBaselines()[0],
		hpccVAISF(p),
		{"Swift", swiftBaselines(p)[0].make},
		swiftVAISF(p),
	}
}

// dcFigure assembles a slowdown-versus-flow-size figure: pct = 99.9 for
// the tail figures (10, 11), 50 for the median figures (12, 13).
func dcFigure(name, title, workloadName string, pct float64) *Experiment {
	return &Experiment{
		Name:  name,
		Title: title,
		Run: func(cfg Config) (*Result, error) {
			ftCfg, duration, err := dcScale(cfg)
			if err != nil {
				return nil, err
			}
			specs, err := dcTraffic(cfg, ftCfg, duration, workloadName)
			if err != nil {
				return nil, err
			}
			p := dcParams(dcMinBDP(ftCfg), ftCfg.HostBps)
			vs := dcVariants(p)

			outs, err := par.MapErr(len(vs), cfg.Workers, func(i int) ([]metrics.FlowRecord, error) {
				records, _, err := runDC(cfg, vs[i], ftCfg, specs)
				return records, err
			})
			if err != nil {
				return nil, err
			}

			res := &Result{Name: name, Title: title,
				XLabel: "flow size (bytes)",
				YLabel: fmt.Sprintf("p%v FCT slowdown", pct)}
			res.Notef("scale=%s hosts=%d duration=%v load=%.0f%% flows=%d",
				cfg.Scale, ftCfg.NumHosts(), duration, dcLoad*100, len(specs))
			long := map[string]float64{}
			for i, records := range outs {
				s := Series{Label: vs[i].label}
				for _, b := range metrics.BucketBySize(records, 100, pct) {
					s.Add(float64(b.MaxSize), b.Slowdown)
				}
				res.Series = append(res.Series, s)
				if sd, err := metrics.SlowdownAbove(records, 1_000_000, pct); err == nil {
					long[vs[i].label] = sd
					res.Notef("%s: p%v slowdown of >1MB flows = %.1fx", vs[i].label, pct, sd)
				}
			}
			for _, base := range []string{"HPCC", "Swift"} {
				if b, ok := long[base]; ok {
					if v, ok := long[base+" VAI SF"]; ok && v > 0 {
						res.Notef("%s long-flow tail improvement: %.2fx", base, b/v)
					}
				}
			}
			return res, nil
		},
	}
}

func init() {
	register(&Experiment{
		Name:  "fig4",
		Title: "Fluid model: fairness gap of per-RTT vs Sampling Frequency decreases",
		Run: func(cfg Config) (*Result, error) {
			c := fluid.DefaultConfig()
			pts := fluid.Integrate(c, 500, 3e6)
			res := &Result{Name: "fig4", Title: "Fluid-model fairness difference",
				XLabel: "time (ns)", YLabel: "(R1-R0)-(S1-S0) (bytes/ns)"}
			s := Series{Label: "fairness gap"}
			peak := 0.0
			for _, p := range pts {
				s.Add(p.T, p.Gap)
				if p.Gap > peak {
					peak = p.Gap
				}
			}
			res.Series = append(res.Series, s)
			res.Notef("condition 1/r < (C1+C0)/(s*MTU) holds: %v", c.ConvergesFaster())
			res.Notef("gap peaks at %.3f bytes/ns and diminishes to %.4f",
				peak, pts[len(pts)-1].Gap)
			return res, nil
		},
	})

	register(dcFigure("fig10", "99.9%% FCT slowdown vs flow size, Hadoop traffic", "hadoop", 99.9))
	register(dcFigure("fig11", "99.9%% FCT slowdown vs flow size, WebSearch+Storage traffic", "mix", 99.9))
	register(dcFigure("fig12", "Median FCT slowdown vs flow size, Hadoop traffic", "hadoop", 50))
	register(dcFigure("fig13", "Median FCT slowdown vs flow size, WebSearch+Storage traffic", "mix", 50))
}
