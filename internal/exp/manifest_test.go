package exp

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"faircc/internal/metrics"
)

func TestManifestRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = "small"
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	res, stats, err := RunWithStats("fig1a", cfg)
	if err != nil {
		t.Fatal(err)
	}

	m := BuildManifest("fig1a", cfg, res, stats, start, 1500*time.Millisecond)
	if m.Experiment != "fig1a" || m.Title != res.Title {
		t.Fatalf("identity fields wrong: %+v", m)
	}
	if m.Seed != cfg.Seed || m.Scale != "small" {
		t.Fatalf("config fields wrong: %+v", m)
	}
	if m.GoVersion == "" || m.GOMAXPROCS == 0 {
		t.Fatalf("toolchain fields empty: %+v", m)
	}
	if m.WallSeconds != 1.5 || !m.StartedAt.Equal(start) {
		t.Fatalf("timing fields wrong: %+v", m)
	}

	dir := t.TempDir()
	path, err := WriteManifest(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Experiment != "fig1a" || back.Stats == nil {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Stats.Events != stats.Events || back.Stats.Runs != stats.Runs {
		t.Fatalf("RunStats round trip: got %+v, want %+v", back.Stats, stats)
	}

	// The JSON schema documented in EXPERIMENTS.md: spot-check stable keys.
	var keys map[string]any
	if err := json.Unmarshal(raw, &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"experiment", "seed", "go_version", "started_at", "run_stats"} {
		if _, ok := keys[k]; !ok {
			t.Errorf("manifest JSON missing key %q", k)
		}
	}
	rs, ok := keys["run_stats"].(map[string]any)
	if !ok {
		t.Fatal("run_stats is not an object")
	}
	for _, k := range []string{"runs", "events", "events_per_sec", "data_pkts_sent", "pool_reuse_rate"} {
		if _, ok := rs[k]; !ok {
			t.Errorf("run_stats JSON missing key %q", k)
		}
	}
}

func TestRunStatsMetricsInvariants(t *testing.T) {
	var s metrics.RunStats
	s.Add(metrics.RunStats{Runs: 1, Events: 100, PeakPending: 10, PoolGets: 100, PoolAllocs: 25})
	s.Add(metrics.RunStats{Runs: 1, Events: 50, PeakPending: 40, PoolGets: 100, PoolAllocs: 25})
	if s.Runs != 2 || s.Events != 150 {
		t.Fatalf("Add summed wrong: %+v", s)
	}
	if s.PeakPending != 40 {
		t.Fatalf("PeakPending = %d, want max 40", s.PeakPending)
	}
	s.Finish(3 * time.Second)
	if s.EventsPerSec != 50 {
		t.Fatalf("EventsPerSec = %v, want 50", s.EventsPerSec)
	}
	if s.PoolReuseRate != 0.75 {
		t.Fatalf("PoolReuseRate = %v, want 0.75", s.PoolReuseRate)
	}
	if s.PeakHeapBytes == 0 {
		t.Fatal("Finish did not capture process memory")
	}
}
