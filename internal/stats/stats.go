// Package stats provides the statistical primitives the evaluation uses:
// the Jain fairness index, percentile estimation, and piecewise-linear
// CDFs for flow-size distributions.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Jain returns the Jain fairness index (sum x)^2 / (n * sum x^2) of the
// allocation xs (Jain, Chiu & Hawe 1998). It is 1 when all values are
// equal and 1/n when one value holds everything. By convention an empty or
// all-zero allocation is perfectly fair (1).
func Jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// JainByClass computes the Jain index within each class of the allocation
// xs, where class[i] names xs[i]'s class (0 <= class[i] < nClasses).
// Result[c] follows Jain's conventions restricted to class c: a singleton
// class is perfectly fair (its only member equals itself) and an empty or
// all-zero class reports 1. Values and classes must be the same length.
// RTT-heterogeneity experiments use this to tell intra-class fairness
// (flows with equal base RTT sharing equally) from the cross-class
// unfairness the aggregate index mixes in.
func JainByClass(xs []float64, class []int, nClasses int) []float64 {
	if len(xs) != len(class) {
		panic(fmt.Sprintf("stats: JainByClass length mismatch: %d values, %d classes",
			len(xs), len(class)))
	}
	sum := make([]float64, nClasses)
	sumSq := make([]float64, nClasses)
	n := make([]int, nClasses)
	for i, x := range xs {
		c := class[i]
		if c < 0 || c >= nClasses {
			panic(fmt.Sprintf("stats: JainByClass class %d out of [0,%d)", c, nClasses))
		}
		sum[c] += x
		sumSq[c] += x * x
		n[c]++
	}
	out := make([]float64, nClasses)
	for c := range out {
		if sumSq[c] == 0 {
			out[c] = 1
			continue
		}
		out[c] = sum[c] * sum[c] / (float64(n[c]) * sumSq[c])
	}
	return out
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between order statistics. It does not modify xs and
// panics on an empty slice or out-of-range p, which are programming
// errors.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is Percentile for data already in ascending order,
// avoiding the copy and sort.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: PercentileSorted of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                   int
	Min, Max, Mean      float64
	P50, P90, P99, P999 float64
}

// Summarize computes a Summary of xs (which it does not modify).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		N:    len(sorted),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
		P50:  percentileSorted(sorted, 50),
		P90:  percentileSorted(sorted, 90),
		P99:  percentileSorted(sorted, 99),
		P999: percentileSorted(sorted, 99.9),
	}
}

// CDFPoint is one knot of a piecewise-linear CDF: P(X <= Value) = Frac.
type CDFPoint struct {
	Value float64
	Frac  float64 // cumulative probability in [0,1]
}

// CDF is a piecewise-linear cumulative distribution used for flow sizes.
type CDF struct {
	pts []CDFPoint
}

// NewCDF validates and builds a CDF. Points must be strictly increasing in
// Value, nondecreasing in Frac, start at Frac >= 0 and end at Frac == 1.
func NewCDF(points []CDFPoint) (*CDF, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("stats: CDF needs at least 2 points")
	}
	for i, p := range points {
		if p.Frac < 0 || p.Frac > 1 {
			return nil, fmt.Errorf("stats: CDF frac %v out of [0,1] at %d", p.Frac, i)
		}
		if i > 0 {
			if p.Value <= points[i-1].Value {
				return nil, fmt.Errorf("stats: CDF values not increasing at %d", i)
			}
			if p.Frac < points[i-1].Frac {
				return nil, fmt.Errorf("stats: CDF fracs decreasing at %d", i)
			}
		}
	}
	if points[len(points)-1].Frac != 1 {
		return nil, fmt.Errorf("stats: CDF must end at frac 1, got %v",
			points[len(points)-1].Frac)
	}
	pts := make([]CDFPoint, len(points))
	copy(pts, points)
	return &CDF{pts: pts}, nil
}

// MustCDF is NewCDF for static distributions; it panics on error.
func MustCDF(points []CDFPoint) *CDF {
	c, err := NewCDF(points)
	if err != nil {
		panic(err)
	}
	return c
}

// Sample draws a value by inverse-transform sampling with linear
// interpolation between knots.
func (c *CDF) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	return c.Quantile(u)
}

// Quantile returns the u-quantile (u in [0,1]).
func (c *CDF) Quantile(u float64) float64 {
	pts := c.pts
	if u <= pts[0].Frac {
		return pts[0].Value
	}
	for i := 1; i < len(pts); i++ {
		if u <= pts[i].Frac {
			lo, hi := pts[i-1], pts[i]
			if hi.Frac == lo.Frac {
				return hi.Value
			}
			frac := (u - lo.Frac) / (hi.Frac - lo.Frac)
			return lo.Value + frac*(hi.Value-lo.Value)
		}
	}
	return pts[len(pts)-1].Value
}

// Mean returns the distribution mean (trapezoidal integration over the
// piecewise-linear inverse CDF).
func (c *CDF) Mean() float64 {
	var mean float64
	pts := c.pts
	if pts[0].Frac > 0 {
		mean += pts[0].Frac * pts[0].Value
	}
	for i := 1; i < len(pts); i++ {
		w := pts[i].Frac - pts[i-1].Frac
		mean += w * (pts[i].Value + pts[i-1].Value) / 2
	}
	return mean
}

// FracAbove returns P(X > x).
func (c *CDF) FracAbove(x float64) float64 {
	pts := c.pts
	if x < pts[0].Value {
		return 1
	}
	for i := 1; i < len(pts); i++ {
		if x < pts[i].Value {
			lo, hi := pts[i-1], pts[i]
			frac := (x - lo.Value) / (hi.Value - lo.Value)
			return 1 - (lo.Frac + frac*(hi.Frac-lo.Frac))
		}
	}
	return 0
}

// Max returns the distribution's maximum value.
func (c *CDF) Max() float64 { return c.pts[len(c.pts)-1].Value }
