package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJainKnownValues(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{10, 10, 10, 10}, 1},
		{[]float64{1}, 1},
		{[]float64{1, 0, 0, 0}, 0.25}, // one flow hogs: 1/n
		{[]float64{2, 1}, 9.0 / 10},   // (3)^2/(2*5)
		{[]float64{}, 1},              // vacuous
		{[]float64{0, 0}, 1},          // all idle
		{[]float64{100, 50, 50, 50}, 62500.0 / 70000},
	}
	for _, c := range cases {
		if got := Jain(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jain(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

// Property: Jain index always lies in [1/n, 1] for non-negative inputs
// with at least one positive value.
func TestJainBoundsProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		pos := false
		for _, v := range raw {
			xs = append(xs, float64(v))
			if v > 0 {
				pos = true
			}
		}
		j := Jain(xs)
		if !pos {
			return j == 1
		}
		n := float64(len(xs))
		return j >= 1/n-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {62.5, 3.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must be untouched.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileSingle(t *testing.T) {
	if got := Percentile([]float64{7}, 99.9); got != 7 {
		t.Fatalf("got %v, want 7", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..1000
	}
	s := Summarize(xs)
	if s.N != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Mean-500.5) > 1e-9 {
		t.Fatalf("mean = %v, want 500.5", s.Mean)
	}
	if math.Abs(s.P50-500.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 500.5", s.P50)
	}
	if s.P999 < 999 || s.P999 > 1000 {
		t.Fatalf("p99.9 = %v, want ~999", s.P999)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestCDFValidation(t *testing.T) {
	bad := [][]CDFPoint{
		{{1, 1}},             // too few
		{{1, 0.5}, {2, 0.4}}, // decreasing frac
		{{1, 0.5}, {1, 1}},   // non-increasing value
		{{1, 0.5}, {2, 0.9}}, // doesn't reach 1
		{{1, -0.1}, {2, 1}},  // frac below 0
	}
	for i, pts := range bad {
		if _, err := NewCDF(pts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := NewCDF([]CDFPoint{{100, 0}, {1000, 0.5}, {10000, 1}}); err != nil {
		t.Fatalf("valid CDF rejected: %v", err)
	}
}

func TestCDFQuantileInterpolation(t *testing.T) {
	c := MustCDF([]CDFPoint{{0, 0}, {100, 0.5}, {1100, 1}})
	cases := []struct{ u, want float64 }{
		{0, 0}, {0.25, 50}, {0.5, 100}, {0.75, 600}, {1, 1100},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.u); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.u, got, tc.want)
		}
	}
}

func TestCDFSampleMatchesMean(t *testing.T) {
	c := MustCDF([]CDFPoint{{0, 0}, {100, 0.5}, {1100, 1}})
	r := rand.New(rand.NewSource(1))
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		sum += c.Sample(r)
	}
	got := sum / n
	want := c.Mean() // 0.5*50 + 0.5*600 = 325
	if math.Abs(want-325) > 1e-9 {
		t.Fatalf("Mean() = %v, want 325", want)
	}
	if math.Abs(got-want) > want*0.02 {
		t.Fatalf("sample mean %v, analytic %v", got, want)
	}
}

func TestCDFFracAbove(t *testing.T) {
	c := MustCDF([]CDFPoint{{0, 0}, {100, 0.5}, {1100, 1}})
	cases := []struct{ x, want float64 }{
		{-5, 1}, {0, 1}, {50, 0.75}, {100, 0.5}, {600, 0.25}, {1100, 0}, {5000, 0},
	}
	for _, tc := range cases {
		if got := c.FracAbove(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("FracAbove(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

// Property: quantile is nondecreasing in u and within [min, max].
func TestCDFQuantileMonotoneProperty(t *testing.T) {
	c := MustCDF([]CDFPoint{{10, 0.1}, {100, 0.4}, {1000, 0.9}, {30000, 1}})
	prop := func(a, b float64) bool {
		u1 := math.Abs(math.Mod(a, 1))
		u2 := math.Abs(math.Mod(b, 1))
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		q1, q2 := c.Quantile(u1), c.Quantile(u2)
		return q1 <= q2+1e-9 && q1 >= 10 && q2 <= 30000
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFSampleBelowFirstKnot(t *testing.T) {
	// A CDF with mass at the first knot (Frac > 0) returns that value for
	// small u.
	c := MustCDF([]CDFPoint{{100, 0.3}, {200, 1}})
	if got := c.Quantile(0.1); got != 100 {
		t.Fatalf("Quantile(0.1) = %v, want 100", got)
	}
	if got := c.Max(); got != 200 {
		t.Fatalf("Max = %v, want 200", got)
	}
}

func TestJainByClass(t *testing.T) {
	xs := []float64{10, 10, 2, 1, 5}
	class := []int{0, 0, 1, 1, 2}
	got := JainByClass(xs, class, 4)
	want := []float64{
		1,        // equal pair
		9.0 / 10, // (3)^2 / (2*5)
		1,        // singleton: fair by convention
		1,        // empty class: vacuous, matches Jain(nil)
	}
	if len(got) != len(want) {
		t.Fatalf("classes = %d, want %d", len(got), len(want))
	}
	for c := range want {
		if math.Abs(got[c]-want[c]) > 1e-12 {
			t.Errorf("class %d: %v, want %v", c, got[c], want[c])
		}
	}
}

func TestJainByClassMatchesJainPerClass(t *testing.T) {
	// Each class's index must equal Jain restricted to that class's
	// members — the definition JainByClass is a single-pass version of.
	r := rand.New(rand.NewSource(42))
	const nClasses = 3
	xs := make([]float64, 50)
	class := make([]int, 50)
	byClass := make([][]float64, nClasses)
	for i := range xs {
		xs[i] = r.Float64() * 100
		class[i] = r.Intn(nClasses)
		byClass[class[i]] = append(byClass[class[i]], xs[i])
	}
	got := JainByClass(xs, class, nClasses)
	for c := 0; c < nClasses; c++ {
		if want := Jain(byClass[c]); math.Abs(got[c]-want) > 1e-12 {
			t.Errorf("class %d: %v, want Jain(%d members) = %v",
				c, got[c], len(byClass[c]), want)
		}
	}
}

func TestJainByClassPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("length mismatch", func() {
		JainByClass([]float64{1, 2}, []int{0}, 1)
	})
	mustPanic("class out of range", func() {
		JainByClass([]float64{1}, []int{1}, 1)
	})
	mustPanic("negative class", func() {
		JainByClass([]float64{1}, []int{-1}, 1)
	})
}

func TestJainByClassAllZeroClass(t *testing.T) {
	// A class whose members are all zero (e.g. an RTT class whose flows
	// delivered nothing in the sample window) reports 1, like Jain.
	got := JainByClass([]float64{0, 0, 5, 5}, []int{0, 0, 1, 1}, 2)
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("got %v, want [1 1]", got)
	}
}
