package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConstants(t *testing.T) {
	if Nanosecond != 1000 || Microsecond != 1e6 || Millisecond != 1e9 || Second != 1e12 {
		t.Fatalf("time constants wrong: ns=%d us=%d ms=%d s=%d",
			Nanosecond, Microsecond, Millisecond, Second)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{80 * Nanosecond, "80ns"},
		{12500 * Nanosecond, "12.5us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
		{-80 * Nanosecond, "-80ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTransmitTimeExact(t *testing.T) {
	// 1000 B at 100 Gb/s is exactly 80 ns; at 400 Gb/s exactly 20 ns.
	if got := TransmitTime(1000, 100e9); got != 80*Nanosecond {
		t.Errorf("TransmitTime(1000, 100G) = %v, want 80ns", got)
	}
	if got := TransmitTime(1000, 400e9); got != 20*Nanosecond {
		t.Errorf("TransmitTime(1000, 400G) = %v, want 20ns", got)
	}
	if got := TransmitTime(64, 100e9); got != Time(5120) {
		t.Errorf("TransmitTime(64, 100G) = %v ps, want 5120ps", int64(got))
	}
}

func TestTransmitTimePanicsOnZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bandwidth")
		}
	}()
	TransmitTime(1000, 0)
}

func TestBytesOver(t *testing.T) {
	// 100 Gb/s for 80 ns moves exactly 1000 bytes.
	if got := BytesOver(100e9, 80*Nanosecond); got != 1000 {
		t.Errorf("BytesOver(100G, 80ns) = %v, want 1000", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*Nanosecond, func() { order = append(order, 3) })
	e.At(10*Nanosecond, func() { order = append(order, 1) })
	e.At(20*Nanosecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("clock = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	// Events at the same time run in scheduling order.
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events not FIFO: %v", order)
	}
}

func TestEngineSchedulingInsideEvent(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.At(10, func() {
		got = append(got, e.Now())
		e.After(5, func() { got = append(got, e.Now()) })
		e.At(12, func() { got = append(got, e.Now()) })
	})
	e.Run()
	want := []Time{10, 12, 15}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(10, func() { ran = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Steps() != 0 {
		t.Fatalf("steps = %d, want 0", e.Steps())
	}
}

func TestEngineCancelFromEvent(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(20, func() { ran = true })
	e.At(10, func() { e.Cancel(ev) })
	e.Run()
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	e.Run() // resume
	if count != 10 {
		t.Fatalf("resume ran to %d, want 10", count)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(10)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(10) ran %v, want [5 10]", ran)
	}
	if e.Now() != 10 {
		t.Fatalf("clock after RunUntil = %v, want 10", e.Now())
	}
	e.RunUntil(12) // no events in (10, 12]; clock still advances
	if e.Now() != 12 {
		t.Fatalf("clock = %v, want 12", e.Now())
	}
	e.RunUntil(100)
	if len(ran) != 4 || e.Now() != 100 {
		t.Fatalf("final ran=%v now=%v", ran, e.Now())
	}
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	a := e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Cancel(a)
	if e.Pending() != 1 {
		t.Fatalf("pending after cancel = %d, want 1", e.Pending())
	}
}

func TestEngineEventRecycling(t *testing.T) {
	// Heavy scheduling should reuse Event structs without corrupting order.
	e := NewEngine()
	r := rand.New(rand.NewSource(1))
	var last Time = -1
	n := 0
	var schedule func()
	schedule = func() {
		if n >= 10000 {
			return
		}
		n++
		if e.Now() < last {
			t.Fatal("time went backwards")
		}
		last = e.Now()
		e.After(Time(r.Intn(100)+1), schedule)
		if r.Intn(4) == 0 {
			ev := e.After(Time(r.Intn(50)+1), func() {})
			e.Cancel(ev)
		}
	}
	e.At(0, schedule)
	e.Run()
	if n != 10000 {
		t.Fatalf("ran %d scheduled chain events, want 10000", n)
	}
}

// Property: executing any set of events yields nondecreasing time, and every
// non-cancelled event runs exactly once.
func TestEngineMonotonicProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		seen := 0
		var last Time = -1
		ok := true
		for _, d := range delays {
			e.At(Time(d), func() {
				seen++
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok && seen == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
