package sim

import "math/bits"

// This file implements the engine's timer core: a ladder queue — a
// hierarchical bucket structure with a small sorted "current epoch" at the
// front. Packet simulations schedule almost every event a short, clustered
// distance into the future (serialization times, propagation delays, pacing
// gaps), which a comparison-based heap pays O(log n) per operation to
// handle. The ladder queue exploits the clustering: an event is appended to
// a coarse time bucket in O(1), and sorting work is deferred until a bucket
// reaches the front, where it is small (or is subdivided into a finer rung
// until it is). Each event is therefore touched O(1) amortized times
// regardless of how many are pending.
//
// Determinism: the execution order is the total order (at, seq) — time,
// ties broken by scheduling sequence number. Buckets are sorted by exactly
// that key before being consumed, so the event order is bit-for-bit
// identical to the previous binary-heap engine, and to any other correct
// priority queue. The golden experiment tests pin this.
//
// Structure invariants:
//
//   - cur[curHead:] is sorted ascending by (at, seq) and holds every stored
//     entry with at < curEnd. New entries below curEnd are insertion-sorted
//     into it (they are rare and the epoch is kept small; see splitCur).
//   - ladder holds rungs of buckets. ladder[i+1] subdivides one consumed
//     bucket interval of ladder[i], so remaining rung coverage, walked from
//     the deepest rung to rung 0, forms increasing disjoint time intervals
//     starting at curEnd.
//   - over holds entries at or beyond every rung's end, unsorted. When the
//     ladder is exhausted it is re-bucketed into a fresh rung 0 spanning
//     [overMin, overMax].
//
// The queue never inspects cancellation state: the engine cancels events by
// invalidating their slot generation and lazily discards stale entries as
// they surface at the front (see Engine.peekLive).
type ladderQueue struct {
	cur     []entry // current epoch, sorted; consumed from curHead
	curHead int
	curEnd  Time // exclusive epoch bound: stored entries with at < curEnd are in cur

	ladder []rung
	over   []entry // entries beyond the ladder, unsorted
	overMin,
	overMax Time

	pool  [][]entry   // recycled entry slices for bucket reuse
	bpool [][][]entry // recycled rung bucket arrays
}

// entry is one scheduled occurrence: the ordering key (at, seq) plus a
// generation-stamped reference to the engine's event slot. Entries are
// deliberately pointer-free (24 bytes): the ladder holds millions of them
// in bucket slices, and keeping them scalar-only means the GC never scans
// queue memory and sorts move minimal data.
type entry struct {
	at  Time
	seq uint64
	idx uint32 // slot index in Engine.slots
	gen uint32 // slot generation at scheduling time
}

// rung is one level of the ladder: count buckets of width picoseconds
// starting at start. end is the exclusive bound actually covered (it may be
// less than start+len(buckets)*width when the span does not divide evenly).
type rung struct {
	start   Time
	width   Time
	recip   uint64 // ceil(2^64/width): bucketOf divides by multiply (width >= 2)
	end     Time
	next    int // next unconsumed bucket
	buckets [][]entry
}

// bucketOf maps a non-negative offset into the rung to its bucket index:
// floor(x/width) computed as a 128-bit multiply by the precomputed
// reciprocal. Pushes run one hardware divide per event otherwise, and at
// tens of millions of events the ~30-cycle divide is measurable. With
// recip = ceil(2^64/width) the high word is floor(x/width) or one above;
// a single conditional correction makes it exact, which bucket placement
// requires (a misplaced entry reorders execution).
func (r *rung) bucketOf(x Time) int {
	if r.width == 1 {
		return int(x)
	}
	hi, _ := bits.Mul64(uint64(x), r.recip)
	if hi*uint64(r.width) > uint64(x) {
		hi--
	}
	return int(hi)
}

// recipOf returns ceil(2^64/w) for w >= 2 (unused for w == 1).
func recipOf(w Time) uint64 {
	if w < 2 {
		return 0
	}
	return ^uint64(0)/uint64(w) + 1
}

// Tuning constants. sortMax bounds the sorting work done when a bucket
// reaches the front; buckets larger than that are subdivided into a
// childBuckets-wide finer rung instead (unless all entries share one
// timestamp, where subdividing cannot help). curSplitMax bounds the sorted
// epoch: beyond it, insertions re-bucket the epoch rather than pay O(n)
// memmove per insert. Overflow rungs scale their bucket count with the
// number of entries, within [minOverBuckets, maxOverBuckets].
const (
	sortMax        = 64
	childBuckets   = 64
	curSplitMax    = 256
	minOverBuckets = 8
	maxOverBuckets = 1 << 14
)

func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// sortEntries sorts a bucket ascending by (at, seq). It is a concrete-type
// quicksort (median-of-three pivot, insertion sort below a cutoff, recurse
// into the smaller half) replacing slices.SortFunc: the generic sort calls
// its comparator through a func value on every comparison, which profiled
// at ~20% of a datacenter-run's CPU, while here entryLess inlines to two
// integer compares. (at, seq) keys are distinct — seq is a unique
// scheduling counter — so equal-pivot pathologies cannot arise, and
// stability is irrelevant.
func sortEntries(b []entry) {
	for len(b) > entrySortCutoff {
		p := partitionEntries(b)
		if p < len(b)-p-1 {
			sortEntries(b[:p])
			b = b[p+1:]
		} else {
			sortEntries(b[p+1:])
			b = b[:p]
		}
	}
	for i := 1; i < len(b); i++ {
		en := b[i]
		j := i
		for j > 0 && entryLess(en, b[j-1]) {
			b[j] = b[j-1]
			j--
		}
		b[j] = en
	}
}

// entrySortCutoff is the size at or below which sortEntries switches to
// insertion sort. It must be >= 3 so partitionEntries always has distinct
// first/middle/last positions to draw its pivot from.
const entrySortCutoff = 32

// partitionEntries partitions b around a median-of-three pivot and returns
// its final index. After the median step b[0] <= pivot <= b[hi], so the two
// inner scans need no bounds checks: each is stopped by a sentinel.
func partitionEntries(b []entry) int {
	hi := len(b) - 1
	mid := hi / 2
	if entryLess(b[mid], b[0]) {
		b[0], b[mid] = b[mid], b[0]
	}
	if entryLess(b[hi], b[0]) {
		b[0], b[hi] = b[hi], b[0]
	}
	if entryLess(b[hi], b[mid]) {
		b[mid], b[hi] = b[hi], b[mid]
	}
	b[mid], b[hi-1] = b[hi-1], b[mid]
	pv := b[hi-1]
	i, j := 0, hi-1
	for {
		for i++; entryLess(b[i], pv); i++ {
		}
		for j--; entryLess(pv, b[j]); j-- {
		}
		if i >= j {
			break
		}
		b[i], b[j] = b[j], b[i]
	}
	b[i], b[hi-1] = b[hi-1], b[i]
	return i
}

// push stores an entry. O(1) except for the (small, bounded) sorted insert
// into the current epoch.
func (q *ladderQueue) push(en entry) {
	if en.at < q.curEnd {
		q.insertCur(en)
		return
	}
	for i := len(q.ladder) - 1; i >= 0; i-- {
		r := &q.ladder[i]
		if en.at < r.end {
			j := 0
			if en.at > r.start {
				j = r.bucketOf(en.at - r.start)
			}
			if j < 0 {
				// A fresh overflow rung starts at the overflow minimum,
				// which may sit above curEnd; entries pushed into that gap
				// fold into bucket 0 and sort out on promotion.
				j = 0
			}
			b := r.buckets[j]
			if b == nil {
				b = q.getSlice()
			}
			r.buckets[j] = append(b, en)
			return
		}
	}
	if len(q.over) == 0 {
		q.overMin, q.overMax = en.at, en.at
	} else {
		if en.at < q.overMin {
			q.overMin = en.at
		}
		if en.at > q.overMax {
			q.overMax = en.at
		}
	}
	q.over = append(q.over, en)
}

// insertCur insertion-sorts an entry into the current epoch. When the live
// region has grown past curSplitMax and actually spans more than one
// timestamp, it is re-bucketed into a finer rung first, shrinking curEnd so
// subsequent near-future pushes bucket in O(1) instead of memmoving a large
// epoch. (A same-timestamp region never splits: its inserts append at the
// end of the equal-key run, which is already O(1).)
func (q *ladderQueue) insertCur(en entry) {
	if len(q.cur)-q.curHead >= curSplitMax &&
		q.cur[q.curHead].at != q.cur[len(q.cur)-1].at {
		q.splitCur()
		q.push(en)
		return
	}
	// Appending at the end is the common case (pushes arrive roughly in
	// time order); it skips the search and never memmoves.
	if n := len(q.cur); n == q.curHead || entryLess(q.cur[n-1], en) {
		q.cur = append(q.cur, en)
		return
	}
	lo, hi := q.curHead, len(q.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entryLess(q.cur[mid], en) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.cur = append(q.cur, entry{})
	copy(q.cur[lo+1:], q.cur[lo:])
	q.cur[lo] = en
}

// splitCur re-buckets the unconsumed epoch region into a new deepest rung
// spanning [region min, curEnd) and empties cur. Entry order is preserved:
// the rung restores (at, seq) order bucket by bucket as it is consumed.
func (q *ladderQueue) splitCur() {
	region := q.cur[q.curHead:]
	start := region[0].at // region is sorted; this is its minimum
	r := q.newRung(start, q.curEnd, region)
	q.ladder = append(q.ladder, r)
	q.putSlice(q.cur)
	q.cur = nil
	q.curHead = 0
	q.curEnd = start
}

// peek returns the front entry without consuming it. It reports false when
// the queue is empty.
func (q *ladderQueue) peek() (entry, bool) {
	for q.curHead >= len(q.cur) {
		if !q.refill() {
			return entry{}, false
		}
	}
	return q.cur[q.curHead], true
}

// drop consumes the entry peek returned.
func (q *ladderQueue) drop() { q.curHead++ }

// refill replenishes the consumed epoch from the ladder: it promotes the
// next non-empty bucket of the deepest rung, subdividing buckets too large
// to sort cheaply, popping exhausted rungs, and re-bucketing the overflow
// once the ladder is empty. It reports false when no entries remain.
func (q *ladderQueue) refill() bool {
	if q.cur != nil {
		q.putSlice(q.cur)
		q.cur = nil
	}
	q.curHead = 0
	for {
		if n := len(q.ladder); n > 0 {
			r := &q.ladder[n-1]
			for r.next < len(r.buckets) && len(r.buckets[r.next]) == 0 {
				if r.buckets[r.next] != nil {
					q.putSlice(r.buckets[r.next])
					r.buckets[r.next] = nil
				}
				r.next++
			}
			if r.next >= len(r.buckets) {
				q.curEnd = r.end
				q.putBuckets(r.buckets) // every bucket is nil by now
				q.ladder = q.ladder[:n-1]
				continue
			}
			b := r.buckets[r.next]
			bStart := r.start + Time(r.next)*r.width
			bEnd := bStart + r.width
			if bEnd > r.end {
				bEnd = r.end
			}
			if len(b) > sortMax && r.width > 1 && b[0].at != maxAt(b) {
				child := q.newRung(bStart, bEnd, b)
				q.putSlice(b)
				r.buckets[r.next] = nil
				r.next++
				q.ladder = append(q.ladder, child)
				continue
			}
			sortEntries(b)
			r.buckets[r.next] = nil
			r.next++
			q.cur = b
			q.curEnd = bEnd
			return true
		}
		if n := len(q.over); n > 0 {
			if n <= sortMax {
				// Small overflow: sort it straight into the epoch instead
				// of building (and allocating) a one-shot rung. This is the
				// steady state of lightly loaded simulations — a handful of
				// timers chaining each other.
				sortEntries(q.over)
				q.cur, q.over = q.over, q.getSlice()
				q.curEnd = q.overMax + 1
				return true
			}
			q.ladder = append(q.ladder, q.overflowRung())
			continue
		}
		return false
	}
}

// maxAt scans for the largest timestamp in a bucket (used only to detect
// the degenerate single-timestamp bucket, which subdivision cannot split).
func maxAt(b []entry) Time {
	m := b[0].at
	for _, en := range b[1:] {
		if en.at > m {
			m = en.at
		}
	}
	return m
}

// newRung builds a rung of childBuckets-granularity buckets covering
// [start, end) and distributes the given entries into it. Entries below
// start (overflow-gap entries folded forward) clamp into bucket 0.
func (q *ladderQueue) newRung(start, end Time, entries []entry) rung {
	width := (end-start)/childBuckets + 1
	count := int((end - start + width - 1) / width)
	if count < 1 {
		count = 1
	}
	r := rung{start: start, width: width, recip: recipOf(width), end: end, buckets: q.getBuckets(count)}
	for _, en := range entries {
		j := 0
		if en.at > start {
			j = r.bucketOf(en.at - start)
		}
		b := r.buckets[j]
		if b == nil {
			b = q.getSlice()
		}
		r.buckets[j] = append(b, en)
	}
	return r
}

// overflowRung re-buckets the overflow into a fresh rung 0 spanning its
// observed time range, with a bucket count scaled to the entry count.
func (q *ladderQueue) overflowRung() rung {
	lo, hi := q.overMin, q.overMax
	nb := minOverBuckets
	for nb < len(q.over) && nb < maxOverBuckets {
		nb <<= 1
	}
	width := (hi-lo)/Time(nb) + 1
	count := int((hi-lo)/width) + 1
	r := rung{start: lo, width: width, recip: recipOf(width), end: lo + Time(count)*width, buckets: q.getBuckets(count)}
	for _, en := range q.over {
		j := r.bucketOf(en.at - lo)
		b := r.buckets[j]
		if b == nil {
			b = q.getSlice()
		}
		r.buckets[j] = append(b, en)
	}
	q.over = q.over[:0]
	return r
}

// getSlice and putSlice recycle entry-slice backing arrays between buckets
// and epochs, keeping steady-state scheduling allocation-free.
func (q *ladderQueue) getSlice() []entry {
	if n := len(q.pool); n > 0 {
		s := q.pool[n-1]
		q.pool = q.pool[:n-1]
		return s
	}
	return make([]entry, 0, 64)
}

func (q *ladderQueue) putSlice(s []entry) {
	if cap(s) >= 8 && cap(s) <= 1<<16 && len(q.pool) < 4096 {
		q.pool = append(q.pool, s[:0])
	}
}

// getBuckets and putBuckets recycle whole rung bucket arrays. A rung is
// only retired once every bucket has been consumed (and nil'd), so a
// recycled array needs no clearing.
func (q *ladderQueue) getBuckets(count int) [][]entry {
	for i := len(q.bpool) - 1; i >= 0; i-- {
		if cap(q.bpool[i]) >= count {
			b := q.bpool[i][:count]
			q.bpool[i] = q.bpool[len(q.bpool)-1]
			q.bpool = q.bpool[:len(q.bpool)-1]
			return b
		}
	}
	return make([][]entry, count)
}

func (q *ladderQueue) putBuckets(b [][]entry) {
	if cap(b) > 0 && len(q.bpool) < 32 {
		q.bpool = append(q.bpool, b[:0])
	}
}
