package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are owned by the Engine; the only
// valid operations for users are Cancel (via Engine.Cancel) and inspection
// of the scheduled time via At.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index; -1 once popped or cancelled
	cancelled bool
}

// At returns the simulated time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation scheduler. The zero value is not
// ready to use; create one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	free    []*Event // recycled Event structs
	stopped bool
	steps   uint64
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{events: make(eventHeap, 0, 1024)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled (not yet executed or cancelled)
// events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		*ev = Event{}
	} else {
		ev = &Event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-executed or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		return
	}
	ev.cancelled = true
	ev.fn = nil
}

// Step executes the next event. It reports whether an event was executed;
// false means the queue is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		fn := ev.fn
		e.recycle(ev)
		e.steps++
		fn()
		return true
	}
	return false
}

func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	if len(e.free) < 4096 {
		e.free = append(e.free, ev)
	}
}

// Stop makes Run and RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled exactly at t are executed.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 {
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			e.recycle(next)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
