package sim

import "fmt"

// EventID is a generation-stamped handle to a scheduled event. The zero
// EventID is invalid (Valid reports false) and is safe to Cancel.
//
// Handles are stamped with the generation of the event slot they reference.
// A slot's generation advances every time its event executes or is
// cancelled, so a handle retained past its event's lifetime goes stale
// rather than aliasing whatever event later reuses the slot: Cancel on a
// stale handle is a guaranteed no-op. (The previous *Event API had exactly
// that aliasing hazard — a pointer held across the event's execution could
// cancel an unrelated recycled event.)
type EventID struct {
	idx uint32 // slot index + 1; 0 means "no event"
	gen uint32 // slot generation at scheduling time
}

// Valid reports whether the handle refers to an event at all (it may still
// be stale; Cancel checks that).
func (id EventID) Valid() bool { return id.idx != 0 }

// slot holds a scheduled event's callback. Slots are recycled through a
// free list; gen counts recycles so stale EventIDs and stale queue entries
// are detectable.
type slot struct {
	fn  func()
	gen uint32
}

// Engine is a discrete-event simulation scheduler. The zero value is not
// ready to use; create one with NewEngine.
//
// The timer core is a ladder queue (see ladder.go): O(1) amortized
// schedule and dequeue for the clustered timestamps a packet simulation
// produces, with execution order exactly (time, scheduling order) — the
// same total order as a binary heap, so fixed-seed runs are bit-for-bit
// reproducible across scheduler implementations. Steady-state scheduling
// is allocation-free: callbacks bound once (method values, per-object
// closures) are stored in recycled slots, and queue entries live in pooled
// buckets.
type Engine struct {
	now Time
	seq uint64
	q   ladderQueue

	slots []slot   // event arena; index = EventID.idx-1
	free  []uint32 // recycled slot indexes

	stopped    bool
	steps      uint64
	live       int    // scheduled, not yet executed or cancelled
	cancelled  uint64 // events cancelled over the engine's lifetime
	peakLive   int    // high-water mark of live
	slotAllocs uint64 // fresh slot allocations (arena growth)
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{
		slots: make([]slot, 0, 1024),
		free:  make([]uint32, 0, 1024),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled (not yet executed or cancelled)
// events. It is O(1) — the live count is maintained incrementally — so
// samplers may call it per sample point.
func (e *Engine) Pending() int { return e.live }

// EngineStats is a snapshot of the engine's lifetime counters, the
// simulation half of a run's observability record.
type EngineStats struct {
	Steps     uint64 `json:"events_executed"`
	Scheduled uint64 `json:"events_scheduled"`
	Cancelled uint64 `json:"events_cancelled"`
	Pending   int    `json:"events_pending"`
	// PeakPending is the high-water mark of simultaneously scheduled
	// events (the value the old engine reported as its peak heap size).
	PeakPending int `json:"peak_events_pending"`
	// EventAllocs counts fresh event-slot allocations: arena growth, as
	// opposed to free-list reuse. In steady state it plateaus at the peak
	// concurrent event count — a rising value on a stable workload means
	// the scheduling hot path is allocating.
	EventAllocs uint64 `json:"event_slot_allocs"`
}

// Stats snapshots the engine counters. Reading them never perturbs the
// simulation.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Steps:       e.steps,
		Scheduled:   e.seq,
		Cancelled:   e.cancelled,
		Pending:     e.live,
		PeakPending: e.peakLive,
		EventAllocs: e.slotAllocs,
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality. The hot path is allocation-free when
// fn is pre-bound (a method value or reused closure): the slot comes from
// the free list and the queue entry from a pooled bucket.
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var idx uint32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		idx = uint32(len(e.slots) - 1)
		e.slotAllocs++
	}
	s := &e.slots[idx]
	s.fn = fn
	e.q.push(entry{at: t, seq: e.seq, idx: idx, gen: s.gen})
	e.seq++
	e.live++
	if e.live > e.peakLive {
		e.peakLive = e.live
	}
	return EventID{idx: idx + 1, gen: s.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) EventID {
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from running. The slot (and its
// callback reference) is released immediately; the 24-byte queue entry is
// discarded lazily when it surfaces at the queue front. Cancelling an
// already-executed, already-cancelled, stale, or zero handle is a no-op —
// the generation stamp guarantees a retained handle can never cancel an
// unrelated event that reused the slot.
func (e *Engine) Cancel(id EventID) {
	if id.idx == 0 {
		return
	}
	idx := id.idx - 1
	if int(idx) >= len(e.slots) {
		return
	}
	s := &e.slots[idx]
	if s.gen != id.gen || s.fn == nil {
		return
	}
	s.fn = nil
	s.gen++
	e.free = append(e.free, idx)
	e.live--
	e.cancelled++
}

// peekLive returns the next runnable entry, discarding cancelled corpses
// as they surface. It reports false when no live events remain.
func (e *Engine) peekLive() (entry, bool) {
	for {
		en, ok := e.q.peek()
		if !ok {
			return entry{}, false
		}
		if e.slots[en.idx].gen == en.gen {
			return en, true
		}
		e.q.drop() // cancelled corpse
	}
}

// exec consumes an already-peeked entry and runs its callback.
func (e *Engine) exec(en entry) {
	e.q.drop()
	e.now = en.at
	e.live--
	e.steps++
	s := &e.slots[en.idx]
	fn := s.fn
	s.fn = nil
	s.gen++
	e.free = append(e.free, en.idx)
	fn()
}

// Step executes the next event. It reports whether an event was executed;
// false means the queue is empty.
//
// The body fuses peekLive and exec: the slot is addressed once for both
// the liveness check and the callback fetch. At tens of millions of events
// per run the saved call layer and duplicate slot load are measurable.
func (e *Engine) Step() bool {
	q := &e.q
	for {
		// Manually inlined q.peek()+q.drop(): the per-event call overhead
		// is visible at this frequency, and the compiler won't inline peek
		// past its refill loop.
		for q.curHead >= len(q.cur) {
			if !q.refill() {
				return false
			}
		}
		en := q.cur[q.curHead]
		s := &e.slots[en.idx]
		if s.gen != en.gen {
			q.curHead++ // cancelled corpse
			continue
		}
		q.curHead++
		e.now = en.at
		e.live--
		e.steps++
		fn := s.fn
		s.fn = nil
		s.gen++
		e.free = append(e.free, en.idx)
		fn()
		return true
	}
}

// StepBefore executes the next event if its time is strictly below end.
// It reports whether an event was executed; false means the queue is empty
// or the next live event is at or past end (the clock is left untouched in
// both cases). This is the epoch primitive of the parallel runner: a shard
// repeatedly calls StepBefore(horizon) and then parks at the barrier. The
// body mirrors the fused Step for the same hot-path reasons.
func (e *Engine) StepBefore(end Time) bool {
	q := &e.q
	for {
		for q.curHead >= len(q.cur) {
			if !q.refill() {
				return false
			}
		}
		en := q.cur[q.curHead]
		s := &e.slots[en.idx]
		if s.gen != en.gen {
			q.curHead++ // cancelled corpse
			continue
		}
		if en.at >= end {
			return false
		}
		q.curHead++
		e.now = en.at
		e.live--
		e.steps++
		fn := s.fn
		s.fn = nil
		s.gen++
		e.free = append(e.free, en.idx)
		fn()
		return true
	}
}

// NextEventTime returns the time of the next live event, or false when the
// queue is empty. It does not advance the clock (cancelled corpses at the
// queue front are discarded as a side effect).
func (e *Engine) NextEventTime() (Time, bool) {
	en, ok := e.peekLive()
	return en.at, ok
}

// Stop makes Run and RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled exactly at t are executed.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		en, ok := e.peekLive()
		if !ok || en.at > t {
			break
		}
		e.exec(en)
	}
	if e.now < t {
		e.now = t
	}
}
