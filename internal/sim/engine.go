package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are owned by the Engine; the only
// valid operations for users are Cancel (via Engine.Cancel) and inspection
// of the scheduled time via At.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index; -1 once popped or cancelled
	cancelled bool
}

// At returns the simulated time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation scheduler. The zero value is not
// ready to use; create one with NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	events    eventHeap
	free      []*Event // recycled Event structs
	stopped   bool
	steps     uint64
	live      int    // scheduled, not yet executed or cancelled
	cancelled uint64 // events cancelled over the engine's lifetime
	peakHeap  int    // high-water mark of len(events)
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{events: make(eventHeap, 0, 1024)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled (not yet executed or cancelled)
// events. It is O(1): cancelled events leave the heap immediately, and the
// live count is maintained incrementally, so samplers may call it per
// sample point.
func (e *Engine) Pending() int { return e.live }

// EngineStats is a snapshot of the engine's lifetime counters, the
// simulation half of a run's observability record.
type EngineStats struct {
	Steps     uint64 `json:"events_executed"`
	Scheduled uint64 `json:"events_scheduled"`
	Cancelled uint64 `json:"events_cancelled"`
	Pending   int    `json:"events_pending"`
	PeakHeap  int    `json:"peak_event_heap"`
}

// Stats snapshots the engine counters. Reading them never perturbs the
// simulation.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Steps:     e.steps,
		Scheduled: e.seq,
		Cancelled: e.cancelled,
		Pending:   e.live,
		PeakHeap:  e.peakHeap,
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		*ev = Event{}
	} else {
		ev = &Event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.live++
	heap.Push(&e.events, ev)
	if len(e.events) > e.peakHeap {
		e.peakHeap = len(e.events)
	}
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event from the heap immediately and recycles
// its storage, so cancel-heavy workloads (retransmit and pacing timers) do
// not grow the heap with corpses that slow every subsequent push.
// Cancelling an already-executed or already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		return
	}
	ev.cancelled = true
	e.live--
	e.cancelled++
	heap.Remove(&e.events, ev.index) // sets ev.index = -1 via Pop
	e.recycle(ev)
}

// Step executes the next event. It reports whether an event was executed;
// false means the queue is empty. Cancelled events are removed eagerly by
// Cancel, so everything in the heap is runnable.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.at
	fn := ev.fn
	e.recycle(ev)
	e.live--
	e.steps++
	fn()
	return true
}

func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	if len(e.free) < 4096 {
		e.free = append(e.free, ev)
	}
}

// Stop makes Run and RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled exactly at t are executed.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 {
		if e.events[0].at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
