package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// TestMailboxOrdering checks the deterministic merge: events drained into
// a shard execute in (time, srcShard, localSeq) order regardless of the
// order the senders appended them.
func TestMailboxOrdering(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine(), NewEngine()}
	mail := NewMailboxes(3)
	p := NewParallel(engines, mail, ParallelConfig{Window: 1})

	var got []string
	rec := func(tag string) func() {
		return func() { got = append(got, tag) }
	}
	// Shard 2 sends before shard 0, with timestamp ties across sources and
	// within one source (two sends at t=5 from shard 0 must keep their send
	// order via localSeq).
	mail.Outbox(2, 1).Send(5, rec("t5 src2 first"))
	mail.Outbox(2, 1).Send(3, rec("t3 src2"))
	mail.Outbox(0, 1).Send(5, rec("t5 src0 first"))
	mail.Outbox(0, 1).Send(5, rec("t5 src0 second"))
	mail.Outbox(0, 1).Send(7, rec("t7 src0"))

	p.drainPhase(1)
	eng := engines[1]
	for eng.Step() {
	}
	want := []string{"t3 src2", "t5 src0 first", "t5 src0 second", "t5 src2 first", "t7 src0"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order = %v, want %v", got, want)
	}
}

func TestMailboxValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("one-shard mailboxes", func() { NewMailboxes(1) })
	mustPanic("self outbox", func() { NewMailboxes(2).Outbox(1, 1) })
	mustPanic("no engines", func() { NewParallel(nil, nil, ParallelConfig{}) })
	mustPanic("nil mail, 2 engines", func() {
		NewParallel([]*Engine{NewEngine(), NewEngine()}, nil, ParallelConfig{})
	})
	mustPanic("mail size mismatch", func() {
		NewParallel([]*Engine{NewEngine(), NewEngine()}, NewMailboxes(3), ParallelConfig{})
	})
}

// toyRing wires k shards into a ring of ping-pong timers: each shard's
// node, upon firing, re-arms locally and sends a cross-shard event to the
// next shard with delay w. It returns the runner and the per-shard trace.
// workers pins the pool size (0 = the GOMAXPROCS default).
func toyRing(k int, w Time, hops, workers int) (*Parallel, [][]string) {
	engines := make([]*Engine, k)
	for i := range engines {
		engines[i] = NewEngine()
	}
	var mail *Mailboxes
	if k > 1 {
		mail = NewMailboxes(k)
	}
	traces := make([][]string, k)
	// Each chain carries its own hop budget through the closure chain: the
	// only state crossing shards rides in the cross-shard events themselves,
	// whose handoff the epoch barrier orders.
	var hop func(shard, id, left int) func()
	hop = func(shard, id, left int) func() {
		return func() {
			eng := engines[shard]
			traces[shard] = append(traces[shard],
				fmt.Sprintf("t=%d shard=%d id=%d", eng.Now(), shard, id))
			if left <= 1 {
				return
			}
			next := (shard + 1) % k
			at := eng.Now() + w
			if next == shard {
				eng.At(at, hop(next, id+1, left-1))
			} else {
				mail.Outbox(shard, next).Send(at, hop(next, id+1, left-1))
			}
		}
	}
	// Two concurrent ping-pong chains starting on different shards, with a
	// timestamp collision at t=0 when k == 1.
	engines[0].At(0, hop(0, 0, hops/2))
	engines[(k-1)%k].At(0, hop((k-1)%k, 1000, hops-hops/2))
	return NewParallel(engines, mail, ParallelConfig{Window: w, Workers: workers}), traces
}

// TestParallelDeterministicToy runs the same toy workload twice per shard
// count and requires identical traces — the bit-identical-repetition half
// of the determinism contract, at the engine level.
func TestParallelDeterministicToy(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		run := func() [][]string {
			p, traces := toyRing(k, 7, 400, 0)
			if err := p.Run(); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			return traces
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("k=%d: traces differ between repetitions", k)
		}
		total := 0
		for _, tr := range a {
			total += len(tr)
		}
		if total != 400 {
			t.Fatalf("k=%d: executed %d hops, want 400", k, total)
		}
	}
}

// TestParallelWorkerPoolEquivalence pins the worker-pool half of the
// determinism contract: the same workload is bit-identical whether the
// shards run on one goroutine, one per shard, or anything in between —
// the pool size only changes wall-clock behavior, never results.
func TestParallelWorkerPoolEquivalence(t *testing.T) {
	const k = 5
	run := func(workers int) [][]string {
		p, traces := toyRing(k, 7, 400, workers)
		if p.workers != workers {
			t.Fatalf("pool size = %d, want %d", p.workers, workers)
		}
		if err := p.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return traces
	}
	want := run(1)
	for _, workers := range []int{2, 3, k} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: traces differ from the single-worker run", workers)
		}
	}
	// Oversized requests clamp to the shard count.
	p, _ := toyRing(2, 1, 4, 16)
	if p.workers != 2 {
		t.Fatalf("pool size = %d for 2 shards, want clamp to 2", p.workers)
	}
}

// TestParallelSkipAhead verifies the horizon jumps over quiet gaps: with
// events spaced far apart relative to the lookahead, the epoch count must
// track the event count, not simulated-time / window.
func TestParallelSkipAhead(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	mail := NewMailboxes(2)
	p := NewParallel(engines, mail, ParallelConfig{Window: 1})
	// 50 events, each one million time units after the last.
	n := 0
	var next func()
	next = func() {
		if n++; n < 50 {
			engines[0].After(1_000_000, next)
		}
	}
	engines[0].At(0, next)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("executed %d events, want 50", n)
	}
	// A fixed-width window scheme would need ~50M epochs here.
	if p.Epochs() > 200 {
		t.Fatalf("epochs = %d, want skip-ahead (<= 200)", p.Epochs())
	}
}

// TestParallelStopDuringEpoch checks Stop cancels promptly from inside a
// long epoch rather than waiting for the queue to drain.
func TestParallelStopDuringEpoch(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	mail := NewMailboxes(2)
	p := NewParallel(engines, mail, ParallelConfig{Window: 1})
	ran := 0
	for i := 0; i < 100_000; i++ {
		engines[0].At(Time(i), func() {
			if ran++; ran == 2000 {
				p.Stop()
			}
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if ran >= 100_000 {
		t.Fatalf("Stop did not interrupt the epoch: all %d events ran", ran)
	}
}

// TestParallelPanicPropagates checks a worker panic surfaces as Run's
// error (with the shard identified) instead of crashing the process or
// deadlocking the sibling shards at a barrier.
func TestParallelPanicPropagates(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine(), NewEngine()}
	mail := NewMailboxes(3)
	// One goroutine per shard, so the panic unwinds concurrently with live
	// sibling workers (the deadlock the recovery exists to prevent).
	p := NewParallel(engines, mail, ParallelConfig{Window: 1, Workers: 3})
	for i := 0; i < 3; i++ {
		eng := engines[i]
		var tick func()
		tick = func() { eng.After(1, tick) }
		engines[i].At(0, tick)
	}
	engines[1].At(500, func() { panic("boom") })
	err := p.Run()
	if err == nil {
		t.Fatal("Run returned nil after a shard panic")
	}
	if !strings.Contains(err.Error(), "shard 1 panicked") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error = %q, want shard 1 / boom", err)
	}
}

// TestParallelDoneStops checks the Done hook ends the run at a barrier.
func TestParallelDoneStops(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	mail := NewMailboxes(2)
	n := 0
	p := NewParallel(engines, mail, ParallelConfig{
		Window: 1,
		Done:   func() bool { return n >= 10 },
	})
	var tick func()
	tick = func() {
		n++
		engines[0].After(1, tick)
	}
	engines[0].At(0, tick)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if n < 10 || n > 10_000 {
		t.Fatalf("Done hook stopped after %d events", n)
	}
}

// TestBuildDists pins the transitive-closure lookahead: a directed ring
// with distinct hop delays, where every pair's bound is the path around
// the ring and every diagonal entry is the full cycle (the self-echo
// bound).
func TestBuildDists(t *testing.T) {
	// 0 -> 1 costs 1, 1 -> 2 costs 2, 2 -> 0 costs 4.
	w := []Time{
		0, 1, 0,
		0, 0, 2,
		4, 0, 0,
	}
	d := buildDists(3, 0, w)
	want := []Time{
		7, 1, 3,
		6, 7, 2,
		4, 5, 7,
	}
	for i, v := range want {
		if d[i] != v {
			t.Fatalf("dist[%d][%d] = %v, want %v (full matrix %v)", i/3, i%3, d[i], v, d)
		}
	}
	// A uniform window is the complete graph: off-diagonal W, diagonal 2W.
	d = buildDists(2, 5, nil)
	want = []Time{10, 5, 5, 10}
	for i, v := range want {
		if d[i] != v {
			t.Fatalf("uniform dist[%d] = %v, want %v", i, d[i], v)
		}
	}
	// No interaction at all: every bound saturates.
	for _, v := range buildDists(2, 0, nil) {
		if v != maxTime {
			t.Fatal("zero window must leave all pairs unreachable")
		}
	}
}

// TestParallelPerPairLookahead checks an idle downstream shard stops
// binding the window: on a one-way 2-shard chain the producer runs its
// whole queue in one epoch (nothing can ever echo back to it), instead of
// one epoch per lookahead window.
func TestParallelPerPairLookahead(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	mail := NewMailboxes(2)
	windows := []Time{
		0, 1, // 0 -> 1 has a 1-tick link
		0, 0, // nothing flows 1 -> 0
	}
	p := NewParallel(engines, mail, ParallelConfig{Windows: windows})
	const n = 100
	received := 0
	out := mail.Outbox(0, 1)
	var last Time = -1
	for i := 0; i < n; i++ {
		at := Time(i)
		engines[0].At(at, func() {
			out.Send(at+1, func() {
				if now := engines[1].Now(); now < last {
					t.Errorf("receiver time went backwards: %v after %v", now, last)
				}
				last = engines[1].Now()
				received++
			})
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if received != n {
		t.Fatalf("received %d events, want %d", received, n)
	}
	// Epoch 1: the producer drains its whole queue (no path back to it);
	// epoch 2: the consumer drains all deliveries. A uniform-window runner
	// would need ~n epochs.
	if p.Epochs() > 4 {
		t.Fatalf("epochs = %d, want the one-way chain to run in ~2", p.Epochs())
	}
}

// TestParallelSelfEchoBound is the regression test for the transitive
// lookahead: a shard's own traffic can echo off a peer and come back, so
// its horizon must stay within the round-trip bound even while the peer
// is idle. A one-hop-only horizon lets the sender race ahead and the
// echo then schedules into its past (Engine.At panics).
func TestParallelSelfEchoBound(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	mail := NewMailboxes(2)
	const w = 5
	windows := []Time{
		0, w,
		w, 0,
	}
	p := NewParallel(engines, mail, ParallelConfig{Windows: windows})
	replies := 0
	to1, to0 := mail.Outbox(0, 1), mail.Outbox(1, 0)
	for i := 0; i < 50; i++ {
		at := Time(i)
		engines[0].At(at, func() {
			to1.Send(engines[0].Now()+w, func() { // ping
				to0.Send(engines[1].Now()+w, func() { replies++ }) // echo
			})
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if replies != 50 {
		t.Fatalf("got %d echoes, want 50", replies)
	}
}

// TestParallelProgressMidEpoch checks the first satellite bugfix: event
// counts move mid-epoch (published in 1024-event batches from runPhase),
// not only at barriers — a long or skip-ahead window no longer freezes
// -progress. The exact in-callback assertion is deterministic; the
// concurrent observer makes -race prove the publication is safe.
func TestParallelProgressMidEpoch(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	mail := NewMailboxes(2)
	// Window 0: no cross-shard interaction, so the whole queue would run
	// as one epoch (up to the phaseEventCap cut) — the worst case for
	// barrier-only progress. Workers pinned so the publication is exercised
	// from concurrent goroutines even on one core.
	p := NewParallel(engines, mail, ParallelConfig{Window: 0, Workers: 2})
	const n = 6000
	for i := 0; i < n; i++ {
		if i == 5000 {
			engines[0].At(Time(i), func() {
				ev, _, ep := p.Progress()
				if ep != 0 {
					t.Errorf("epoch barrier ran before event 5000 (epochs=%d)", ep)
				}
				if ev != 4096 {
					t.Errorf("mid-epoch progress = %d events, want 4096 (four published batches)", ev)
				}
			})
			continue
		}
		engines[0].At(Time(i), func() {})
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var lastEv uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			ev, _, _ := p.Progress()
			if ev < lastEv {
				t.Errorf("events went backwards: %d after %d", ev, lastEv)
				return
			}
			lastEv = ev
			runtime.Gosched()
		}
	}()
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	if ev, _, _ := p.Progress(); ev != n {
		t.Fatalf("final progress = %d events, want %d", ev, n)
	}
}

// TestMailboxShrink pins the steady-state capacity of a mailbox after a
// burst: one incast spike must not pin peak slice capacity for the rest
// of the run — the shrink policy halves an underused box back down to its
// floor within a bounded number of epochs.
func TestMailboxShrink(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	mail := NewMailboxes(2)
	p := NewParallel(engines, mail, ParallelConfig{Window: 1})
	out := mail.Outbox(0, 1)
	nop := func() {}
	box := &mail.boxes[0*2+1]

	clock := Time(0)
	for i := 0; i < 10_000; i++ {
		out.Send(clock, nop)
		clock++
	}
	p.drainPhase(1)
	for engines[1].Step() {
	}
	burstCap := cap(box.evs)
	if burstCap < 10_000 {
		t.Fatalf("burst capacity = %d, want >= 10000", burstCap)
	}
	// Steady trickle: one event per epoch. The box must shrink back to the
	// floor (halving every boxShrinkAfter underused drains).
	for i := 0; i < 400; i++ {
		out.Send(clock, nop)
		clock++
		p.drainPhase(1)
		for engines[1].Step() {
		}
	}
	if got := cap(box.evs); got > boxShrinkMinCap {
		t.Fatalf("retained capacity = %d after steady trickle, want <= %d", got, boxShrinkMinCap)
	}
	// A box that stays busy must not shrink below its working set.
	for i := 0; i < 400; i++ {
		for j := 0; j < 100; j++ {
			out.Send(clock, nop)
			clock++
		}
		p.drainPhase(1)
		for engines[1].Step() {
		}
	}
	if got := cap(box.evs); got < 100 {
		t.Fatalf("busy box shrank to %d, below its 100-event working set", got)
	}
}

// TestOutboxSendPhase checks the phase contract: a Send from the drain
// phase or after the run stopped panics with the shard pair named,
// instead of silently corrupting the next epoch's merge.
func TestOutboxSendPhase(t *testing.T) {
	mustPanicWith := func(name string, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: expected panic", name)
				return
			}
			msg := fmt.Sprint(r)
			if !strings.Contains(msg, "0->1") || !strings.Contains(msg, want) {
				t.Errorf("%s: panic %q, want shard pair 0->1 and %q", name, msg, want)
			}
		}()
		fn()
	}

	// Drain phase: a mid-drain send races the receiver's merge.
	mail := NewMailboxes(2)
	mail.phase.Store(phaseDrain)
	mustPanicWith("send during drain", "drain", func() {
		mail.Outbox(0, 1).Send(1, func() {})
	})

	// After the run stopped: the runner parks the exchange in the stopped
	// phase, so a closure that leaked an outbox past the run fails loudly.
	engines := []*Engine{NewEngine(), NewEngine()}
	mail = NewMailboxes(2)
	p := NewParallel(engines, mail, ParallelConfig{Window: 1})
	out := mail.Outbox(0, 1)
	engines[0].At(0, func() { out.Send(1, func() {}) })
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	mustPanicWith("send after stop", "stopped", func() {
		out.Send(100, func() {})
	})
}

// TestParallelProgressMonotonic hammers Progress from a second goroutine
// while a run executes; under -race this is the proof the observer path
// is synchronization-free and safe.
func TestParallelProgressMonotonic(t *testing.T) {
	p, _ := toyRing(3, 2, 5_000, 3)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var lastEv, lastEp uint64
		var lastNow Time
		for {
			select {
			case <-stop:
				return
			default:
				runtime.Gosched() // don't starve the workers on 1 CPU
			}
			ev, now, ep := p.Progress()
			if ev < lastEv || ep < lastEp || now < lastNow {
				t.Errorf("progress went backwards: (%d,%d,%d) after (%d,%d,%d)",
					ev, now, ep, lastEv, lastNow, lastEp)
				return
			}
			lastEv, lastNow, lastEp = ev, now, ep
		}
	}()
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	ev, _, ep := p.Progress()
	if ev == 0 || ep == 0 {
		t.Fatalf("final progress empty: events=%d epochs=%d", ev, ep)
	}
}
