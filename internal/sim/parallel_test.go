package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// TestMailboxOrdering checks the deterministic merge: events drained into
// a shard execute in (time, srcShard, localSeq) order regardless of the
// order the senders appended them.
func TestMailboxOrdering(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine(), NewEngine()}
	mail := NewMailboxes(3)
	p := NewParallel(engines, mail, ParallelConfig{Window: 1})

	var got []string
	rec := func(tag string) func() {
		return func() { got = append(got, tag) }
	}
	// Shard 2 sends before shard 0, with timestamp ties across sources and
	// within one source (two sends at t=5 from shard 0 must keep their send
	// order via localSeq).
	mail.Outbox(2, 1).Send(5, rec("t5 src2 first"))
	mail.Outbox(2, 1).Send(3, rec("t3 src2"))
	mail.Outbox(0, 1).Send(5, rec("t5 src0 first"))
	mail.Outbox(0, 1).Send(5, rec("t5 src0 second"))
	mail.Outbox(0, 1).Send(7, rec("t7 src0"))

	p.drainPhase(1)
	eng := engines[1]
	for eng.Step() {
	}
	want := []string{"t3 src2", "t5 src0 first", "t5 src0 second", "t5 src2 first", "t7 src0"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order = %v, want %v", got, want)
	}
}

func TestMailboxValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("one-shard mailboxes", func() { NewMailboxes(1) })
	mustPanic("self outbox", func() { NewMailboxes(2).Outbox(1, 1) })
	mustPanic("no engines", func() { NewParallel(nil, nil, ParallelConfig{}) })
	mustPanic("nil mail, 2 engines", func() {
		NewParallel([]*Engine{NewEngine(), NewEngine()}, nil, ParallelConfig{})
	})
	mustPanic("mail size mismatch", func() {
		NewParallel([]*Engine{NewEngine(), NewEngine()}, NewMailboxes(3), ParallelConfig{})
	})
}

// toyRing wires k shards into a ring of ping-pong timers: each shard's
// node, upon firing, re-arms locally and sends a cross-shard event to the
// next shard with delay w. It returns the runner and the per-shard trace.
func toyRing(k int, w Time, hops int) (*Parallel, [][]string) {
	engines := make([]*Engine, k)
	for i := range engines {
		engines[i] = NewEngine()
	}
	var mail *Mailboxes
	if k > 1 {
		mail = NewMailboxes(k)
	}
	traces := make([][]string, k)
	// Each chain carries its own hop budget through the closure chain: the
	// only state crossing shards rides in the cross-shard events themselves,
	// whose handoff the epoch barrier orders.
	var hop func(shard, id, left int) func()
	hop = func(shard, id, left int) func() {
		return func() {
			eng := engines[shard]
			traces[shard] = append(traces[shard],
				fmt.Sprintf("t=%d shard=%d id=%d", eng.Now(), shard, id))
			if left <= 1 {
				return
			}
			next := (shard + 1) % k
			at := eng.Now() + w
			if next == shard {
				eng.At(at, hop(next, id+1, left-1))
			} else {
				mail.Outbox(shard, next).Send(at, hop(next, id+1, left-1))
			}
		}
	}
	// Two concurrent ping-pong chains starting on different shards, with a
	// timestamp collision at t=0 when k == 1.
	engines[0].At(0, hop(0, 0, hops/2))
	engines[(k-1)%k].At(0, hop((k-1)%k, 1000, hops-hops/2))
	return NewParallel(engines, mail, ParallelConfig{Window: w}), traces
}

// TestParallelDeterministicToy runs the same toy workload twice per shard
// count and requires identical traces — the bit-identical-repetition half
// of the determinism contract, at the engine level.
func TestParallelDeterministicToy(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		run := func() [][]string {
			p, traces := toyRing(k, 7, 400)
			if err := p.Run(); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			return traces
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("k=%d: traces differ between repetitions", k)
		}
		total := 0
		for _, tr := range a {
			total += len(tr)
		}
		if total != 400 {
			t.Fatalf("k=%d: executed %d hops, want 400", k, total)
		}
	}
}

// TestParallelSkipAhead verifies the horizon jumps over quiet gaps: with
// events spaced far apart relative to the lookahead, the epoch count must
// track the event count, not simulated-time / window.
func TestParallelSkipAhead(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	mail := NewMailboxes(2)
	p := NewParallel(engines, mail, ParallelConfig{Window: 1})
	// 50 events, each one million time units after the last.
	n := 0
	var next func()
	next = func() {
		if n++; n < 50 {
			engines[0].After(1_000_000, next)
		}
	}
	engines[0].At(0, next)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("executed %d events, want 50", n)
	}
	// A fixed-width window scheme would need ~50M epochs here.
	if p.Epochs() > 200 {
		t.Fatalf("epochs = %d, want skip-ahead (<= 200)", p.Epochs())
	}
}

// TestParallelStopDuringEpoch checks Stop cancels promptly from inside a
// long epoch rather than waiting for the queue to drain.
func TestParallelStopDuringEpoch(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	mail := NewMailboxes(2)
	p := NewParallel(engines, mail, ParallelConfig{Window: 1})
	ran := 0
	for i := 0; i < 100_000; i++ {
		engines[0].At(Time(i), func() {
			if ran++; ran == 2000 {
				p.Stop()
			}
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if ran >= 100_000 {
		t.Fatalf("Stop did not interrupt the epoch: all %d events ran", ran)
	}
}

// TestParallelPanicPropagates checks a worker panic surfaces as Run's
// error (with the shard identified) instead of crashing the process or
// deadlocking the sibling shards at a barrier.
func TestParallelPanicPropagates(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine(), NewEngine()}
	mail := NewMailboxes(3)
	p := NewParallel(engines, mail, ParallelConfig{Window: 1})
	for i := 0; i < 3; i++ {
		eng := engines[i]
		var tick func()
		tick = func() { eng.After(1, tick) }
		engines[i].At(0, tick)
	}
	engines[1].At(500, func() { panic("boom") })
	err := p.Run()
	if err == nil {
		t.Fatal("Run returned nil after a shard panic")
	}
	if !strings.Contains(err.Error(), "shard 1 panicked") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error = %q, want shard 1 / boom", err)
	}
}

// TestParallelDoneStops checks the Done hook ends the run at a barrier.
func TestParallelDoneStops(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	mail := NewMailboxes(2)
	n := 0
	p := NewParallel(engines, mail, ParallelConfig{
		Window: 1,
		Done:   func() bool { return n >= 10 },
	})
	var tick func()
	tick = func() {
		n++
		engines[0].After(1, tick)
	}
	engines[0].At(0, tick)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if n < 10 || n > 10_000 {
		t.Fatalf("Done hook stopped after %d events", n)
	}
}

// TestParallelProgressMonotonic hammers Progress from a second goroutine
// while a run executes; under -race this is the proof the observer path
// is synchronization-free and safe.
func TestParallelProgressMonotonic(t *testing.T) {
	p, _ := toyRing(3, 2, 5_000)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var lastEv, lastEp uint64
		var lastNow Time
		for {
			select {
			case <-stop:
				return
			default:
				runtime.Gosched() // don't starve the workers on 1 CPU
			}
			ev, now, ep := p.Progress()
			if ev < lastEv || ep < lastEp || now < lastNow {
				t.Errorf("progress went backwards: (%d,%d,%d) after (%d,%d,%d)",
					ev, now, ep, lastEv, lastNow, lastEp)
				return
			}
			lastEv, lastNow, lastEp = ev, now, ep
		}
	}()
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	ev, _, ep := p.Progress()
	if ev == 0 || ep == 0 {
		t.Fatalf("final progress empty: events=%d epochs=%d", ev, ep)
	}
}
