package sim

import (
	"math/rand"
	"testing"
)

// Differential test: the ladder-queue engine is exercised against a naive
// sorted-slice reference model with the exact same semantics — total order
// by (time, scheduling sequence), lazy-cancel-is-no-op-after-execution —
// through randomized schedule / cancel / Step / RunUntil sequences,
// including events that schedule children from inside their callbacks.
// Execution order, the clock, and every Stats counter must match.

// refModel is the reference scheduler: an unsorted slice scanned for the
// (at, seq) minimum on every execution. Obviously correct, O(n) per event.
type refModel struct {
	now                            Time
	seq                            uint64
	evs                            []refEv
	scheduled, executed, cancelled uint64
	order                          []int
}

type refEv struct {
	at  Time
	seq uint64
	id  int
}

func (m *refModel) schedule(at Time, id int) {
	m.evs = append(m.evs, refEv{at: at, seq: m.seq, id: id})
	m.seq++
	m.scheduled++
}

func (m *refModel) cancel(id int) {
	for i, ev := range m.evs {
		if ev.id == id {
			m.evs = append(m.evs[:i], m.evs[i+1:]...)
			m.cancelled++
			return
		}
	}
	// Already executed, already cancelled, or never scheduled: no-op,
	// matching Engine.Cancel on a stale handle.
}

func (m *refModel) minIdx() int {
	best := -1
	for i, ev := range m.evs {
		if best < 0 || ev.at < m.evs[best].at ||
			(ev.at == m.evs[best].at && ev.seq < m.evs[best].seq) {
			best = i
		}
	}
	return best
}

// exec runs the minimum event and returns its id (-1 if the queue is
// empty). spawn mirrors the engine-side callbacks' child scheduling.
func (m *refModel) exec(spawn func(parent int) (Time, int, bool)) int {
	i := m.minIdx()
	if i < 0 {
		return -1
	}
	ev := m.evs[i]
	m.evs = append(m.evs[:i], m.evs[i+1:]...)
	m.now = ev.at
	m.executed++
	m.order = append(m.order, ev.id)
	if d, child, ok := spawn(ev.id); ok {
		m.schedule(m.now+d, child)
	}
	return ev.id
}

func (m *refModel) runUntil(t Time, spawn func(int) (Time, int, bool)) {
	for {
		i := m.minIdx()
		if i < 0 || m.evs[i].at > t {
			break
		}
		m.exec(spawn)
	}
	if m.now < t {
		m.now = t
	}
}

func TestEngineDifferentialAgainstSortedSlice(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		e := NewEngine()
		m := &refModel{}

		var engOrder []int
		handles := map[int]EventID{}
		allIDs := []int{}
		nextID := 0

		// spawn decides — purely from the parent id — whether an executing
		// event schedules a child, so the engine callbacks and the model
		// apply identical in-event scheduling.
		spawn := func(parent int) (Time, int, bool) {
			if parent >= 1_000_000_000 { // depth limit: children don't spawn
				return 0, 0, false
			}
			h := uint32(parent)*2654435761 + 12345
			if h%3 != 0 {
				return 0, 0, false
			}
			return Time(h%500 + 1), parent + 1_000_000_000, true
		}

		var engSchedule func(at Time, id int)
		engSchedule = func(at Time, id int) {
			handles[id] = e.At(at, func() {
				engOrder = append(engOrder, id)
				if d, child, ok := spawn(id); ok {
					engSchedule(e.Now()+d, child)
				}
			})
		}

		schedule := func() {
			id := nextID
			nextID++
			at := e.Now() + Time(r.Intn(10_000))
			engSchedule(at, id)
			m.schedule(at, id)
			allIDs = append(allIDs, id)
		}

		for i := 0; i < 50; i++ {
			schedule()
		}
		for op := 0; op < 3000; op++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3:
				schedule()
			case 4, 5:
				if len(allIDs) > 0 {
					// May be live, executed, or already cancelled — the
					// no-op cases must agree too.
					id := allIDs[r.Intn(len(allIDs))]
					e.Cancel(handles[id])
					m.cancel(id)
				}
			case 6, 7:
				e.Step()
				m.exec(spawn)
			case 8, 9:
				h := e.Now() + Time(r.Intn(5_000))
				e.RunUntil(h)
				m.runUntil(h, spawn)
			}
			if e.Now() != m.now {
				t.Fatalf("trial %d op %d: clock %v, model %v", trial, op, e.Now(), m.now)
			}
		}
		e.Run()
		for m.exec(spawn) >= 0 {
		}
		m.now = e.Now()

		if len(engOrder) != len(m.order) {
			t.Fatalf("trial %d: engine ran %d events, model %d", trial, len(engOrder), len(m.order))
		}
		for i := range engOrder {
			if engOrder[i] != m.order[i] {
				t.Fatalf("trial %d: execution order diverges at %d: engine id %d, model id %d",
					trial, i, engOrder[i], m.order[i])
			}
		}
		st := e.Stats()
		if st.Scheduled != m.scheduled || st.Steps != m.executed || st.Cancelled != m.cancelled {
			t.Fatalf("trial %d: counters diverge: engine {sched %d exec %d cancel %d}, model {%d %d %d}",
				trial, st.Scheduled, st.Steps, st.Cancelled, m.scheduled, m.executed, m.cancelled)
		}
		if st.Pending != len(m.evs) || st.Pending != 0 {
			t.Fatalf("trial %d: pending %d, model %d, want both 0 after Run", trial, st.Pending, len(m.evs))
		}
	}
}
