package sim

import (
	"math/rand"
	"testing"
)

// Cancel-heavy workloads (retransmit timers, pacing timers) must not grow
// the heap with cancelled corpses: Cancel removes the event immediately, so
// the heap length always equals the live count.
func TestEngineCancelChurnBoundedHeap(t *testing.T) {
	e := NewEngine()
	r := rand.New(rand.NewSource(42))
	const live = 64 // timers outstanding at any moment
	pending := make([]*Event, 0, live)
	for round := 0; round < 10000; round++ {
		ev := e.After(Time(r.Intn(1000)+1), func() {})
		pending = append(pending, ev)
		// Cancel a random outstanding timer most rounds, mimicking a
		// retransmit timer rescheduled on every ACK.
		if len(pending) > live {
			i := r.Intn(len(pending))
			e.Cancel(pending[i])
			pending[i] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
		}
		if len(e.events) != e.Pending() {
			t.Fatalf("round %d: heap holds %d events but Pending() = %d (cancelled corpse left behind)",
				round, len(e.events), e.Pending())
		}
		if len(e.events) > live+1 {
			t.Fatalf("round %d: heap grew to %d with only %d live timers", round, len(e.events), live+1)
		}
	}
	if e.Stats().Cancelled == 0 {
		t.Fatal("churn cancelled nothing; test is vacuous")
	}
	e.Run()
	if e.Pending() != 0 || len(e.events) != 0 {
		t.Fatalf("after Run: pending=%d heap=%d, want 0/0", e.Pending(), len(e.events))
	}
}

// Pending must stay consistent with the heap through interleaved schedule,
// cancel, and execution — it is maintained incrementally, not recounted.
func TestEnginePendingTracksHeapThroughExecution(t *testing.T) {
	e := NewEngine()
	r := rand.New(rand.NewSource(7))
	var outstanding []*Event
	check := func(when string) {
		if e.Pending() != len(e.events) {
			t.Fatalf("%s: Pending()=%d, heap=%d", when, e.Pending(), len(e.events))
		}
	}
	for i := 0; i < 5000; i++ {
		switch r.Intn(3) {
		case 0:
			outstanding = append(outstanding, e.After(Time(r.Intn(100)+1), func() {}))
		case 1:
			if len(outstanding) > 0 {
				j := r.Intn(len(outstanding))
				e.Cancel(outstanding[j])
				e.Cancel(outstanding[j]) // idempotent
				outstanding = append(outstanding[:j], outstanding[j+1:]...)
			}
		case 2:
			e.Step()
		}
		check("after op")
	}
}

func TestEngineStatsCounts(t *testing.T) {
	e := NewEngine()
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, e.At(Time(i+1), func() {}))
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Cancel(evs[7]) // double-cancel must not double-count
	e.Run()

	st := e.Stats()
	if st.Scheduled != 10 {
		t.Errorf("Scheduled = %d, want 10", st.Scheduled)
	}
	if st.Cancelled != 2 {
		t.Errorf("Cancelled = %d, want 2", st.Cancelled)
	}
	if st.Steps != 8 {
		t.Errorf("Steps = %d, want 8", st.Steps)
	}
	if st.Pending != 0 {
		t.Errorf("Pending = %d, want 0", st.Pending)
	}
	if st.PeakHeap != 10 {
		t.Errorf("PeakHeap = %d, want 10", st.PeakHeap)
	}
}
