package sim

import (
	"math/rand"
	"testing"
)

// Cancel-heavy workloads (retransmit timers, pacing timers) must not grow
// the event arena: Cancel releases the slot (and its callback reference)
// immediately, so with a bounded number of outstanding timers the arena
// stays bounded no matter how many schedule/cancel rounds run. Only the
// 24-byte queue entries are reaped lazily, and those drain as simulated
// time passes their timestamps.
func TestEngineCancelChurnBoundedArena(t *testing.T) {
	e := NewEngine()
	r := rand.New(rand.NewSource(42))
	const live = 64 // timers outstanding at any moment
	pending := make([]EventID, 0, live+1)
	for round := 0; round < 10000; round++ {
		ev := e.After(Time(r.Intn(1000)+1), func() {})
		pending = append(pending, ev)
		// Cancel a random outstanding timer most rounds, mimicking a
		// retransmit timer rescheduled on every ACK.
		if len(pending) > live {
			i := r.Intn(len(pending))
			e.Cancel(pending[i])
			pending[i] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
		}
		if e.Pending() != len(pending) {
			t.Fatalf("round %d: Pending() = %d, want %d", round, e.Pending(), len(pending))
		}
		if got := e.Stats().EventAllocs; got > live+1 {
			t.Fatalf("round %d: %d event slots allocated with only %d timers live (slot leak)",
				round, got, live+1)
		}
	}
	if e.Stats().Cancelled == 0 {
		t.Fatal("churn cancelled nothing; test is vacuous")
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("after Run: pending=%d, want 0", e.Pending())
	}
}

// Pending must stay consistent through interleaved schedule, cancel, and
// execution — it is maintained incrementally, not recounted.
func TestEnginePendingTracksLiveThroughExecution(t *testing.T) {
	e := NewEngine()
	r := rand.New(rand.NewSource(7))
	var outstanding []EventID
	executed := 0
	for i := 0; i < 5000; i++ {
		switch r.Intn(3) {
		case 0:
			outstanding = append(outstanding, e.After(Time(r.Intn(100)+1), func() {}))
		case 1:
			if len(outstanding) > 0 {
				j := r.Intn(len(outstanding))
				e.Cancel(outstanding[j])
				e.Cancel(outstanding[j]) // idempotent
				outstanding = append(outstanding[:j], outstanding[j+1:]...)
			}
		case 2:
			if e.Step() {
				executed++
			}
		}
		// The engine cannot tell us which outstanding handle just ran, so
		// derive the expected live count from the lifetime counters
		// instead: scheduled - executed - cancelled.
		st := e.Stats()
		want := int(st.Scheduled) - int(st.Steps) - int(st.Cancelled)
		if e.Pending() != want {
			t.Fatalf("op %d: Pending()=%d, want %d (scheduled=%d steps=%d cancelled=%d)",
				i, e.Pending(), want, st.Scheduled, st.Steps, st.Cancelled)
		}
		if int(st.Steps) != executed {
			t.Fatalf("op %d: Steps=%d, want %d", i, st.Steps, executed)
		}
	}
}

func TestEngineStatsCounts(t *testing.T) {
	e := NewEngine()
	var evs []EventID
	for i := 0; i < 10; i++ {
		evs = append(evs, e.At(Time(i+1), func() {}))
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Cancel(evs[7]) // double-cancel must not double-count
	e.Run()

	st := e.Stats()
	if st.Scheduled != 10 {
		t.Errorf("Scheduled = %d, want 10", st.Scheduled)
	}
	if st.Cancelled != 2 {
		t.Errorf("Cancelled = %d, want 2", st.Cancelled)
	}
	if st.Steps != 8 {
		t.Errorf("Steps = %d, want 8", st.Steps)
	}
	if st.Pending != 0 {
		t.Errorf("Pending = %d, want 0", st.Pending)
	}
	if st.PeakPending != 10 {
		t.Errorf("PeakPending = %d, want 10", st.PeakPending)
	}
	if st.EventAllocs != 10 {
		t.Errorf("EventAllocs = %d, want 10 (no reuse possible before first free)", st.EventAllocs)
	}
}

// Executed events must free their slots for reuse: a schedule/run cycle
// with one event outstanding at a time allocates exactly one slot.
func TestEngineSlotReuseAcrossExecution(t *testing.T) {
	e := NewEngine()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 1000 {
			e.After(10, chain)
		}
	}
	e.At(0, chain)
	e.Run()
	if n != 1000 {
		t.Fatalf("chain ran %d times, want 1000", n)
	}
	if got := e.Stats().EventAllocs; got != 1 {
		t.Fatalf("EventAllocs = %d, want 1 (slot must be recycled each step)", got)
	}
}
