package sim

import (
	"math/rand"
	"testing"
)

// BenchmarkEngineScheduleCancelChurn models an incast's timer churn: a
// large outstanding set of retransmit-style timers, each round cancelling
// one at random and scheduling a replacement (an RTO pushed out by an
// ACK), while simulated time advances. Cancel cost and corpse reaping
// dominate.
func BenchmarkEngineScheduleCancelChurn(b *testing.B) {
	e := NewEngine()
	r := rand.New(rand.NewSource(1))
	const live = 4096
	handles := make([]EventID, live)
	for i := range handles {
		handles[i] = e.After(Time(r.Intn(1_000_000)+1), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % live
		e.Cancel(handles[j])
		handles[j] = e.After(Time(r.Intn(1_000_000)+1), func() {})
		if i%live == live-1 {
			e.RunUntil(e.Now() + 10_000)
		}
	}
	b.StopTimer()
	e.Run()
}

// BenchmarkEngineSteadyState is the simulator's steady-state shape: a
// fixed population of timers, each rescheduling itself on execution
// (pacing timers, port drains, propagation arrivals). With pre-bound
// callbacks the whole loop — At, queue churn, execution — must run
// allocation-free.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := NewEngine()
	const timers = 1024
	executed := 0
	// Pre-bound callbacks: one closure per timer for its whole lifetime,
	// mirroring Packet.arrive / Port.drain / Flow.onWake.
	cbs := make([]func(), timers)
	for i := 0; i < timers; i++ {
		period := Time(900 + i) // coprime-ish periods keep the queue mixed
		cbs[i] = func() {
			executed++
			e.After(period, cbs[i])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < timers; i++ {
		e.At(Time(i), cbs[i])
	}
	for executed < b.N {
		e.Step()
	}
	b.StopTimer()
	if allocs := e.Stats().EventAllocs; allocs > timers+1 {
		b.Fatalf("steady state grew the event arena: %d slots for %d timers", allocs, timers)
	}
}

// BenchmarkEngineScheduleMixed measures raw schedule+execute throughput
// with a monotonically advancing, randomly jittered timestamp stream — the
// distribution the ladder queue sees from packet transmissions.
func BenchmarkEngineScheduleMixed(b *testing.B) {
	e := NewEngine()
	r := rand.New(rand.NewSource(1))
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Time(r.Intn(100_000)+1), fn)
		if i%64 == 63 {
			e.RunUntil(e.Now() + 1000)
		}
	}
	b.StopTimer()
	e.Run()
}
