package sim

import "testing"

// Regression test for the stale-handle aliasing hazard: with raw event
// pointers and a free list, a handle kept past its event's execution
// aliases whatever event is recycled into the same struct, so a late
// Cancel silently kills an unrelated timer. Generation-stamped EventIDs
// make the late Cancel a guaranteed no-op.
func TestEngineCancelStaleHandleDoesNotKillRecycledSlot(t *testing.T) {
	e := NewEngine()
	ran := map[string]bool{}

	a := e.At(10, func() { ran["a"] = true })
	e.Run() // a executes; its slot returns to the free list

	// b reuses a's slot (single-slot free list ⇒ same index, bumped gen).
	b := e.At(20, func() { ran["b"] = true })
	if b.idx != a.idx {
		t.Fatalf("test premise broken: b did not reuse a's slot (a.idx=%d b.idx=%d)", a.idx, b.idx)
	}
	if b.gen == a.gen {
		t.Fatal("recycled slot kept the same generation; stale handles would alias")
	}

	e.Cancel(a) // stale handle: must NOT cancel b
	e.Run()

	if !ran["a"] || !ran["b"] {
		t.Fatalf("ran = %v; stale Cancel(a) must not affect b", ran)
	}
	if st := e.Stats(); st.Cancelled != 0 {
		t.Fatalf("Cancelled = %d, want 0 (stale cancel must not count)", st.Cancelled)
	}
}

// Same hazard via Cancel: a cancelled event's slot is reused, then the old
// handle is cancelled a second time.
func TestEngineDoubleCancelAcrossSlotReuse(t *testing.T) {
	e := NewEngine()
	ran := false

	a := e.At(10, func() { t.Error("cancelled event a ran") })
	e.Cancel(a)

	b := e.At(10, func() { ran = true })
	if b.idx != a.idx {
		t.Fatalf("test premise broken: b did not reuse a's slot")
	}

	e.Cancel(a) // stale: must be a no-op on b
	e.Run()

	if !ran {
		t.Fatal("stale double-cancel killed the recycled event")
	}
	if st := e.Stats(); st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", st.Cancelled)
	}
}

// The zero EventID is never a live handle.
func TestEngineCancelZeroHandleIsNoop(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(5, func() { ran = true })
	e.Cancel(EventID{})
	e.Run()
	if !ran {
		t.Fatal("Cancel of zero handle affected a live event")
	}
}
