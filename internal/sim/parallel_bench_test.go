package sim

import (
	"fmt"
	"testing"
)

// BenchmarkMailboxSendDrain measures the cross-shard handoff path in
// isolation: append into an outbox, merge-sort the inbox at the barrier,
// schedule into the receiving engine, and execute — the full per-event
// overhead a cross-shard packet pays over a local one.
func BenchmarkMailboxSendDrain(b *testing.B) {
	engines := []*Engine{NewEngine(), NewEngine()}
	mail := NewMailboxes(2)
	p := NewParallel(engines, mail, ParallelConfig{Window: 1})
	out := mail.Outbox(0, 1)
	nop := func() {}
	const batch = 256 // events exchanged per epoch in a busy run
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		m := batch
		if b.N-done < m {
			m = b.N - done
		}
		for i := 0; i < m; i++ {
			out.Send(Time(done+i), nop)
		}
		p.drainPhase(1)
		for engines[1].Step() {
		}
		done += m
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEpochBarrier measures the synchronization floor: epochs that
// execute a single event each, so nearly all time goes to the two barrier
// crossings per epoch across k parked workers. This is the fixed cost a
// sharded run pays per window, and what skip-ahead amortizes.
func BenchmarkEpochBarrier(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			engines := make([]*Engine, k)
			for i := range engines {
				engines[i] = NewEngine()
			}
			mail := NewMailboxes(k)
			n := 0
			var tick func()
			tick = func() {
				if n++; n < b.N {
					engines[0].After(1000, tick)
				}
			}
			engines[0].At(0, tick)
			// Pin the pool to k goroutines: the default would collapse to
			// GOMAXPROCS and this benchmark exists to price the k-worker
			// rendezvous, not the claim loop.
			p := NewParallel(engines, mail, ParallelConfig{Window: 1, Workers: k})
			b.ResetTimer()
			if err := p.Run(); err != nil {
				b.Fatal(err)
			}
			if n != b.N {
				b.Fatalf("executed %d events, want %d", n, b.N)
			}
			b.ReportMetric(float64(p.Epochs())/b.Elapsed().Seconds(), "epochs/sec")
		})
	}
}
