package sim

import (
	"math/rand"
	"testing"
)

// TestEngineStressMixedOps hammers the engine with interleaved schedules,
// cancellations, and RunUntil boundaries, checking global ordering and
// exactly-once execution.
func TestEngineStressMixedOps(t *testing.T) {
	e := NewEngine()
	r := rand.New(rand.NewSource(7))

	executed := map[int]int{}
	cancelled := map[int]bool{}
	events := map[int]EventID{}
	var last Time = -1
	id := 0

	schedule := func(d Time) int {
		id++
		myID := id
		events[myID] = e.After(d, func() {
			executed[myID]++
			if e.Now() < last {
				t.Fatalf("time regressed at event %d", myID)
			}
			last = e.Now()
		})
		return myID
	}

	for i := 0; i < 5000; i++ {
		schedule(Time(r.Intn(100_000)))
	}
	// Cancel a random third before running.
	for myID, ev := range events {
		if r.Intn(3) == 0 {
			e.Cancel(ev)
			cancelled[myID] = true
		}
	}
	// Run in randomly sized chunks, scheduling more events between
	// chunks.
	horizon := Time(0)
	for horizon < 120_000 {
		horizon += Time(r.Intn(10_000))
		e.RunUntil(horizon)
		if e.Now() != horizon {
			t.Fatalf("clock %v after RunUntil(%v)", e.Now(), horizon)
		}
		if r.Intn(2) == 0 {
			nid := schedule(Time(r.Intn(30_000)))
			if r.Intn(4) == 0 {
				e.Cancel(events[nid])
				cancelled[nid] = true
			}
		}
	}
	e.Run()

	for myID := range events {
		n := executed[myID]
		if cancelled[myID] && n != 0 {
			t.Fatalf("cancelled event %d ran %d times", myID, n)
		}
		if !cancelled[myID] && n != 1 {
			t.Fatalf("event %d ran %d times, want exactly once", myID, n)
		}
	}
}

// TestEngineCancelAfterExecutionIsNoop: cancelling an event that already
// ran must not corrupt the queue or panic.
func TestEngineCancelAfterExecutionIsNoop(t *testing.T) {
	e := NewEngine()
	ran := 0
	ev := e.At(5, func() { ran++ })
	e.At(10, func() {})
	e.Run()
	e.Cancel(ev) // already executed and recycled
	e.At(20, func() { ran++ })
	e.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
}

// TestRunUntilWithOnlyCancelledEvents advances the clock past a queue of
// corpses.
func TestRunUntilWithOnlyCancelledEvents(t *testing.T) {
	e := NewEngine()
	for i := 1; i <= 10; i++ {
		e.Cancel(e.At(Time(i), func() { t.Fatal("cancelled event ran") }))
	}
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
	if e.Steps() != 0 {
		t.Fatalf("steps = %d, want 0", e.Steps())
	}
}

func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := e.At(Time(i+1), func() {})
		e.Cancel(ev)
		if i%1024 == 1023 {
			e.RunUntil(Time(i))
		}
	}
	e.Run()
}
