// Package sim provides a deterministic discrete-event simulation engine
// with picosecond time resolution.
//
// The engine is single-threaded: events execute in nondecreasing time
// order, with ties broken by scheduling order, so a simulation driven by a
// fixed seed always produces identical results.
package sim

import "fmt"

// Time is a point in simulated time, measured in integer picoseconds from
// the start of the simulation. Picosecond resolution makes the
// serialization delay of an MTU packet exact on both 100 Gb/s and 400 Gb/s
// links (1000 B at 100 Gb/s is exactly 80,000 ps), so no rounding error
// accumulates over long runs.
type Time int64

// Duration constants. A Time is also used to express durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds returns t expressed in nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t expressed in microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "12.5us".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// TransmitTime returns the serialization delay of size bytes on a link of
// the given bandwidth in bits per second. The result is rounded to the
// nearest picosecond.
func TransmitTime(sizeBytes int, bps float64) Time {
	if bps <= 0 {
		panic("sim: TransmitTime with non-positive bandwidth")
	}
	return Time(float64(sizeBytes)*8*1e12/bps + 0.5)
}

// BytesOver returns how many bytes a rate of bps transfers in d.
func BytesOver(bps float64, d Time) float64 {
	return bps / 8 * d.Seconds()
}
