// Conservative, barrier-synchronized parallel execution: several engines
// (one per topology shard) advance through shared time windows, exchanging
// cross-shard events through mailboxes at window boundaries.
//
// The synchronization protocol is the classic YAWNS window scheme. Every
// cross-shard interaction carries a minimum latency W (the lookahead: in
// this simulator, the smallest propagation delay of any link whose
// endpoints live on different shards). Each epoch the runner computes
//
//	horizon = min over shards of next-pending-event time + W
//
// and every shard executes its events with time strictly below the
// horizon, independently and without locks. Any cross-shard event a shard
// generates while executing is stamped at least W after the sending
// event's time, i.e. at or beyond the horizon — so it can never land in
// the past of a peer that has raced ahead inside the same window. At the
// barrier the pending cross-shard events are exchanged and merged, a new
// horizon is computed, and the next epoch begins. Windows are therefore
// never fixed-width: when every shard is idle until some future time the
// horizon jumps straight there (skip-ahead), so quiet phases cost one
// barrier rather than thousands.
//
// Determinism contract: cross-shard events are stamped with a
// (time, srcShard, localSeq) key and scheduled into the receiving engine
// in exactly that order, so same-timestamp ties resolve identically on
// every run. All stop/finish decisions are evaluated only at barriers,
// where every shard's state is a pure function of the simulation inputs.
// A run with a fixed shard count is bit-identical across repetitions (and
// across worker scheduling); runs with different shard counts are each
// internally deterministic but may differ from one another, because
// sharding re-partitions the PRNG streams and same-timestamp tie order at
// shared queues.
package sim

import (
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
)

// maxTime is the largest representable simulated time; it serves as the
// horizon when shards have no cross-shard links to bound each other.
const maxTime = Time(math.MaxInt64)

// xev is one cross-shard event: the absolute time it must execute at on
// the receiving shard, the deterministic merge key (src shard id plus the
// sender's per-shard send sequence), and the callback.
type xev struct {
	at  Time
	seq uint64
	src int32
	fn  func()
}

// Mailboxes is the all-pairs cross-shard event exchange for k shards:
// one single-producer/single-consumer box per (src, dst) pair. During an
// epoch only src's worker appends to a box; at the barrier only dst's
// worker drains it — the phases are separated by the barrier's lock, so
// no box is ever touched from two goroutines at once.
type Mailboxes struct {
	k     int
	boxes [][]xev  // boxes[src*k+dst]
	seqs  []uint64 // per-src send counter (shared by all of src's outboxes)
	outs  []Outbox // pre-built handles, indexed src*k+dst
}

// NewMailboxes returns the exchange for k shards.
func NewMailboxes(k int) *Mailboxes {
	if k < 2 {
		panic(fmt.Sprintf("sim: mailboxes need at least 2 shards, got %d", k))
	}
	m := &Mailboxes{
		k:     k,
		boxes: make([][]xev, k*k),
		seqs:  make([]uint64, k),
		outs:  make([]Outbox, k*k),
	}
	for src := 0; src < k; src++ {
		for dst := 0; dst < k; dst++ {
			m.outs[src*k+dst] = Outbox{
				box: &m.boxes[src*k+dst],
				seq: &m.seqs[src],
				src: int32(src),
			}
		}
	}
	return m
}

// Shards returns the shard count the exchange was built for.
func (m *Mailboxes) Shards() int { return m.k }

// Outbox returns the sending handle for the (src, dst) pair. Handles are
// pre-built, so callers (ports, typically) can hold one pointer and send
// without any map or index arithmetic on the hot path.
func (m *Mailboxes) Outbox(src, dst int) *Outbox {
	if src == dst {
		panic("sim: outbox to own shard (schedule locally instead)")
	}
	return &m.outs[src*m.k+dst]
}

// Outbox is one (src, dst) sending handle. Send may only be called by the
// src shard's worker during its run phase.
type Outbox struct {
	box *[]xev
	seq *uint64
	src int32
}

// Send enqueues fn to execute at absolute time at on the destination
// shard. The (time, srcShard, localSeq) stamp fixes the merge order at
// the receiving side.
func (o *Outbox) Send(at Time, fn func()) {
	*o.box = append(*o.box, xev{at: at, seq: *o.seq, src: o.src, fn: fn})
	*o.seq++
}

// barrier is a reusable generation-counted rendezvous for n goroutines.
// The last arriver runs the supplied action while holding the lock — a
// single-writer window in which shared epoch state (horizon, stop flag)
// can be read and written with plain operations — then releases everyone.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n goroutines have arrived. Exactly one caller —
// the last to arrive — runs action (which may be nil) before the release.
func (b *barrier) wait(action func()) {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		if action != nil {
			action()
		}
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// ParallelConfig parameterizes a Parallel runner.
type ParallelConfig struct {
	// Window is the lookahead W: the minimum latency of any cross-shard
	// interaction. Zero means the shards cannot interact at all, and each
	// epoch runs to queue exhaustion.
	Window Time
	// Done, when non-nil, is evaluated at every epoch barrier (by exactly
	// one goroutine, with all shard work quiesced); returning true stops
	// the run. Experiments pass Network.AllFinished here.
	Done func() bool
}

// Parallel drives k engines through barrier-synchronized time windows
// with one worker goroutine per engine. Construct with NewParallel, start
// with Run; Stop cancels from any goroutine. A Parallel is single-use.
type Parallel struct {
	engines []*Engine
	mail    *Mailboxes
	window  Time
	doneFn  func() bool

	bar *barrier
	// Epoch state: written only inside barrier actions (or before the
	// workers start), read by workers between barriers — the barrier's
	// lock orders every access.
	curEnd  Time
	curStop bool
	next    []Time // per-shard next-event time after drain
	has     []bool // per-shard: any event pending at all
	drains  [][]xev
	epochs  uint64

	stopReq atomic.Bool

	// Progress snapshot, published atomically at each barrier so an
	// observer goroutine can watch a run without synchronizing with (or
	// perturbing) the workers.
	progEvents atomic.Uint64
	progEpochs atomic.Uint64
	progNow    atomic.Int64

	errMu sync.Mutex
	err   error
}

// NewParallel builds a runner over the given engines. mail must have been
// created for exactly len(engines) shards; it may be nil only for a
// single engine (no cross-shard traffic to exchange).
func NewParallel(engines []*Engine, mail *Mailboxes, cfg ParallelConfig) *Parallel {
	if len(engines) == 0 {
		panic("sim: parallel runner needs at least one engine")
	}
	if mail != nil && mail.k != len(engines) {
		panic(fmt.Sprintf("sim: mailboxes built for %d shards, got %d engines", mail.k, len(engines)))
	}
	if mail == nil && len(engines) > 1 {
		panic("sim: multiple engines require mailboxes")
	}
	return &Parallel{
		engines: engines,
		mail:    mail,
		window:  cfg.Window,
		doneFn:  cfg.Done,
		bar:     newBarrier(len(engines)),
		next:    make([]Time, len(engines)),
		has:     make([]bool, len(engines)),
		drains:  make([][]xev, len(engines)),
	}
}

// horizon returns minNext + window, saturating at maxTime (a zero window
// means the shards cannot interact, so nothing bounds the epoch).
func (p *Parallel) horizon(minNext Time) Time {
	if p.window <= 0 {
		return maxTime
	}
	h := minNext + p.window
	if h < minNext {
		return maxTime
	}
	return h
}

// Run executes epochs until every queue drains, Done reports true, Stop
// is called, or a shard panics (the panic is recovered and returned as an
// error rather than crashing sibling shards mid-epoch). It blocks until
// all workers have parked at a barrier and exited.
func (p *Parallel) Run() error {
	minNext, any := Time(0), false
	for _, e := range p.engines {
		if t, ok := e.NextEventTime(); ok && (!any || t < minNext) {
			minNext, any = t, true
		}
	}
	if !any || (p.doneFn != nil && p.doneFn()) {
		return nil
	}
	p.curEnd = p.horizon(minNext)
	p.progNow.Store(int64(minNext))
	var wg sync.WaitGroup
	for w := range p.engines {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.worker(w)
		}(w)
	}
	wg.Wait()
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

// Stop requests cancellation. Workers notice within ~1024 events even
// mid-epoch; the run then winds down at the next barrier. Safe to call
// from any goroutine, including Done and signal handlers.
func (p *Parallel) Stop() { p.stopReq.Store(true) }

// Progress returns the counters published at the most recent barrier:
// total events executed across all shards, the simulated-time floor every
// shard has reached, and epochs completed. Safe to call concurrently with
// Run; reading it never perturbs the simulation.
func (p *Parallel) Progress() (events uint64, now Time, epochs uint64) {
	return p.progEvents.Load(), Time(p.progNow.Load()), p.progEpochs.Load()
}

// Epochs returns the number of barrier-synchronized windows completed.
func (p *Parallel) Epochs() uint64 { return p.progEpochs.Load() }

// ShardSteps returns each shard engine's executed-event count. Call it
// after Run returns.
func (p *Parallel) ShardSteps() []uint64 {
	steps := make([]uint64, len(p.engines))
	for i, e := range p.engines {
		steps[i] = e.Steps()
	}
	return steps
}

func (p *Parallel) worker(w int) {
	for {
		end, stop := p.curEnd, p.curStop
		if stop {
			return
		}
		p.runPhase(w, end)
		// Barrier 1: every shard has finished executing inside the
		// window, so every cross-shard send for this epoch is in its box.
		p.bar.wait(nil)
		p.drainPhase(w)
		// Barrier 2: every inbox is merged; the last arriver computes the
		// next horizon and the stop decision from fully quiesced state.
		p.bar.wait(p.advance)
	}
}

// fail records the first worker panic and requests a cooperative stop.
// The panicking worker keeps participating in barriers so its siblings
// are released rather than deadlocked.
func (p *Parallel) fail(w int, r any) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = fmt.Errorf("sim: shard %d panicked: %v\n%s", w, r, debug.Stack())
	}
	p.errMu.Unlock()
	p.stopReq.Store(true)
}

// runPhase executes shard w's events with time strictly below end,
// checking for cancellation every 1024 events so a Stop mid-epoch does
// not have to wait for a long window to drain.
func (p *Parallel) runPhase(w int, end Time) {
	defer func() {
		if r := recover(); r != nil {
			p.fail(w, r)
		}
	}()
	eng := p.engines[w]
	n := 0
	for eng.StepBefore(end) {
		if n++; n&1023 == 0 && p.stopReq.Load() {
			return
		}
	}
}

// drainPhase merges shard w's inboxes — every (src, w) box — in the
// deterministic (time, srcShard, localSeq) order and schedules the events
// into w's engine, then publishes w's next-event time for the horizon
// computation at the following barrier.
func (p *Parallel) drainPhase(w int) {
	defer func() {
		if r := recover(); r != nil {
			p.fail(w, r)
		}
	}()
	eng := p.engines[w]
	if m := p.mail; m != nil {
		buf := p.drains[w][:0]
		for src := 0; src < m.k; src++ {
			box := &m.boxes[src*m.k+w]
			buf = append(buf, *box...)
			*box = (*box)[:0]
		}
		if len(buf) > 1 {
			sort.Slice(buf, func(i, j int) bool {
				a, b := buf[i], buf[j]
				if a.at != b.at {
					return a.at < b.at
				}
				if a.src != b.src {
					return a.src < b.src
				}
				return a.seq < b.seq
			})
		}
		for i := range buf {
			eng.At(buf[i].at, buf[i].fn)
			buf[i].fn = nil // don't retain callbacks past this epoch
		}
		p.drains[w] = buf[:0]
	}
	t, ok := eng.NextEventTime()
	p.next[w], p.has[w] = t, ok
}

// advance is the epoch-barrier action: executed by exactly one goroutine
// while every other worker is parked, it publishes progress and computes
// the next window (or the stop decision) from globally quiesced state —
// the only place such decisions are made, which is what keeps fixed-shard
// runs bit-identical across repetitions.
func (p *Parallel) advance() {
	p.epochs++
	minNext, any := Time(0), false
	var events uint64
	for w, e := range p.engines {
		events += e.Steps()
		if p.has[w] && (!any || p.next[w] < minNext) {
			minNext, any = p.next[w], true
		}
	}
	p.progEvents.Store(events)
	p.progEpochs.Store(p.epochs)
	stop := p.stopReq.Load() || !any
	if !stop && p.doneFn != nil && p.doneFn() {
		stop = true
	}
	if stop {
		p.curStop = true
		return
	}
	p.progNow.Store(int64(minNext))
	p.curEnd = p.horizon(minNext)
}
