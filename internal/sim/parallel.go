// Conservative, barrier-synchronized parallel execution: several engines
// (one per topology shard) advance through per-shard time windows,
// exchanging cross-shard events through mailboxes at window boundaries.
//
// The synchronization protocol is the classic YAWNS window scheme with
// per-pair lookahead. Every direct src->dst shard interaction carries a
// minimum latency W[src][dst] (in this simulator, the smallest propagation
// delay of any link from a node on src to a node on dst). Influence can
// also relay — src affects mid which affects dst, or loops back to src
// itself — but each hop costs at least that pair's W in simulated time, so
// the earliest any event pending on src can make something land on d is
// next-event(src) + dist(src, d), where dist is the all-pairs shortest
// path over W including self-cycles (dist[d][d] = the cheapest loop that
// leaves d and comes back: d's own traffic echoing off a peer). The runner
// precomputes dist once (Floyd-Warshall over at most a few dozen shards)
// and each epoch sets, for every shard d,
//
//	horizon(d) = min over shards src with pending events
//	             of next-event(src) + dist(src, d)
//
// and every shard executes its events with time strictly below its own
// horizon, independently and without locks. This is safe because events
// cross shards only at barriers: a delivery to d at time T belongs to a
// causal chain whose origin event is pending on some shard src right now
// (mailboxes are empty at the decision point, and nothing is spontaneous),
// so T >= next(src) + dist(src, d) >= horizon(d) — it can never land in
// the past of a receiver that raced ahead inside the same window. Horizons
// are also monotone across epochs: a shard that turns busy by receiving a
// delivery inherits, by the triangle inequality, at least the bound its
// origin already imposed. Idle or loosely-coupled peers therefore stop
// binding the window: a shard whose only busy neighbors are far away (in
// delay terms) gets a wide horizon, and when every shard is idle until
// some future time the horizon jumps straight there (skip-ahead), so quiet
// phases cost one barrier rather than thousands.
//
// As a liveness backstop each run phase is additionally cut after a fixed
// event budget (phaseEventCap): a shard with an unbounded horizon — no
// busy peers can reach it — still returns to the barrier periodically so
// Done and Stop are evaluated with bounded latency. The cut is a pure
// function of the shard's executed-event count, so it never breaks
// repetition determinism.
//
// Shards are decoupled from goroutines: each phase, a pool of at most
// min(shards, GOMAXPROCS) workers claims shard indices from an atomic
// counter (see ParallelConfig.Workers). Within a phase shards touch
// disjoint state, so which worker runs which shard is invisible to the
// simulation — and a 1-core machine driving many shards degenerates to a
// plain loop with no context switches or barrier contention at all.
//
// Determinism contract: cross-shard events are stamped with a
// (time, srcShard, localSeq) key; each barrier exchange schedules them
// into the receiving engine in exactly that order, so same-timestamp ties
// resolve identically on every run. All stop/finish decisions are
// evaluated only at barriers, where every shard's state is a pure function
// of the simulation inputs. A run with a fixed shard count is
// bit-identical across repetitions (and across worker scheduling or pool
// size); runs with different shard counts, window matrices, or runner
// versions are each internally deterministic but may differ from one
// another, because those choices re-partition the PRNG streams, the epoch
// boundaries, and the same-timestamp tie order at shard boundaries.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"
)

// maxTime is the largest representable simulated time; it serves as the
// horizon when no busy peer bounds a shard.
const maxTime = Time(math.MaxInt64)

// phaseEventCap is the per-shard event budget of one run phase. It only
// matters when a shard's horizon is unbounded (or very wide): the shard
// returns to the barrier after this many events so Stop/Done latency stays
// bounded even if its queue self-replenishes forever. The cut depends only
// on the deterministic event sequence, never on wall time.
const phaseEventCap = 8192

// Mailbox exchange phases; see Mailboxes.phase.
const (
	phaseRun uint32 = iota
	phaseDrain
	phaseStopped
)

func phaseName(ph uint32) string {
	switch ph {
	case phaseRun:
		return "run"
	case phaseDrain:
		return "drain"
	case phaseStopped:
		return "stopped"
	}
	return fmt.Sprintf("phase-%d", ph)
}

// xev is one cross-shard event: the absolute time it must execute at on
// the receiving shard, the deterministic merge key (src shard id plus the
// sender's per-shard send sequence), and the callback.
type xev struct {
	at  Time
	seq uint64
	src int32
	fn  func()
}

// Box shrink policy: a box whose drained length stays under a quarter of
// its capacity for boxShrinkAfter consecutive drains is reallocated at
// half the capacity (down to boxShrinkMinCap), so one incast burst does
// not pin peak slice capacity for the rest of a multi-hour run. Halving
// with hysteresis converges to the working set in a few hundred epochs
// without thrashing on bursty traffic.
const (
	boxShrinkMinCap = 64
	boxShrinkAfter  = 32
)

// xbox is one (src, dst) mailbox. Send appends and tracks whether the box
// is still sorted by time (it almost always is: a sender's clock only
// moves forward, and all links of one shard pair usually share one delay,
// so per-box runs come out presorted and the drain-side sort is skipped).
type xbox struct {
	evs    []xev
	lastAt Time   // time of the most recent Send
	head   int    // merge cursor, used only inside drainPhase
	sorted bool   // evs is nondecreasing in at (=> sorted by (at, seq))
	under  uint32 // consecutive underused drains, for the shrink policy
}

// settle resets the box after (or in place of) a drain: callbacks are
// released, the merge cursor rewinds, and the shrink policy runs.
func (b *xbox) settle() {
	used := len(b.evs)
	if used > 0 {
		clear(b.evs) // don't retain callbacks past this epoch
		b.evs = b.evs[:0]
	}
	b.head = 0
	b.sorted = true
	if c := cap(b.evs); c > boxShrinkMinCap && used < c/4 {
		if b.under++; b.under >= boxShrinkAfter {
			b.evs = make([]xev, 0, c/2)
			b.under = 0
		}
	} else {
		b.under = 0
	}
}

// sortRun orders one box by (at, seq). src is constant within a box, so
// this is the full (time, srcShard, localSeq) merge key.
func sortRun(evs []xev) {
	slices.SortFunc(evs, func(a, b xev) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
}

// Mailboxes is the all-pairs cross-shard event exchange for k shards:
// one single-producer/single-consumer box per (src, dst) pair. During an
// epoch only src's worker appends to a box; at the barrier only dst's
// worker drains it — the phases are separated by the epoch barrier, so no
// box is ever touched from two goroutines at once. The phase field makes
// that contract checkable: Send panics outside the run phase instead of
// silently corrupting the next epoch's merge.
type Mailboxes struct {
	k     int
	phase atomic.Uint32 // phaseRun / phaseDrain / phaseStopped
	boxes []xbox        // boxes[src*k+dst]
	seqs  []uint64      // per-src send counter (shared by all of src's outboxes)
	outs  []Outbox      // pre-built handles, indexed src*k+dst
}

// NewMailboxes returns the exchange for k shards.
func NewMailboxes(k int) *Mailboxes {
	if k < 2 {
		panic(fmt.Sprintf("sim: mailboxes need at least 2 shards, got %d", k))
	}
	m := &Mailboxes{
		k:     k,
		boxes: make([]xbox, k*k),
		seqs:  make([]uint64, k),
		outs:  make([]Outbox, k*k),
	}
	for i := range m.boxes {
		m.boxes[i].sorted = true
	}
	for src := 0; src < k; src++ {
		for dst := 0; dst < k; dst++ {
			m.outs[src*k+dst] = Outbox{
				mail: m,
				box:  &m.boxes[src*k+dst],
				seq:  &m.seqs[src],
				src:  int32(src),
				dst:  int32(dst),
			}
		}
	}
	return m
}

// Shards returns the shard count the exchange was built for.
func (m *Mailboxes) Shards() int { return m.k }

// Outbox returns the sending handle for the (src, dst) pair. Handles are
// pre-built, so callers (ports, typically) can hold one pointer and send
// without any map or index arithmetic on the hot path.
func (m *Mailboxes) Outbox(src, dst int) *Outbox {
	if src == dst {
		panic("sim: outbox to own shard (schedule locally instead)")
	}
	return &m.outs[src*m.k+dst]
}

// Outbox is one (src, dst) sending handle. Send may only be called by the
// src shard's worker during its run phase.
type Outbox struct {
	mail *Mailboxes
	box  *xbox
	seq  *uint64
	src  int32
	dst  int32
}

// Send enqueues fn to execute at absolute time at on the destination
// shard. The (time, srcShard, localSeq) stamp fixes the merge order at
// the receiving side. Send panics when called outside the sender's run
// phase (from a drain, or after the run stopped): such a send would race
// the receiver's merge, so the phase assertion turns a silent corruption
// into an immediate failure naming the shard pair. The check is one
// atomic load — cheap enough to stay on in every build.
func (o *Outbox) Send(at Time, fn func()) {
	if ph := o.mail.phase.Load(); ph != phaseRun {
		panic(fmt.Sprintf("sim: outbox %d->%d: Send during the %s phase (cross-shard sends are only legal from the sender's run phase)",
			o.src, o.dst, phaseName(ph)))
	}
	b := o.box
	if at < b.lastAt && len(b.evs) > 0 {
		b.sorted = false
	}
	b.lastAt = at
	b.evs = append(b.evs, xev{at: at, seq: *o.seq, src: o.src, fn: fn})
	*o.seq++
}

// barrier is a reusable sense-reversing rendezvous for n goroutines. The
// last arriver runs the supplied action — a single-writer window in which
// shared epoch state (horizons, stop flag) is read and written with plain
// operations while every sibling is quiesced — then flips the sense to
// release everyone. Waiters spin briefly with runtime.Gosched (on a busy
// machine the release lands within a few scheduler passes, so epochs cost
// no futex round-trips at all) and fall back to parking on a condvar.
type barrier struct {
	n     int32
	count atomic.Int32  // arrivals in the current crossing
	sense atomic.Uint32 // flips 0/1 at each release

	sleepers atomic.Int32 // waiters parked (or parking) on cond
	mu       sync.Mutex
	cond     *sync.Cond
}

func newBarrier(n int) *barrier {
	b := &barrier{n: int32(n)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// barrierSpin bounds the yield-spin before a waiter parks. Spinning is
// cheap (one atomic load + Gosched per round) and almost always wins:
// epochs are far shorter than a park/unpark round-trip.
const barrierSpin = 64

// wait blocks until all n goroutines have arrived. sense is the caller's
// thread-local sense word, flipped on every crossing; exactly one caller —
// the last to arrive — runs action (which may be nil) before the release.
func (b *barrier) wait(sense *uint32, action func()) {
	s := *sense ^ 1
	*sense = s
	if b.count.Add(1) == b.n {
		if action != nil {
			action()
		}
		// Reset before the sense flip: released waiters may re-arrive at
		// the next crossing immediately, but they cannot have observed the
		// flip before the reset is visible.
		b.count.Store(0)
		b.sense.Store(s)
		if b.sleepers.Load() != 0 {
			// The empty critical section fences against a waiter that
			// checked the sense before the flip but has not parked yet: it
			// holds mu from its sleepers increment until cond.Wait parks
			// it, so after Lock/Unlock every such waiter is parked and the
			// broadcast cannot be lost.
			b.mu.Lock()
			b.mu.Unlock() //nolint:staticcheck // empty section is the fence
			b.cond.Broadcast()
		}
		return
	}
	for i := 0; i < barrierSpin; i++ {
		if b.sense.Load() == s {
			return
		}
		runtime.Gosched()
	}
	b.mu.Lock()
	b.sleepers.Add(1)
	for b.sense.Load() != s {
		b.cond.Wait()
	}
	b.sleepers.Add(-1)
	b.mu.Unlock()
}

// ParallelConfig parameterizes a Parallel runner.
type ParallelConfig struct {
	// Window is the uniform lookahead W: the minimum latency of any
	// cross-shard interaction. Zero means the shards cannot interact at
	// all, and each epoch runs to queue exhaustion (or phaseEventCap).
	// Ignored when Windows is set.
	Window Time
	// Windows, when non-nil, is the per-pair direct-hop lookahead matrix,
	// flat row-major with stride k = len(engines): Windows[src*k+dst] is
	// the minimum latency of any direct src->dst interaction, and zero
	// means src cannot send to dst directly. The runner derives the
	// transitive closure (shortest relay path per pair, self-echo cycles
	// included) itself, so callers only describe the links they have.
	// Per-pair lookahead widens the horizon of shards whose binding peers
	// are idle or far away; Network.Shard derives the matrix from the
	// cross-shard link delays.
	Windows []Time
	// Done, when non-nil, is evaluated at every epoch barrier (by exactly
	// one goroutine, with all shard work quiesced); returning true stops
	// the run. Experiments pass Network.AllFinished here.
	Done func() bool
	// Workers bounds the worker-goroutine pool. Zero (the default) means
	// min(shards, GOMAXPROCS): shards are claimed from a counter each
	// phase, so running k shards on fewer goroutines than k costs nothing
	// but the loop — while k goroutines on fewer cores would pay context
	// switches and cache competition at every barrier for no parallelism.
	// Results are bit-identical for every worker count; tests pin
	// Workers to the shard count to keep exercising the concurrent paths
	// regardless of the machine they run on.
	Workers int
}

// Parallel drives k engines through barrier-synchronized time windows on
// a pool of worker goroutines (at most one per schedulable core — see
// ParallelConfig.Workers). Construct with NewParallel, start with Run;
// Stop cancels from any goroutine. A Parallel is single-use.
type Parallel struct {
	engines []*Engine
	mail    *Mailboxes
	dists   []Time // flat k*k shortest cross-shard delay; maxTime = unreachable
	doneFn  func() bool
	workers int

	bar *barrier
	// Phase work queues: each phase, workers claim shard indices from the
	// matching counter until it passes the shard count. Which worker runs
	// which shard never affects results — shards touch disjoint state
	// within a phase — so the counters need no further coordination. Both
	// are reset inside barrier actions.
	runIdx   atomic.Int32
	drainIdx atomic.Int32
	// Epoch state: written only inside barrier actions (or before the
	// workers start), read by workers between barriers — the barrier
	// orders every access.
	curEnds []Time // per-shard run-phase horizon
	curStop bool
	next    []Time    // per-shard next-event time after drain
	has     []bool    // per-shard: any event pending at all
	runs    [][]*xbox // per-shard drain scratch: the non-empty inbox runs
	epochs  uint64

	stopReq atomic.Bool

	// Progress counters. progEvents advances mid-epoch (runPhase adds its
	// 1024-event batches as they complete) and is reconciled to the exact
	// total at each barrier; progNow/progEpochs advance at barriers only.
	// An observer goroutine can watch a run without synchronizing with
	// (or perturbing) the workers.
	progEvents atomic.Uint64
	progEpochs atomic.Uint64
	progNow    atomic.Int64

	errMu sync.Mutex
	err   error
}

// NewParallel builds a runner over the given engines. mail must have been
// created for exactly len(engines) shards; it may be nil only for a
// single engine (no cross-shard traffic to exchange).
func NewParallel(engines []*Engine, mail *Mailboxes, cfg ParallelConfig) *Parallel {
	if len(engines) == 0 {
		panic("sim: parallel runner needs at least one engine")
	}
	if mail != nil && mail.k != len(engines) {
		panic(fmt.Sprintf("sim: mailboxes built for %d shards, got %d engines", mail.k, len(engines)))
	}
	if mail == nil && len(engines) > 1 {
		panic("sim: multiple engines require mailboxes")
	}
	k := len(engines)
	if cfg.Windows != nil && len(cfg.Windows) != k*k {
		panic(fmt.Sprintf("sim: window matrix has %d entries, want %d*%d", len(cfg.Windows), k, k))
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	p := &Parallel{
		engines: engines,
		mail:    mail,
		dists:   buildDists(k, cfg.Window, cfg.Windows),
		doneFn:  cfg.Done,
		workers: workers,
		bar:     newBarrier(workers),
		curEnds: make([]Time, k),
		next:    make([]Time, k),
		has:     make([]bool, k),
		runs:    make([][]*xbox, k),
	}
	for w := range p.runs {
		p.runs[w] = make([]*xbox, 0, k)
	}
	return p
}

// buildDists turns the direct-hop lookahead (a uniform window or a
// per-pair matrix) into the all-pairs shortest cross-shard delay,
// including self-cycles (the cheapest way a shard's own traffic can echo
// back to it). Entries of maxTime mean no causal path exists at all.
func buildDists(k int, window Time, windows []Time) []Time {
	d := make([]Time, k*k)
	for i := range d {
		d[i] = maxTime
	}
	switch {
	case windows != nil:
		for s := 0; s < k; s++ {
			for t := 0; t < k; t++ {
				if s != t && windows[s*k+t] > 0 {
					d[s*k+t] = windows[s*k+t]
				}
			}
		}
	case window > 0:
		for s := 0; s < k; s++ {
			for t := 0; t < k; t++ {
				if s != t {
					d[s*k+t] = window
				}
			}
		}
	default:
		return d // shards cannot interact at all
	}
	// Floyd-Warshall with an infinite diagonal: d[s][s] converges to the
	// shortest cycle through at least one other shard, which is exactly
	// the self-echo bound (a shard's local queue needs no lookahead).
	for mid := 0; mid < k; mid++ {
		for s := 0; s < k; s++ {
			dm := d[s*k+mid]
			if dm == maxTime {
				continue
			}
			for t := 0; t < k; t++ {
				if d2 := d[mid*k+t]; d2 != maxTime {
					if sum := dm + d2; sum >= dm && sum < d[s*k+t] {
						d[s*k+t] = sum
					}
				}
			}
		}
	}
	return d
}

// computeHorizons sets every shard's run-phase horizon from the quiesced
// per-shard next-event times: shard d may run strictly below the earliest
// time any shard's pending work could make an event land on it — its own
// included, via the self-echo cycle. Saturates at maxTime when nothing
// bounds the shard.
func (p *Parallel) computeHorizons() {
	k := len(p.engines)
	for d := 0; d < k; d++ {
		h := maxTime
		for src := 0; src < k; src++ {
			if !p.has[src] {
				continue
			}
			dist := p.dists[src*k+d]
			if dist == maxTime {
				continue
			}
			t := p.next[src] + dist
			if t < p.next[src] { // overflow
				t = maxTime
			}
			if t < h {
				h = t
			}
		}
		p.curEnds[d] = h
	}
}

// Run executes epochs until every queue drains, Done reports true, Stop
// is called, or a shard panics (the panic is recovered and returned as an
// error rather than crashing sibling shards mid-epoch). It blocks until
// all workers have parked at a barrier and exited.
func (p *Parallel) Run() error {
	any := false
	minNext := maxTime
	for w, e := range p.engines {
		t, ok := e.NextEventTime()
		p.next[w], p.has[w] = t, ok
		if ok && t < minNext {
			minNext, any = t, true
		}
	}
	if !any || (p.doneFn != nil && p.doneFn()) {
		return nil
	}
	p.computeHorizons()
	p.progNow.Store(int64(minNext))
	var wg sync.WaitGroup
	for i := 0; i < p.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.worker()
		}()
	}
	wg.Wait()
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

// Stop requests cancellation. Workers notice within ~1024 events even
// mid-epoch; the run then winds down at the next barrier. Safe to call
// from any goroutine, including Done and signal handlers.
func (p *Parallel) Stop() { p.stopReq.Store(true) }

// Progress returns the run's observable counters: total events executed
// across all shards (live to within 1024 events per shard, so a long or
// skip-ahead epoch still shows motion), the simulated-time floor every
// shard had reached at the most recent barrier, and epochs completed.
// Safe to call concurrently with Run; reading it never perturbs the
// simulation.
func (p *Parallel) Progress() (events uint64, now Time, epochs uint64) {
	return p.progEvents.Load(), Time(p.progNow.Load()), p.progEpochs.Load()
}

// Epochs returns the number of barrier-synchronized windows completed.
func (p *Parallel) Epochs() uint64 { return p.progEpochs.Load() }

// ShardSteps returns each shard engine's executed-event count. Call it
// after Run returns.
func (p *Parallel) ShardSteps() []uint64 {
	steps := make([]uint64, len(p.engines))
	for i, e := range p.engines {
		steps[i] = e.Steps()
	}
	return steps
}

func (p *Parallel) worker() {
	k := int32(len(p.engines))
	var sense uint32
	for {
		if p.curStop {
			return
		}
		for {
			w := p.runIdx.Add(1) - 1
			if w >= k {
				break
			}
			p.runPhase(int(w), p.curEnds[w])
		}
		// Barrier 1: every shard has finished executing inside its window,
		// so every cross-shard send for this epoch is in its box. The
		// action flips the exchange into the drain phase so a straggling
		// Send would panic instead of racing the merges.
		p.bar.wait(&sense, p.beginDrain)
		for {
			w := p.drainIdx.Add(1) - 1
			if w >= k {
				break
			}
			p.drainPhase(int(w))
		}
		// Barrier 2: every inbox is merged; the last arriver computes the
		// next horizons and the stop decision from fully quiesced state.
		p.bar.wait(&sense, p.advance)
	}
}

// beginDrain is the first barrier's action.
func (p *Parallel) beginDrain() {
	p.drainIdx.Store(0)
	if p.mail != nil {
		p.mail.phase.Store(phaseDrain)
	}
}

// fail records the first worker panic and requests a cooperative stop.
// The panicking worker keeps participating in barriers so its siblings
// are released rather than deadlocked.
func (p *Parallel) fail(w int, r any) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = fmt.Errorf("sim: shard %d panicked: %v\n%s", w, r, debug.Stack())
	}
	p.errMu.Unlock()
	p.stopReq.Store(true)
}

// runPhase executes shard w's events with time strictly below end. Every
// 1024 events it publishes the batch to the progress counter and checks
// for cancellation (so a Stop mid-epoch does not have to wait for a long
// window to drain) and for the deterministic phaseEventCap cut.
func (p *Parallel) runPhase(w int, end Time) {
	defer func() {
		if r := recover(); r != nil {
			p.fail(w, r)
		}
	}()
	eng := p.engines[w]
	n := 0
	for eng.StepBefore(end) {
		if n++; n&1023 == 0 {
			p.progEvents.Add(1024)
			if n >= phaseEventCap {
				return
			}
			if p.stopReq.Load() {
				return
			}
		}
	}
}

// drainPhase merges shard w's inboxes — every (src, w) box — in the
// deterministic (time, srcShard, localSeq) order and schedules the events
// into w's engine, then publishes w's next-event time for the horizon
// computation at the following barrier.
//
// Each box is already a (time, seq)-sorted run in the common case (the
// sender's clock only moves forward; Send tracks the exception), so the
// merge is a typed k-way merge over at most k-1 run heads — no reflection,
// no full-buffer sort, no intermediate copy. Ties pick the lowest source
// shard because runs are visited in ascending src order. Events are
// scheduled in ascending time, which is the engine queue's O(1) append
// path.
func (p *Parallel) drainPhase(w int) {
	defer func() {
		if r := recover(); r != nil {
			p.fail(w, r)
		}
	}()
	eng := p.engines[w]
	if m := p.mail; m != nil {
		runs := p.runs[w][:0]
		for src := 0; src < m.k; src++ {
			if src == w {
				continue
			}
			b := &m.boxes[src*m.k+w]
			if len(b.evs) == 0 {
				continue
			}
			if !b.sorted {
				sortRun(b.evs)
				b.sorted = true
			}
			runs = append(runs, b)
		}
		p.runs[w] = runs // keep any grown capacity for the next epoch
		switch len(runs) {
		case 0:
		case 1:
			evs := runs[0].evs
			for i := range evs {
				eng.At(evs[i].at, evs[i].fn)
			}
		default:
			for len(runs) > 1 {
				best, bt := 0, runs[0].evs[runs[0].head].at
				for i := 1; i < len(runs); i++ {
					if t := runs[i].evs[runs[i].head].at; t < bt {
						best, bt = i, t
					}
				}
				b := runs[best]
				eng.At(bt, b.evs[b.head].fn)
				if b.head++; b.head == len(b.evs) {
					runs = append(runs[:best], runs[best+1:]...)
				}
			}
			last := runs[0]
			for _, ev := range last.evs[last.head:] {
				eng.At(ev.at, ev.fn)
			}
		}
		// Settle every inbox — drained ones release their callbacks, and
		// the shrink policy sees quiet boxes too, so a one-off burst does
		// not pin peak capacity forever.
		for src := 0; src < m.k; src++ {
			if src != w {
				m.boxes[src*m.k+w].settle()
			}
		}
	}
	t, ok := eng.NextEventTime()
	p.next[w], p.has[w] = t, ok
}

// advance is the epoch-barrier action: executed by exactly one goroutine
// while every other worker is parked, it publishes progress and computes
// the next windows (or the stop decision) from globally quiesced state —
// the only place such decisions are made, which is what keeps fixed-shard
// runs bit-identical across repetitions.
func (p *Parallel) advance() {
	p.epochs++
	minNext, any := Time(0), false
	var events uint64
	for w, e := range p.engines {
		events += e.Steps()
		if p.has[w] && (!any || p.next[w] < minNext) {
			minNext, any = p.next[w], true
		}
	}
	// Reconcile the mid-epoch estimate to the exact total. The estimate
	// only ever lags (runPhase publishes completed 1024-event batches), so
	// Progress stays monotone.
	p.progEvents.Store(events)
	p.progEpochs.Store(p.epochs)
	stop := p.stopReq.Load() || !any
	if !stop && p.doneFn != nil && p.doneFn() {
		stop = true
	}
	if stop {
		p.curStop = true
		if p.mail != nil {
			p.mail.phase.Store(phaseStopped)
		}
		return
	}
	p.progNow.Store(int64(minNext))
	p.computeHorizons()
	p.runIdx.Store(0)
	if p.mail != nil {
		p.mail.phase.Store(phaseRun)
	}
}
