package trace

import (
	"math"
	"strings"
	"testing"

	"faircc/internal/cc"
	"faircc/internal/net"
	"faircc/internal/sim"
)

type fixedAlgo struct{ ctl cc.Control }

func (a *fixedAlgo) Name() string                 { return "fixed" }
func (a *fixedAlgo) Init(cc.Env) cc.Control       { return a.ctl }
func (a *fixedAlgo) OnAck(cc.Feedback) cc.Control { return a.ctl }

func build(t *testing.T) (*sim.Engine, *net.Network, int, int) {
	t.Helper()
	eng := sim.NewEngine()
	nw := net.New(eng, 1)
	h0, h1 := nw.AddHost(), nw.AddHost()
	sw := nw.AddSwitch()
	p0, _ := nw.Connect(sw, h0, 100e9, sim.Microsecond)
	p1, _ := nw.Connect(sw, h1, 100e9, sim.Microsecond)
	sw.AddRoute(h0.NodeID(), p0)
	sw.AddRoute(h1.NodeID(), p1)
	return eng, nw, h0.NodeID(), h1.NodeID()
}

func TestRecorderCapturesAllKinds(t *testing.T) {
	eng, nw, src, dst := build(t)
	r := Attach(nw, All)
	nw.AddFlow(net.FlowSpec{ID: 7, Src: src, Dst: dst, Size: 10_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: 100e9}})
	eng.Run()
	counts := r.CountByKind()
	if counts[Send] != 10 {
		t.Fatalf("sends = %d, want 10", counts[Send])
	}
	if counts[Deliver] != 10 {
		t.Fatalf("delivers = %d, want 10", counts[Deliver])
	}
	if counts[Finish] != 1 {
		t.Fatalf("finishes = %d, want 1", counts[Finish])
	}
	// 9 control updates (the final ACK completes instead of updating).
	if counts[Control] != 9 {
		t.Fatalf("controls = %d, want 9", counts[Control])
	}
	// Send precedes deliver for each seq, times nondecreasing.
	var last sim.Time
	for _, e := range r.Events {
		if e.T < last {
			t.Fatal("trace not time-ordered")
		}
		last = e.T
	}
}

func TestKindFiltering(t *testing.T) {
	eng, nw, src, dst := build(t)
	r := Attach(nw, Send|Finish)
	nw.AddFlow(net.FlowSpec{ID: 1, Src: src, Dst: dst, Size: 5_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: 100e9}})
	eng.Run()
	counts := r.CountByKind()
	if counts[Deliver] != 0 || counts[Control] != 0 {
		t.Fatalf("filtered kinds recorded: %v", counts)
	}
	if counts[Send] != 5 || counts[Finish] != 1 {
		t.Fatalf("wanted kinds missing: %v", counts)
	}
}

func TestMaxEventsTruncates(t *testing.T) {
	eng, nw, src, dst := build(t)
	r := Attach(nw, All)
	r.MaxEvents = 5
	nw.AddFlow(net.FlowSpec{ID: 1, Src: src, Dst: dst, Size: 50_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: 100e9}})
	eng.Run()
	if len(r.Events) != 5 || !r.Truncated {
		t.Fatalf("events = %d truncated = %v, want 5 and true", len(r.Events), r.Truncated)
	}
}

func TestChainingPreservesExistingHooks(t *testing.T) {
	eng, nw, src, dst := build(t)
	userSends := 0
	nw.Hooks.OnSend = func(*net.Flow, int64, int) { userSends++ }
	r := Attach(nw, Send)
	nw.AddFlow(net.FlowSpec{ID: 1, Src: src, Dst: dst, Size: 3_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: 100e9}})
	eng.Run()
	if userSends != 3 {
		t.Fatalf("user hook called %d times, want 3", userSends)
	}
	if r.CountByKind()[Send] != 3 {
		t.Fatal("recorder missed events while chaining")
	}
}

func TestFlowGoodput(t *testing.T) {
	eng, nw, src, dst := build(t)
	r := Attach(nw, Deliver)
	nw.AddFlow(net.FlowSpec{ID: 1, Src: src, Dst: dst, Size: 1_000_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: 50e9}})
	eng.Run()
	pts := r.FlowGoodput(1, 10*sim.Microsecond)
	if len(pts) < 10 {
		t.Fatalf("too few goodput bins: %d", len(pts))
	}
	// Interior bins should be close to the 50G pacing rate (payload
	// fraction: 1000/1048 of wire rate).
	want := 50e9 * 1000 / 1048
	mid := pts[len(pts)/2].V
	if math.Abs(mid-want) > want*0.05 {
		t.Fatalf("mid-flow goodput = %v, want ~%v", mid, want)
	}
	if r.FlowGoodput(99, sim.Microsecond) != nil {
		t.Fatal("unknown flow should yield nil timeline")
	}
}

func TestRateTimeline(t *testing.T) {
	eng, nw, src, dst := build(t)
	r := Attach(nw, Control)
	nw.AddFlow(net.FlowSpec{ID: 1, Src: src, Dst: dst, Size: 20_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: 42e9}})
	eng.Run()
	pts := r.RateTimeline(1)
	if len(pts) == 0 {
		t.Fatal("no rate points")
	}
	for _, p := range pts {
		if p.V != 42e9 {
			t.Fatalf("rate = %v, want 42e9", p.V)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	eng, nw, src, dst := build(t)
	r := Attach(nw, Send)
	nw.AddFlow(net.FlowSpec{ID: 1, Src: src, Dst: dst, Size: 2_000},
		&fixedAlgo{ctl: cc.Control{WindowBytes: 1e9, RateBps: 100e9}})
	eng.Run()
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 { // header + 2 sends
		t.Fatalf("CSV lines = %d, want 3: %q", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[1], "0,send,1,0,1000") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestGoodputBinValidation(t *testing.T) {
	r := &Recorder{}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive bin")
		}
	}()
	r.FlowGoodput(1, 0)
}
