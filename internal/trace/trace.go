// Package trace records flow-level simulation events (sends, deliveries,
// congestion-control updates) through internal/net's hooks, for debugging
// protocol behaviour and producing per-flow timelines. Tracing is opt-in
// and adds one predictable branch per event when disabled.
package trace

import (
	"fmt"
	"io"

	"faircc/internal/cc"
	"faircc/internal/net"
	"faircc/internal/sim"
)

// Kind classifies trace events.
type Kind uint8

const (
	// Send is a data packet leaving the sender.
	Send Kind = 1 << iota
	// Deliver is payload arriving at the receiver.
	Deliver
	// Control is a congestion-control update (rate/window change).
	Control
	// Finish is flow completion.
	Finish

	// All enables every event kind.
	All = Send | Deliver | Control | Finish
)

func (k Kind) String() string {
	switch k {
	case Send:
		return "send"
	case Deliver:
		return "deliver"
	case Control:
		return "control"
	case Finish:
		return "finish"
	}
	return "multi"
}

// Event is one recorded occurrence.
type Event struct {
	T       sim.Time
	Kind    Kind
	FlowID  int
	Seq     int64   // byte offset (Send/Deliver)
	Payload int     // payload bytes (Send/Deliver)
	Rate    float64 // bps (Control)
	Window  float64 // bytes (Control)
}

// Recorder accumulates events. Attach it before flows start.
type Recorder struct {
	Events []Event
	// MaxEvents bounds memory; once reached, further events are dropped
	// and Truncated is set. Zero means unlimited.
	MaxEvents int
	Truncated bool
}

// Attach subscribes the recorder to a network for the given event kinds,
// chaining any hooks already installed.
func Attach(nw *net.Network, kinds Kind) *Recorder {
	r := &Recorder{}
	now := nw.Eng.Now
	add := func(e Event) {
		if r.MaxEvents > 0 && len(r.Events) >= r.MaxEvents {
			r.Truncated = true
			return
		}
		r.Events = append(r.Events, e)
	}
	if kinds&Send != 0 {
		prev := nw.Hooks.OnSend
		nw.Hooks.OnSend = func(f *net.Flow, seq int64, payload int) {
			if prev != nil {
				prev(f, seq, payload)
			}
			add(Event{T: now(), Kind: Send, FlowID: f.Spec.ID, Seq: seq, Payload: payload})
		}
	}
	if kinds&Deliver != 0 {
		prev := nw.Hooks.OnDeliver
		nw.Hooks.OnDeliver = func(f *net.Flow, seq int64, payload int) {
			if prev != nil {
				prev(f, seq, payload)
			}
			add(Event{T: now(), Kind: Deliver, FlowID: f.Spec.ID, Seq: seq, Payload: payload})
		}
	}
	if kinds&Control != 0 {
		prev := nw.Hooks.OnControl
		nw.Hooks.OnControl = func(f *net.Flow, ctl cc.Control) {
			if prev != nil {
				prev(f, ctl)
			}
			add(Event{T: now(), Kind: Control, FlowID: f.Spec.ID,
				Rate: ctl.RateBps, Window: ctl.WindowBytes})
		}
	}
	if kinds&Finish != 0 {
		prev := nw.OnFlowFinish
		nw.OnFlowFinish = func(f *net.Flow) {
			if prev != nil {
				prev(f)
			}
			add(Event{T: now(), Kind: Finish, FlowID: f.Spec.ID})
		}
	}
	return r
}

// WriteCSV dumps the events as CSV.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_ps,kind,flow,seq,payload,rate_bps,window_bytes"); err != nil {
		return err
	}
	for _, e := range r.Events {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%g,%g\n",
			int64(e.T), e.Kind, e.FlowID, e.Seq, e.Payload, e.Rate, e.Window); err != nil {
			return err
		}
	}
	return nil
}

// Point is one bin of a per-flow timeline.
type Point struct {
	T sim.Time // bin start
	V float64
}

// FlowGoodput bins a flow's delivered bytes into intervals of bin and
// returns the goodput in bits per second for each bin, covering the span
// from the first to the last Deliver event.
func (r *Recorder) FlowGoodput(flowID int, bin sim.Time) []Point {
	if bin <= 0 {
		panic("trace: bin must be positive")
	}
	var first, last sim.Time = -1, -1
	for _, e := range r.Events {
		if e.Kind == Deliver && e.FlowID == flowID {
			if first < 0 {
				first = e.T
			}
			last = e.T
		}
	}
	if first < 0 {
		return nil
	}
	nBins := int((last-first)/bin) + 1
	bytes := make([]int64, nBins)
	for _, e := range r.Events {
		if e.Kind == Deliver && e.FlowID == flowID {
			bytes[int((e.T-first)/bin)] += int64(e.Payload)
		}
	}
	pts := make([]Point, nBins)
	for i, by := range bytes {
		pts[i] = Point{
			T: first + sim.Time(i)*bin,
			V: float64(by) * 8 / bin.Seconds(),
		}
	}
	return pts
}

// RateTimeline extracts a flow's congestion-control rate over time from
// Control events (one point per update).
func (r *Recorder) RateTimeline(flowID int) []Point {
	var pts []Point
	for _, e := range r.Events {
		if e.Kind == Control && e.FlowID == flowID {
			pts = append(pts, Point{T: e.T, V: e.Rate})
		}
	}
	return pts
}

// CountByKind tallies recorded events.
func (r *Recorder) CountByKind() map[Kind]int {
	m := make(map[Kind]int)
	for _, e := range r.Events {
		m[e.Kind]++
	}
	return m
}
