// Package faircc reproduces "Fast Convergence to Fairness for Reduced
// Long Flow Tail Latency in Datacenter Networks" (John Snyder and Alvin R.
// Lebeck, IPDPS 2022) as a Go library: a deterministic packet-level
// datacenter network simulator, the HPCC, Swift and DCQCN congestion-
// control protocols, the paper's Variable Additive Increase and Sampling
// Frequency mechanisms, and a registry of experiments that regenerate
// every figure of the paper's evaluation.
//
// # Quick start
//
//	eng := faircc.NewEngine()
//	nw := faircc.NewNetwork(eng, 1)
//	star := faircc.NewStar(nw, 17, 100e9, faircc.Microsecond)
//	f := nw.AddFlow(faircc.FlowSpec{
//	        ID: 1, Src: star.Hosts[0].NodeID(), Dst: star.Hosts[16].NodeID(),
//	        Size: 1 << 20,
//	}, faircc.NewHPCCVAISF(50_000))
//	eng.Run()
//	fmt.Println(f.FCT(), f.Slowdown())
//
// Or run a whole figure:
//
//	res, err := faircc.RunExperiment("fig10", faircc.DefaultExperimentConfig())
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-versus-measured results.
package faircc

import (
	"faircc/internal/cc"
	"faircc/internal/cc/dcqcn"
	"faircc/internal/cc/dctcp"
	"faircc/internal/cc/hpcc"
	"faircc/internal/cc/swift"
	"faircc/internal/cc/timely"
	"faircc/internal/exp"
	"faircc/internal/fluid"
	"faircc/internal/metrics"
	"faircc/internal/net"
	"faircc/internal/sim"
	"faircc/internal/stats"
	"faircc/internal/topo"
	"faircc/internal/trace"
	"faircc/internal/workload"
)

// Version identifies the library release.
const Version = "1.0.0"

// Core simulation types, re-exported for downstream use.
type (
	// Time is simulated time in picoseconds.
	Time = sim.Time
	// Engine is the discrete-event scheduler.
	Engine = sim.Engine
	// Network assembles hosts, switches, links and flows.
	Network = net.Network
	// FlowSpec describes a flow to inject.
	FlowSpec = net.FlowSpec
	// Flow is a running flow's state and results.
	Flow = net.Flow
	// Port is a link endpoint (exposes queue depth and tx counters).
	Port = net.Port
	// Host is an end host.
	Host = net.Host
	// Switch is an output-queued switch.
	Switch = net.Switch
	// REDConfig configures ECN marking for DCQCN runs.
	REDConfig = net.REDConfig
	// Algorithm is a sender-side congestion-control protocol.
	Algorithm = cc.Algorithm
	// Control is an algorithm's output: pacing rate and window.
	Control = cc.Control
	// Feedback is the per-ACK input to an algorithm.
	Feedback = cc.Feedback

	// Star is the single-switch incast topology.
	Star = topo.Star
	// FatTree is the paper's three-layer datacenter topology.
	FatTree = topo.FatTree
	// FatTreeConfig sizes a fat-tree.
	FatTreeConfig = topo.FatTreeConfig
	// Dumbbell is the heterogeneous-RTT shared-bottleneck topology.
	Dumbbell = topo.Dumbbell
	// DumbbellConfig sizes a dumbbell and its per-class access delays.
	DumbbellConfig = topo.DumbbellConfig
	// SenderGroup is one RTT class of dumbbell senders.
	SenderGroup = topo.SenderGroup

	// ExperimentConfig controls experiment scale, seed and parallelism.
	ExperimentConfig = exp.Config
	// ExperimentResult is a figure's regenerated data.
	ExperimentResult = exp.Result

	// FlowRecord is one completed flow's FCT measurement.
	FlowRecord = metrics.FlowRecord
	// FCTRecorder collects FlowRecords from a Network.
	FCTRecorder = metrics.FCTRecorder
	// StreamingAccumulator summarizes a value stream with bounded memory
	// while keeping percentiles exact below its retention limit.
	StreamingAccumulator = metrics.Accumulator
	// ClassCollector streams per-RTT-class FCT and slowdown distributions
	// from flow-finish callbacks without retaining per-flow records.
	ClassCollector = metrics.ClassCollector
	// ClassDist is one class's streamed distribution snapshot.
	ClassDist = metrics.ClassDist

	// CDF is a flow-size distribution.
	CDF = stats.CDF

	// HPCCConfig, SwiftConfig, DCQCNConfig, TimelyConfig and DCTCPConfig
	// parameterize the protocols.
	HPCCConfig   = hpcc.Config
	SwiftConfig  = swift.Config
	DCQCNConfig  = dcqcn.Config
	TimelyConfig = timely.Config
	DCTCPConfig  = dctcp.Config

	// TraceRecorder captures flow-level events for debugging.
	TraceRecorder = trace.Recorder
	// TraceKind selects which events a TraceRecorder captures.
	TraceKind = trace.Kind

	// NetworkStats, SwitchStats and PortStats are measurement snapshots.
	NetworkStats = net.NetworkStats
	SwitchStats  = net.SwitchStats
	PortStats    = net.PortStats

	// EventID is a generation-stamped handle to a scheduled event;
	// cancelling a stale handle is a guaranteed no-op.
	EventID = sim.EventID
	// Parallel is the barrier-synchronized runner for sharded networks
	// (see FatTree.ShardMap, Network.Shard and Network.NewParallel).
	Parallel = sim.Parallel
	// EngineStats is the engine's lifetime counter snapshot (events
	// executed/scheduled/cancelled, pending, peak pending, slot allocs).
	EngineStats = sim.EngineStats
	// RunStats is the run-level observability record: engine and network
	// counters plus wall-clock rates and process memory.
	RunStats = metrics.RunStats
	// ExperimentProgress is one periodic update from a running experiment
	// simulation (see ExperimentConfig.Progress).
	ExperimentProgress = exp.ProgressUpdate
	// ExperimentManifest is the JSON provenance record fairsim -manifest
	// emits next to an experiment's CSV.
	ExperimentManifest = exp.Manifest

	// FluidConfig parameterizes the Sec. IV-B fluid model; FluidPoint is
	// one integration sample.
	FluidConfig = fluid.Config
	FluidPoint  = fluid.Point
)

// Time unit constants.
const (
	Picosecond  = sim.Picosecond
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns a discrete-event engine with the clock at zero.
func NewEngine() *Engine { return sim.NewEngine() }

// NewNetwork returns an empty network over eng, seeded deterministically.
func NewNetwork(eng *Engine, seed int64) *Network { return net.New(eng, seed) }

// NewStar builds the paper's incast topology: hosts around one switch.
func NewStar(nw *Network, hosts int, linkBps float64, delay Time) *Star {
	return topo.NewStar(nw, hosts, linkBps, delay)
}

// NewFatTree builds a three-layer fat-tree with up/down ECMP routing.
func NewFatTree(nw *Network, cfg FatTreeConfig) *FatTree { return topo.NewFatTree(nw, cfg) }

// DefaultFatTree returns the paper's 320-host datacenter topology.
func DefaultFatTree() FatTreeConfig { return topo.DefaultFatTree() }

// K16FatTree returns the 4096-host k=16-style Clos (16 pods, 8 ToR and 8
// Agg per pod, 64 spines, 32 hosts per ToR); combine with
// FatTreeConfig.Oversubscribed to thin the ToR uplinks.
func K16FatTree() FatTreeConfig { return topo.K16FatTree() }

// NewDumbbell builds a two-switch dumbbell whose sender groups reach a
// shared bottleneck over per-group access delays (the RTT-heterogeneity
// topology).
func NewDumbbell(nw *Network, cfg DumbbellConfig) *Dumbbell { return topo.NewDumbbell(nw, cfg) }

// DefaultDumbbell returns the datacenter-edge RTT-unfairness dumbbell:
// equal-rate fast (1 us) and slow (25 us) access groups into a 100 Gb/s
// bottleneck.
func DefaultDumbbell() DumbbellConfig { return topo.DefaultDumbbell() }

// WANEdgeDumbbell returns the WAN-edge variant: a 10 ms slow group and a
// 10 Gb/s bottleneck, exercising RTO-scale delay heterogeneity.
func WANEdgeDumbbell() DumbbellConfig { return topo.WANEdgeDumbbell() }

// NewHPCC returns a default-parameter HPCC instance (one per flow).
func NewHPCC() Algorithm { return hpcc.New(hpcc.DefaultConfig()) }

// NewHPCCWith returns an HPCC instance with a custom configuration.
func NewHPCCWith(cfg HPCCConfig) Algorithm { return hpcc.New(cfg) }

// NewHPCCVAISF returns HPCC with the paper's Variable Additive Increase
// and Sampling Frequency mechanisms; minBDPBytes is the network's minimum
// bandwidth-delay product (the VAI token threshold, ~50 KB at 100 Gb/s).
func NewHPCCVAISF(minBDPBytes float64) Algorithm {
	return hpcc.New(hpcc.VAISFConfig(minBDPBytes))
}

// NewSwift returns default Swift with flow-based scaling capped at
// maxScalePkts (the paper uses 50 on the incast topology, 100 in the
// datacenter).
func NewSwift(maxScalePkts float64) Algorithm { return swift.New(swift.DefaultConfig(maxScalePkts)) }

// NewSwiftWith returns a Swift instance with a custom configuration.
func NewSwiftWith(cfg SwiftConfig) Algorithm { return swift.New(cfg) }

// NewSwiftVAISF returns Swift with VAI and Sampling Frequency;
// minBDPDelay is the queueing delay a minimum-BDP backlog adds at line
// rate (4 us at 100 Gb/s for 50 KB).
func NewSwiftVAISF(minBDPDelay Time) Algorithm {
	return swift.New(swift.VAISFConfig(minBDPDelay))
}

// NewDCQCN returns a DCQCN instance; configure RED marking on switch
// ports and Network.CNPInterval for it to receive congestion feedback.
func NewDCQCN() Algorithm { return dcqcn.New(dcqcn.DefaultConfig()) }

// NewTimely returns a TIMELY instance (RTT-gradient congestion control).
func NewTimely() Algorithm { return timely.New(timely.DefaultConfig()) }

// NewTimelyVAISF returns TIMELY with the paper's mechanisms attached,
// demonstrating their generality beyond HPCC and Swift.
func NewTimelyVAISF(minBDPDelay Time) Algorithm {
	return timely.New(timely.VAISFConfig(minBDPDelay))
}

// NewDCTCP returns a DCTCP instance; configure step marking on switch
// ports with DCTCPMarkingAt.
func NewDCTCP() Algorithm { return dctcp.New(dctcp.DefaultConfig()) }

// DCTCPMarkingAt returns the switch ECN configuration for DCTCP's
// deterministic step marking at kBytes of queue.
func DCTCPMarkingAt(kBytes int64) REDConfig { return dctcp.MarkingAt(kBytes) }

// Trace kinds for AttachTrace.
const (
	TraceSend    = trace.Send
	TraceDeliver = trace.Deliver
	TraceControl = trace.Control
	TraceFinish  = trace.Finish
	TraceAll     = trace.All
)

// AttachTrace subscribes a recorder to a network's flow events. Attach
// before flows start.
func AttachTrace(nw *Network, kinds TraceKind) *TraceRecorder {
	return trace.Attach(nw, kinds)
}

// HadoopCDF, WebSearchCDF and StorageCDF are the evaluation's flow-size
// distributions.
func HadoopCDF() *CDF    { return workload.Hadoop() }
func WebSearchCDF() *CDF { return workload.WebSearch() }
func StorageCDF() *CDF   { return workload.Storage() }

// LoadCDF reads a flow-size distribution file in the HPCC-artifact
// format ("<size_bytes> <cumulative_percent>" per line), so the original
// trace distributions can replace the synthetic ones.
func LoadCDF(path string) (*CDF, error) { return workload.LoadCDF(path) }

// StaggeredIncast builds the paper's incast flow pattern.
func StaggeredIncast(senders []int, dst int, size int64, perGroup int, interval, start Time) []FlowSpec {
	return workload.StaggeredIncast(senders, dst, size, perGroup, interval, start)
}

// RunExperiment runs a registered figure reproduction by name (fig1a …
// fig13, ablate-*, incast-dcqcn).
func RunExperiment(name string, cfg ExperimentConfig) (*ExperimentResult, error) {
	return exp.Run(name, cfg)
}

// RunExperimentWithStats runs an experiment and also returns the
// aggregated RunStats of every simulation it executed (events, events/sec,
// packet counters, wall time, process memory).
func RunExperimentWithStats(name string, cfg ExperimentConfig) (*ExperimentResult, *RunStats, error) {
	return exp.RunWithStats(name, cfg)
}

// CollectRunStats snapshots a finished simulation's engine and network
// counters as a single-run RunStats; call Finish on the result to derive
// wall-clock rates.
func CollectRunStats(eng *Engine, nw *Network) RunStats {
	return metrics.CollectRun(eng, nw)
}

// CollectShardedRunStats is CollectRunStats for a sharded parallel run:
// engine counters are summed over the network's shard engines and the
// per-shard event split plus the epoch count are recorded. Pass
// Parallel.Epochs() as epochs.
func CollectShardedRunStats(nw *Network, epochs uint64) RunStats {
	return metrics.CollectSharded(nw, epochs)
}

// CollectFinishedFlows returns completion records for every finished flow
// in AddFlow order. Unlike FCTRecorder it reads flow state after the run,
// so it is the collector to use with sharded parallel runs (finish
// callbacks fire on worker goroutines there).
func CollectFinishedFlows(nw *Network) []FlowRecord {
	return metrics.CollectFinished(nw)
}

// ExperimentNames lists all registered experiments.
func ExperimentNames() []string { return exp.Names() }

// DefaultExperimentConfig returns a medium-scale, seed-1 configuration.
func DefaultExperimentConfig() ExperimentConfig { return exp.DefaultConfig() }

// Jain computes the Jain fairness index of an allocation.
func Jain(xs []float64) float64 { return stats.Jain(xs) }

// JainByClass computes one Jain index per class of an allocation;
// class[i] assigns xs[i] to a class in [0, nClasses).
func JainByClass(xs []float64, class []int, nClasses int) []float64 {
	return stats.JainByClass(xs, class, nClasses)
}

// NewClassCollector returns a streaming per-class FCT collector; classOf
// maps a finished flow to a label index (or -1 to skip), maxExact bounds
// exact retention per distribution (0 = the default).
func NewClassCollector(labels []string, classOf func(*Flow) int, maxExact int) *ClassCollector {
	return metrics.NewClassCollector(labels, classOf, maxExact)
}

// DefaultFluid returns the Fig. 4 fluid-model parameters.
func DefaultFluid() FluidConfig { return fluid.DefaultConfig() }

// IntegrateFluid solves the Sec. IV-B fluid model numerically (RK4) with
// step dt up to tMax nanoseconds.
func IntegrateFluid(cfg FluidConfig, dt, tMax float64) []FluidPoint {
	return fluid.Integrate(cfg, dt, tMax)
}
